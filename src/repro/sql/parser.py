"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


def parse(sql: str) -> ast.Node:
    """Parse one SQL statement into an AST node."""
    return Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the multimodel DSL)."""
    parser = Parser(tokenize(sql))
    expr = parser._expr()
    parser._expect_eof()
    return expr


class Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(f"{message} (near {self._cur.value!r})", self._cur.position)

    def _accept_kw(self, *names: str) -> bool:
        if self._cur.is_kw(*names):
            self._advance()
            return True
        return False

    def _expect_kw(self, *names: str) -> Token:
        if not self._cur.is_kw(*names):
            raise self._error(f"expected {'/'.join(names).upper()}")
        return self._advance()

    def _accept_op(self, *symbols: str) -> bool:
        if self._cur.is_op(*symbols):
            self._advance()
            return True
        return False

    def _expect_op(self, symbol: str) -> Token:
        if not self._cur.is_op(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self._cur.type is not TokenType.IDENT:
            raise self._error("expected identifier")
        return self._advance().value

    def _expect_eof(self) -> None:
        self._accept_op(";")
        if self._cur.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Node:
        if self._cur.is_kw("select", "with"):
            stmt: ast.Node = self._select()
        elif self._cur.is_kw("insert"):
            stmt = self._insert()
        elif self._cur.is_kw("update"):
            stmt = self._update()
        elif self._cur.is_kw("delete"):
            stmt = self._delete()
        elif self._cur.is_kw("create"):
            stmt = self._create_table()
        elif self._cur.is_kw("drop"):
            stmt = self._drop_table()
        elif self._cur.is_kw("analyze"):
            self._advance()
            table = self._qualified_name() if self._cur.type is TokenType.IDENT else None
            stmt = ast.Analyze(table)
        elif self._cur.is_kw("explain"):
            self._advance()
            analyze = self._accept_kw("analyze")
            # EXPLAIN ANALYZE DISTRIBUTED: the per-fragment critical-path
            # rendering instead of the per-operator table.
            distributed = analyze and self._accept_kw("distributed")
            stmt = ast.Explain(self._select(), analyze=analyze,
                               distributed=distributed)
        else:
            raise self._error("expected a statement")
        self._expect_eof()
        return stmt

    def _qualified_name(self) -> str:
        parts = [self._expect_ident()]
        while self._accept_op("."):
            parts.append(self._expect_ident())
        return ".".join(parts)

    # -- SELECT ----------------------------------------------------------------

    def _select(self) -> ast.Select:
        ctes: List[ast.Cte] = []
        if self._accept_kw("with"):
            while True:
                name = self._expect_ident()
                columns: Tuple[str, ...] = ()
                if self._accept_op("("):
                    cols = [self._expect_ident()]
                    while self._accept_op(","):
                        cols.append(self._expect_ident())
                    self._expect_op(")")
                    columns = tuple(cols)
                self._expect_kw("as")
                self._expect_op("(")
                query = self._select()
                self._expect_op(")")
                ctes.append(ast.Cte(name, columns, query))
                if not self._accept_op(","):
                    break
        body = self._select_body()
        unions: List[Tuple[ast.Select, bool]] = []
        while self._cur.is_kw("union"):
            if body.order_by or body.limit is not None or unions and (
                    unions[-1][0].order_by or unions[-1][0].limit is not None):
                raise self._error("ORDER BY/LIMIT must follow the last "
                                  "UNION branch")
            self._advance()
            keep_all = bool(self._accept_kw("all"))
            unions.append((self._select_body(), keep_all))
        if unions:
            # ORDER BY / LIMIT written after the final branch bind to the
            # whole union: lift them off the last branch.
            last, keep_all = unions[-1]
            order_by, limit = last.order_by, last.limit
            if order_by or limit is not None:
                unions[-1] = (ast.Select(
                    items=last.items, from_clause=last.from_clause,
                    where=last.where, group_by=last.group_by,
                    having=last.having, distinct=last.distinct,
                ), keep_all)
            body = ast.Select(
                items=body.items, from_clause=body.from_clause,
                where=body.where, group_by=body.group_by, having=body.having,
                order_by=order_by, limit=limit, distinct=body.distinct,
                unions=tuple(unions),
            )
        if ctes:
            body = ast.Select(
                items=body.items, from_clause=body.from_clause, where=body.where,
                group_by=body.group_by, having=body.having, order_by=body.order_by,
                limit=body.limit, distinct=body.distinct, ctes=tuple(ctes),
                unions=body.unions,
            )
        return body

    def _select_body(self) -> ast.Select:
        self._expect_kw("select")
        distinct = bool(self._accept_kw("distinct"))
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())

        from_clause: Optional[ast.TableRef] = None
        if self._accept_kw("from"):
            from_clause = self._table_ref()
            while True:
                if self._accept_op(","):
                    right = self._table_primary()
                    from_clause = ast.Join("cross", from_clause, right)
                elif self._cur.is_kw("join", "inner", "left", "cross"):
                    from_clause = self._join_suffix(from_clause)
                else:
                    break

        where = self._expr() if self._accept_kw("where") else None

        group_by: Tuple[ast.Expr, ...] = ()
        if self._accept_kw("group"):
            self._expect_kw("by")
            exprs = [self._expr()]
            while self._accept_op(","):
                exprs.append(self._expr())
            group_by = tuple(exprs)

        having = self._expr() if self._accept_kw("having") else None

        order_by: List[ast.OrderItem] = []
        if self._accept_kw("order"):
            self._expect_kw("by")
            while True:
                expr = self._expr()
                descending = False
                if self._accept_kw("desc"):
                    descending = True
                else:
                    self._accept_kw("asc")
                order_by.append(ast.OrderItem(expr, descending))
                if not self._accept_op(","):
                    break

        limit: Optional[int] = None
        if self._accept_kw("limit"):
            if self._cur.type is not TokenType.NUMBER:
                raise self._error("LIMIT expects a number")
            limit = int(self._advance().value)

        return ast.Select(
            items=tuple(items), from_clause=from_clause, where=where,
            group_by=group_by, having=having, order_by=tuple(order_by),
            limit=limit, distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self._accept_kw("as"):
            alias = self._expect_ident()
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    # -- FROM clause ------------------------------------------------------------

    def _table_ref(self) -> ast.TableRef:
        ref = self._table_primary()
        while self._cur.is_kw("join", "inner", "left", "cross"):
            ref = self._join_suffix(ref)
        return ref

    def _join_suffix(self, left: ast.TableRef) -> ast.TableRef:
        kind = "inner"
        if self._accept_kw("inner"):
            kind = "inner"
        elif self._accept_kw("left"):
            self._accept_kw("outer")
            kind = "left"
        elif self._accept_kw("cross"):
            kind = "cross"
        self._expect_kw("join")
        right = self._table_primary()
        condition = None
        if kind != "cross":
            self._expect_kw("on")
            condition = self._expr()
        return ast.Join(kind, left, right, condition)

    def _table_primary(self) -> ast.TableRef:
        if self._accept_op("("):
            query = self._select()
            self._expect_op(")")
            self._accept_kw("as")
            alias = self._expect_ident()
            return ast.DerivedTable(query, alias)
        name = self._qualified_name()
        if self._cur.is_op("("):
            self._advance()
            args: List[ast.Expr] = []
            if not self._cur.is_op(")"):
                args.append(self._expr())
                while self._accept_op(","):
                    args.append(self._expr())
            self._expect_op(")")
            alias = None
            if self._accept_kw("as"):
                alias = self._expect_ident()
            elif self._cur.type is TokenType.IDENT:
                alias = self._advance().value
            return ast.TableFunction(name, tuple(args), alias)
        alias = None
        if self._accept_kw("as"):
            alias = self._expect_ident()
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.NamedTable(name, alias)

    # -- DML ------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_kw("insert")
        self._expect_kw("into")
        table = self._qualified_name()
        columns: Tuple[str, ...] = ()
        if self._accept_op("("):
            cols = [self._expect_ident()]
            while self._accept_op(","):
                cols.append(self._expect_ident())
            self._expect_op(")")
            columns = tuple(cols)
        if self._accept_kw("values"):
            rows: List[Tuple[ast.Expr, ...]] = []
            while True:
                self._expect_op("(")
                row = [self._expr()]
                while self._accept_op(","):
                    row.append(self._expr())
                self._expect_op(")")
                rows.append(tuple(row))
                if not self._accept_op(","):
                    break
            return ast.Insert(table, columns, tuple(rows))
        if self._cur.is_kw("select", "with"):
            return ast.Insert(table, columns, (), self._select())
        raise self._error("expected VALUES or SELECT")

    def _update(self) -> ast.Update:
        self._expect_kw("update")
        table = self._qualified_name()
        self._expect_kw("set")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            col = self._expect_ident()
            self._expect_op("=")
            assignments.append((col, self._expr()))
            if not self._accept_op(","):
                break
        where = self._expr() if self._accept_kw("where") else None
        return ast.Update(table, tuple(assignments), where)

    def _delete(self) -> ast.Delete:
        self._expect_kw("delete")
        self._expect_kw("from")
        table = self._qualified_name()
        where = self._expr() if self._accept_kw("where") else None
        return ast.Delete(table, where)

    # -- DDL --------------------------------------------------------------------

    def _create_table(self) -> ast.CreateTable:
        self._expect_kw("create")
        self._expect_kw("table")
        name = self._qualified_name()
        self._expect_op("(")
        columns: List[ast.ColumnDef] = []
        primary_key: Optional[str] = None
        while True:
            if self._accept_kw("primary"):
                self._expect_kw("key")
                self._expect_op("(")
                primary_key = self._expect_ident()
                self._expect_op(")")
            else:
                col_name = self._expect_ident()
                type_name = self._advance().value
                not_null = False
                is_pk = False
                while True:
                    if self._accept_kw("not"):
                        self._expect_kw("null")
                        not_null = True
                    elif self._accept_kw("primary"):
                        self._expect_kw("key")
                        is_pk = True
                    elif self._accept_kw("null"):
                        pass
                    else:
                        break
                columns.append(ast.ColumnDef(col_name, type_name, not_null, is_pk))
                if is_pk:
                    primary_key = col_name
            if not self._accept_op(","):
                break
        self._expect_op(")")

        distribute_by: Optional[str] = None
        replicated = False
        orientation = "row"
        while True:
            if self._accept_kw("distribute"):
                self._expect_kw("by")
                if self._accept_kw("hash"):
                    self._expect_op("(")
                    distribute_by = self._expect_ident()
                    self._expect_op(")")
                elif self._accept_kw("replication"):
                    replicated = True
                else:
                    raise self._error("expected HASH(col) or REPLICATION")
            elif self._accept_kw("with"):
                self._expect_op("(")
                key = self._expect_ident()
                self._expect_op("=")
                value = self._advance().value
                self._expect_op(")")
                if key == "orientation":
                    orientation = value
            else:
                break
        return ast.CreateTable(
            name, tuple(columns), primary_key, distribute_by, replicated, orientation,
        )

    def _drop_table(self) -> ast.DropTable:
        self._expect_kw("drop")
        self._expect_kw("table")
        if_exists = False
        if self._accept_kw("if"):
            self._expect_kw("exists")
            if_exists = True
        return ast.DropTable(self._qualified_name(), if_exists)

    # -- expressions (precedence climbing) ----------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_kw("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_kw("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_kw("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        if self._cur.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if self._cur.is_kw("not"):
            nxt = self._tokens[self._pos + 1]
            if nxt.is_kw("in", "between", "like"):
                self._advance()
                negated = True
        if self._accept_kw("in"):
            self._expect_op("(")
            items = [self._expr()]
            while self._accept_op(","):
                items.append(self._expr())
            self._expect_op(")")
            return ast.InList(left, tuple(items), negated)
        if self._accept_kw("between"):
            low = self._additive()
            self._expect_kw("and")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._accept_kw("like"):
            return _maybe_negate(ast.BinaryOp("like", left, self._additive()), negated)
        if self._accept_kw("is"):
            neg = bool(self._accept_kw("not"))
            self._expect_kw("null")
            return ast.IsNull(left, neg)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._cur.is_op("+", "-", "||"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._cur.is_op("*", "/", "%"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self._accept_op("-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return ast.Literal(float(text) if "." in text else int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_kw("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_kw("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_kw("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_kw("case"):
            return self._case_expr()
        if token.is_op("("):
            self._advance()
            expr = self._expr()
            self._expect_op(")")
            return expr
        if token.is_op("*"):
            self._advance()
            return ast.Star()
        if token.type is TokenType.IDENT:
            return self._name_or_call()
        raise self._error("expected an expression")

    def _case_expr(self) -> ast.Expr:
        self._expect_kw("case")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_kw("when"):
            cond = self._expr()
            self._expect_kw("then")
            whens.append((cond, self._expr()))
        default = self._expr() if self._accept_kw("else") else None
        self._expect_kw("end")
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        return ast.CaseWhen(tuple(whens), default)

    def _name_or_call(self) -> ast.Expr:
        parts = [self._expect_ident()]
        while self._cur.is_op("."):
            nxt = self._tokens[self._pos + 1]
            if nxt.is_op("*"):
                self._advance()
                self._advance()
                return ast.Star(qualifier=".".join(parts))
            self._advance()
            parts.append(self._expect_ident())
        if len(parts) == 1 and self._cur.is_op("("):
            self._advance()
            distinct = bool(self._accept_kw("distinct"))
            args: List[ast.Expr] = []
            if not self._cur.is_op(")"):
                args.append(self._expr())
                while self._accept_op(","):
                    args.append(self._expr())
            self._expect_op(")")
            return ast.FuncCall(parts[0], tuple(args), distinct)
        return ast.ColumnRef(tuple(parts))


def _maybe_negate(expr: ast.Expr, negated: bool) -> ast.Expr:
    return ast.UnaryOp("not", expr) if negated else expr
