"""SQL front-end: lexer, parser, binder, engine."""

from repro.sql.binder import Binder, TableFunctionImpl
from repro.sql.engine import Result, SqlEngine
from repro.sql.parser import parse, parse_expression

__all__ = ["SqlEngine", "Result", "Binder", "TableFunctionImpl",
           "parse", "parse_expression"]
