"""The HTAP merge daemon: pacing, failpoints, I/O charging, freshness.

The daemon runs on simulated time.  :meth:`HtapManager.maybe_tick` is the
pacing entry point (the autonomous manager drives it and adjusts
``merge_interval_us``); :meth:`HtapManager.tick` force-merges every table
with pending deltas.  Each merge:

* fires the ``htap.freshness`` failpoint per node (a timeout stalls that
  node's merges for the tick) and the ``htap.merge`` failpoint per table
  (a crash mid-merge must lose nothing — the swap in
  :meth:`HtapTableStore.merge` is atomic);
* charges storage I/O the way WLM spill does — bytes×``SPILL_BYTE_US``
  recorded as the ``htap_merge`` wait event against ``dn{i}``;
* records a :class:`MergeEvent` and per-table freshness lag, surfaced
  through ``sys.htap_tables`` / ``sys.htap_merges``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.injector import (FP_HTAP_FRESHNESS, FP_HTAP_MERGE,
                                   InjectedTimeout)
from repro.htap.store import HtapNodeState, HtapTableStore
from repro.obs.waits import WAIT_HTAP_MERGE
from repro.storage.table import Orientation, TableSchema
from repro.storage.types import DataType
from repro.wlm.memory import SPILL_BYTE_US

#: Charged bytes per row and column: numeric columns as fixed-width words,
#: text as a short-string estimate, plus a per-row header.
_TEXT_BYTES = 24
_WORD_BYTES = 8
_ROW_HEADER_BYTES = 8


def _row_bytes(schema: TableSchema) -> int:
    total = _ROW_HEADER_BYTES
    for column in schema.columns:
        total += _TEXT_BYTES if column.data_type is DataType.TEXT else _WORD_BYTES
    return total


@dataclass
class HtapConfig:
    """Merge daemon tuning knobs."""

    #: Pacing for :meth:`HtapManager.maybe_tick`; the autonomous manager
    #: tightens/relaxes this between ``min``/``max`` to chase the SLA.
    merge_interval_us: float = 50_000.0
    min_interval_us: float = 5_000.0
    max_interval_us: float = 400_000.0
    #: Freshness SLA: commit-to-column-visibility lag the autonomous
    #: manager defends (alert + interval tightening beyond it).
    freshness_sla_us: float = 250_000.0


@dataclass(frozen=True)
class MergeEvent:
    """One completed merge, as surfaced through ``sys.htap_merges``."""

    merge_id: int
    dn: int
    table: str
    t_us: float
    delta_rows: int      # delta entries folded in
    frozen_rows: int     # rows in the new chunk set
    bytes: int           # charged storage I/O volume
    io_us: float         # charged storage I/O time
    max_lag_us: float    # worst commit-to-merge lag among folded entries


class HtapManager:
    """Cluster-wide owner of per-node HTAP state and the merge daemon."""

    def __init__(self, cluster, config: Optional[HtapConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else HtapConfig()
        self.history: List[MergeEvent] = []
        self._schemas: Dict[str, TableSchema] = {}
        self._next_merge_id = 0
        self._last_tick_us: Optional[float] = None
        # The current tick's root span, created lazily on the tick's first
        # accounted merge (empty ticks trace nothing) and ended when the
        # tick returns.  Per-node merge spans stitch under it by trace
        # context — the daemon's CN-side tick handing work to DNs crosses
        # the same kind of boundary a fragmented query does.
        self._tick_span = None
        self._in_tick = False

    # -- registration ------------------------------------------------------

    def register_table(self, schema: TableSchema) -> None:
        """Enable HTAP for a column-oriented table on every node."""
        if schema.orientation is not Orientation.COLUMN:
            return
        self._schemas[schema.name] = schema
        for dn in self.cluster.dns:
            if not dn.retired:
                self._attach_table(dn, schema)

    def unregister_table(self, name: str) -> None:
        self._schemas.pop(name, None)
        for dn in self.cluster.dns:
            if dn.htap is not None:
                dn.htap.tables.pop(name, None)

    def ensure_node(self, dn) -> None:
        """(Re-)attach HTAP state after failover replaced a node."""
        if dn.htap is not None:
            return
        for schema in self._schemas.values():
            self._attach_table(dn, schema)
            self._count("htap.reseeds")

    def _attach_table(self, dn, schema: TableSchema) -> None:
        if dn.htap is None:
            dn.htap = HtapNodeState()
        store = HtapTableStore(schema)
        dn.htap.tables[schema.name] = store
        # Seed immediately so scans are servable from the start.  At table
        # creation the heap is empty and this is free; after failover it
        # rebuilds the chunk set from the promoted heap and is charged.
        result = store.merge(dn, self._now_us())
        if result is not None:
            self._account(dn, store, result, self._now_us())

    # -- the daemon --------------------------------------------------------

    def maybe_tick(self, now_us: Optional[float] = None) -> int:
        """Run a tick if ``merge_interval_us`` elapsed since the last."""
        now = now_us if now_us is not None else self._now_us()
        if (self._last_tick_us is not None
                and now - self._last_tick_us < self.config.merge_interval_us):
            return 0
        return self.tick(now)

    def tick(self, now_us: Optional[float] = None) -> int:
        """Merge every table with pending deltas; returns merges done."""
        now = now_us if now_us is not None else self._now_us()
        self._last_tick_us = now
        merges = 0
        self._in_tick = True
        faults = getattr(self.cluster, "faults", None)
        for dn in self.cluster.dns:
            if dn.crashed or dn.retired:
                continue
            self.ensure_node(dn)
            if dn.htap is None:
                continue   # no HTAP tables exist yet
            delay_us = 0.0
            if faults is not None:
                try:
                    outcome = faults.fire(FP_HTAP_FRESHNESS, dn=dn.index)
                except InjectedTimeout:
                    self._count("htap.daemon_stalls")
                    continue
                if outcome.dropped:
                    self._count("htap.daemon_stalls")
                    continue
                delay_us = outcome.delay_us
            for name in sorted(dn.htap.tables):
                if dn.crashed:
                    break
                merges += self._merge_one(dn, dn.htap.tables[name], now,
                                          delay_us)
                delay_us = 0.0   # charged once per node per tick
        self._in_tick = False
        if self._tick_span is not None:
            self._tick_span.set_attribute("merges", merges)
            self.cluster.obs.tracer.end_span(self._tick_span)
            self._tick_span = None
        return merges

    def _merge_one(self, dn, store: HtapTableStore, now_us: float,
                   delay_us: float) -> int:
        faults = getattr(self.cluster, "faults", None)
        if store.frozen is not None and not store.delta.entries:
            return 0
        if faults is not None:
            try:
                outcome = faults.fire(FP_HTAP_MERGE, dn=dn.index,
                                      table=store.schema.name)
            except InjectedTimeout:
                # The merge died before publishing; frozen + delta intact.
                self._count("htap.merges_aborted")
                return 0
            if outcome.dropped:
                self._count("htap.merges_aborted")
                return 0
            delay_us += outcome.delay_us
        result = store.merge(dn, now_us)
        if result is None:
            return 0
        self._account(dn, store, result, now_us, delay_us)
        return 1

    def _account(self, dn, store: HtapTableStore, result, now_us: float,
                 delay_us: float = 0.0) -> None:
        rows_read, rows_written, applied = result
        if rows_read == 0 and rows_written == 0 and applied == 0:
            return   # the free table-creation seed
        volume = (rows_read + rows_written) * _row_bytes(store.schema)
        io_us = volume * SPILL_BYTE_US + delay_us
        event = MergeEvent(
            merge_id=self._next_merge_id, dn=dn.index,
            table=store.schema.name, t_us=now_us, delta_rows=applied,
            frozen_rows=rows_written, bytes=volume, io_us=io_us,
            max_lag_us=store.max_lag_us)
        self._next_merge_id += 1
        self.history.append(event)
        obs = self.cluster.obs
        if obs is not None:
            obs.metrics.counter("htap.merges").inc()
            obs.metrics.counter("htap.merge_rows").inc(float(applied))
            obs.metrics.counter("htap.merge_bytes").inc(float(volume))
            obs.waits.record(WAIT_HTAP_MERGE, io_us,
                             session=f"dn{dn.index}")
            tracer = obs.tracer
            parent_ctx = None
            if self._in_tick:
                tick_span = self._tick_span
                if tick_span is None:
                    tick_span = self._tick_span = tracer.start_span(
                        "htap.tick", parent=None, node="cn")
                # Only the tick's wire identity reaches the data node.
                parent_ctx = tick_span.context()
            span = tracer.start_span(
                "htap.merge", parent_ctx=parent_ctx, node=f"dn{dn.index}",
                table=store.schema.name, delta_rows=applied, bytes=volume)
            tracer.end_span(span, end_us=span.start_us + io_us)

    def _count(self, metric: str) -> None:
        if self.cluster.obs is not None:
            self.cluster.obs.metrics.counter(metric).inc()

    def _now_us(self) -> float:
        return self.cluster.obs.clock.now_us if self.cluster.obs else 0.0

    # -- tuning (autonomous manager) ---------------------------------------

    def set_interval(self, interval_us: float) -> float:
        """Clamp and apply a new merge interval; returns the applied value."""
        clamped = min(self.config.max_interval_us,
                      max(self.config.min_interval_us, interval_us))
        self.config.merge_interval_us = clamped
        return clamped

    # -- introspection -----------------------------------------------------

    def max_freshness_lag_us(self, now_us: Optional[float] = None) -> float:
        now = now_us if now_us is not None else self._now_us()
        lag = 0.0
        for dn in self.cluster.dns:
            if dn.htap is None or dn.retired:
                continue
            for store in dn.htap.tables.values():
                lag = max(lag, store.freshness_lag_us(now))
        return lag

    def delta_rows(self) -> int:
        return sum(len(store.delta)
                   for dn in self.cluster.dns
                   if dn.htap is not None and not dn.retired
                   for store in dn.htap.tables.values())

    def table_rows(self) -> List[tuple]:
        """Feed for ``sys.htap_tables``."""
        now = self._now_us()
        rows = []
        for dn in self.cluster.dns:
            if dn.htap is None or dn.retired:
                continue
            for name in sorted(dn.htap.tables):
                store = dn.htap.tables[name]
                frozen = store.frozen
                rows.append((
                    dn.index, name,
                    frozen.row_count if frozen is not None else 0,
                    frozen.store.chunk_count if frozen is not None else 0,
                    frozen.store.compressed_footprint()
                    if frozen is not None else 0,
                    len(store.delta),
                    frozen.merged_seq if frozen is not None else 0,
                    store.merges,
                    store.last_merge_us,
                    store.freshness_lag_us(now),
                    store.max_lag_us,
                ))
        return rows

    def merge_rows(self) -> List[tuple]:
        """Feed for ``sys.htap_merges``."""
        return [(e.merge_id, e.dn, e.table, e.t_us, e.delta_rows,
                 e.frozen_rows, e.bytes, e.io_us, e.max_lag_us)
                for e in self.history]

    def reset_history(self) -> None:
        self.history.clear()
