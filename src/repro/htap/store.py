"""Per-table dual-format state: frozen column chunks + delta composition.

A :class:`HtapTableStore` is one table's HTAP state on one data node:

* ``frozen`` — a :class:`FrozenChunkSet`: a persistent
  :class:`~repro.storage.colstore.ColumnStore` built by the last merge,
  plus the merge-time snapshot (the *merged-past-xid watermark*) and the
  per-row keys/arrival stamps needed to patch it;
* ``delta`` — the committed writes that arrived since that merge.

Analytic reads call :meth:`HtapTableStore.compose`:

* when the query's snapshot sees no delta entry, the frozen store is
  served **as is** — zero rebuild, the whole point of the subsystem;
* otherwise frozen rows are patched/extended with the visible delta
  entries, re-sorted by heap arrival stamp, and materialized into a fresh
  uncompressed store with the default chunking — exactly the store the
  legacy heap walk would have produced, so query results (including
  chunk-boundary-sensitive float aggregation) stay byte-identical;
* when the snapshot cannot be served soundly (classical mode, UPGRADE-d
  merged snapshots, readers with their own uncommitted writes, snapshots
  older than the watermark), ``compose`` returns ``None`` and the caller
  falls back to the heap walk, counting the reason.

Ordering invariant: frozen rows are kept sorted by the heap's arrival
stamp, and every composed result is sorted the same way, so column output
always reproduces the heap scan order byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import InvalidTransactionState
from repro.htap.delta import DeltaEntry, DeltaStore
from repro.storage.colstore import ColumnStore
from repro.storage.table import TableSchema
from repro.txn.snapshot import Snapshot
from repro.txn.xid import INVALID_XID


class FrozenChunkSet:
    """The output of one merge: column chunks plus patching metadata."""

    def __init__(self, store: ColumnStore, keys: List[object],
                 stamps: List[int], rows: List[Dict[str, object]],
                 snapshot: Snapshot, merged_seq: int):
        self.store = store
        self.keys = keys
        self.stamps = stamps
        #: Row dicts in store order — the merge/compose working copy, kept
        #: so neither path re-decodes (or round-trips values through) the
        #: encoded chunks.
        self.rows = rows
        #: The merge-time snapshot: the watermark every served query
        #: snapshot must dominate.
        self.snapshot = snapshot
        #: First delta ``seq`` *not* folded into this chunk set.
        self.merged_seq = merged_seq
        self.pos_by_key: Dict[object, int] = {
            key: i for i, key in enumerate(keys)
        }

    @property
    def row_count(self) -> int:
        return len(self.rows)


class HtapTableStore:
    """One table's delta + frozen chunk state on one data node."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.delta = DeltaStore()
        self.frozen: Optional[FrozenChunkSet] = None
        self.merges = 0
        self.last_merge_us = 0.0
        self.max_lag_us = 0.0

    # -- write path (called from DataNode.commit) --------------------------

    def capture(self, dn, xid: int, op, now_us: float) -> None:
        """Record one committed redo op (``op`` is a ``RedoOp``)."""
        stamp = dn.heap(op.table).stamp_of(op.key)
        self.delta.append(xid, op.op, op.key, op.values, stamp, now_us)

    # -- merge -------------------------------------------------------------

    def merge(self, dn, now_us: float) -> Optional[Tuple[int, int, int]]:
        """Fold committed deltas into a fresh frozen chunk set.

        Returns ``(rows_read, rows_written, entries_applied)`` or ``None``
        when there was nothing to do.  The new chunk set is built aside and
        swapped in atomically at the end: a crash mid-merge (fault
        injection) leaves the old frozen state and the delta intact, so no
        row is ever lost or duplicated and a later merge simply redoes the
        work.
        """
        cutoff = len(self.delta.entries)
        if self.frozen is not None and cutoff == 0:
            return None
        merged_seq = self.delta.next_seq
        snapshot = dn.ltm.local_snapshot()
        if self.frozen is None:
            # Seed merge: build from a full heap scan (table registration,
            # or re-attachment after failover rebuilt the node).  The heap
            # already reflects every committed delta entry.
            heap = dn.heap(self.schema.name)
            items = sorted(
                ((heap.stamp_of(key), key, values)
                 for key, values in heap.scan(snapshot, dn.ltm.clog)),
                key=lambda item: item[0])
            rows_read = len(items)
        else:
            by_key: Dict[object, Tuple[int, Dict[str, object]]] = {}
            for stamp, key, values in zip(self.frozen.stamps,
                                          self.frozen.keys,
                                          self.frozen.rows):
                by_key[key] = (stamp, values)
            for entry in self.delta.entries[:cutoff]:
                if entry.op == "delete":
                    by_key.pop(entry.key, None)
                else:
                    by_key[entry.key] = (entry.stamp, entry.values)
            items = sorted(
                ((stamp, key, values)
                 for key, (stamp, values) in by_key.items()),
                key=lambda item: item[0])
            rows_read = self.frozen.row_count + cutoff
        for entry in self.delta.entries[:cutoff]:
            self.max_lag_us = max(self.max_lag_us,
                                  now_us - entry.commit_t_us)
        store = ColumnStore(self.schema, compress=True)
        store.append_rows(values for _stamp, _key, values in items)
        store.flush()
        self.frozen = FrozenChunkSet(
            store,
            keys=[key for _stamp, key, _values in items],
            stamps=[stamp for stamp, _key, _values in items],
            rows=[values for _stamp, _key, values in items],
            snapshot=snapshot,
            merged_seq=merged_seq,
        )
        self.delta.truncate(cutoff)
        self.merges += 1
        self.last_merge_us = now_us
        return rows_read, len(items), cutoff

    # -- read path ---------------------------------------------------------

    def compose(self, dn, snapshot, own_xid: int = INVALID_XID):
        """A ColumnStore for this table under ``snapshot``, or ``None``.

        ``None`` means the snapshot cannot be served from frozen + delta
        and the caller must walk the heap; the reason is counted.
        """
        reason = self._unservable_reason(dn, snapshot, own_xid)
        if reason is not None:
            dn._note(f"htap.fallback.{reason}")
            return None
        frozen = self.frozen
        clog = dn.ltm.clog
        # Last *visible* entry per key wins.  Sound because same-key
        # commits are serialized (first-updater-wins) and GTM-lite's
        # dependency taint hides dependent commits together, so the
        # visible entries of a key always form a prefix of its stream.
        finals: Dict[object, DeltaEntry] = {}
        for entry in self.delta.entries:
            if snapshot.xid_visible(entry.xid, clog, own_xid):
                finals[entry.key] = entry
        if not finals:
            dn._note("htap.scans_frozen")
            return frozen.store
        deleted = set()
        patched: Dict[int, Dict[str, object]] = {}
        extra: List[Tuple[int, Dict[str, object]]] = []
        for key, entry in finals.items():
            pos = frozen.pos_by_key.get(key)
            if pos is None:
                if entry.op != "delete":
                    extra.append((entry.stamp, entry.values))
            elif entry.op == "delete":
                deleted.add(pos)
            elif entry.stamp == frozen.stamps[pos]:
                patched[pos] = entry.values
            else:
                # The key's chain was dropped (vacuum) and re-created: it
                # now lives at a new heap position.
                deleted.add(pos)
                extra.append((entry.stamp, entry.values))
        rows = [(stamp, patched.get(i, values))
                for i, (stamp, values) in enumerate(zip(frozen.stamps,
                                                        frozen.rows))
                if i not in deleted]
        rows.extend(extra)
        rows.sort(key=lambda item: item[0])
        # Materialize with the legacy path's exact shape (uncompressed,
        # default chunking) so downstream vectorized aggregation sees the
        # same chunk boundaries and stays byte-identical.
        store = ColumnStore(self.schema, compress=False)
        store.append_rows(values for _stamp, values in rows)
        store.flush()
        dn._note("htap.scans_composed")
        return store

    def _unservable_reason(self, dn, snapshot, own_xid: int) -> Optional[str]:
        if self.frozen is None:
            return "cold"
        if not isinstance(snapshot, Snapshot):
            # Classical central-snapshot mode ships its own snapshot type.
            return "classical"
        if getattr(snapshot, "forced_committed", None):
            # UPGRADE revealed a PREPARED write that no delta entry holds.
            return "upgraded"
        watermark = self.frozen.snapshot
        if snapshot.xmax < watermark.xmax:
            return "stale_snapshot"
        forced_active = getattr(snapshot, "forced_active", None) or frozenset()
        for xid in set(snapshot.active) | set(forced_active):
            if xid < watermark.xmax and xid not in watermark.active:
                # The merge may have folded a commit this reader must not
                # see (DOWNGRADE re-hid it).  Conservative: walk the heap.
                return "hidden_commit"
        if own_xid != INVALID_XID:
            try:
                write_set = dn.ltm.write_set(own_xid)
            except InvalidTransactionState:
                write_set = None
            if write_set is not None and any(
                    table == self.schema.name
                    for table, _key in write_set.frozen()):
                # The reader's own uncommitted writes live only in the heap.
                return "own_writes"
        return None

    # -- introspection -----------------------------------------------------

    def freshness_lag_us(self, now_us: float) -> float:
        """Sim time the oldest committed write has waited for its merge."""
        oldest = self.delta.oldest_commit_us()
        return max(0.0, now_us - oldest) if oldest is not None else 0.0


class HtapNodeState:
    """All HTAP table stores on one data node."""

    def __init__(self) -> None:
        self.tables: Dict[str, HtapTableStore] = {}

    def capture_commit(self, dn, xid: int, redo, now_us: float) -> None:
        """Feed one committed transaction's redo ops into the deltas."""
        for op in redo:
            store = self.tables.get(op.table)
            if store is not None:
                store.capture(dn, xid, op, now_us)
