"""HTAP delta-merge storage (dual-format row + column, Sec. III-B).

The paper's FI-MPPDB/GaussDB line serves OLTP writes and vectorized
analytics from one system.  This package supplies the storage layer that
makes that claim real in the simulation: per-shard, per-table dual-format
storage where OLTP commits land in the MVCC row heap *and* a small
in-memory delta store, while a background merge daemon compacts committed
deltas into persistent frozen column chunks (``repro.storage.colstore``
encoding, kept across queries instead of rebuilt per scan).

Layout:

* :mod:`repro.htap.delta` — the committed-write delta store.
* :mod:`repro.htap.store` — per-table frozen chunk set + snapshot-composed
  reads (frozen chunks patched with visible delta entries).
* :mod:`repro.htap.manager` — the merge daemon: simulated-time pacing,
  failpoints, storage I/O charging, freshness accounting, ``sys.htap_*``
  view feeds.
"""

from repro.htap.delta import DeltaEntry, DeltaStore
from repro.htap.manager import HtapConfig, HtapManager, MergeEvent
from repro.htap.store import FrozenChunkSet, HtapNodeState, HtapTableStore

__all__ = [
    "DeltaEntry",
    "DeltaStore",
    "FrozenChunkSet",
    "HtapConfig",
    "HtapManager",
    "HtapNodeState",
    "HtapTableStore",
    "MergeEvent",
]
