"""The delta store: committed writes awaiting their column merge.

Only *committed* data ever enters a delta store — :meth:`DataNode.commit`
appends the transaction's redo ops at commit time, so entries appear in
commit order and aborts never touch the delta.  Each entry carries the
key's heap arrival stamp (see :class:`repro.storage.heap.MvccHeap`) and
the simulated commit time, which together give the merge its ordering
invariant and the freshness-lag metric its clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DeltaEntry:
    """One committed write, in commit order."""

    seq: int                 # position in this table's delta stream
    xid: int                 # local xid that committed the write
    op: str                  # 'insert' | 'update' | 'delete'
    key: object
    values: Optional[Dict[str, object]]   # full coerced row; None for delete
    stamp: int               # heap arrival stamp of the key at commit time
    commit_t_us: float       # simulated commit time (freshness clock)


class DeltaStore:
    """Append-only stream of committed writes for one table on one DN."""

    def __init__(self) -> None:
        self.entries: List[DeltaEntry] = []
        self._next_seq = 0

    def append(self, xid: int, op: str, key: object,
               values: Optional[Dict[str, object]], stamp: int,
               commit_t_us: float) -> DeltaEntry:
        entry = DeltaEntry(self._next_seq, xid, op, key,
                           dict(values) if values is not None else None,
                           stamp, commit_t_us)
        self._next_seq += 1
        self.entries.append(entry)
        return entry

    def truncate(self, count: int) -> None:
        """Drop the first ``count`` entries (they have been merged)."""
        del self.entries[:count]

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def oldest_commit_us(self) -> Optional[float]:
        """Commit time of the oldest unmerged entry (freshness anchor)."""
        return self.entries[0].commit_t_us if self.entries else None

    def __len__(self) -> int:
        return len(self.entries)
