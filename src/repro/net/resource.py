"""Serial-resource accounting for the performance simulation.

The paper's Figure 3 is, at bottom, a queueing phenomenon: the classical GTM
is a *serial* resource sitting on every transaction's critical path, so adding
data nodes stops helping; GTM-lite takes single-shard transactions off that
path, so the system scales with the number of data nodes.

We reproduce this with a deterministic trace-driven simulation.  Every
hardware component (each DN, each CN, the GTM) is a :class:`Resource` — a
FIFO server with a ``busy_until`` horizon.  Simulated clients run transactions
whose steps *acquire* resources for a service time; a step cannot start
before the resource is free.  Throughput is work divided by makespan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Resource:
    """A serial FIFO server with utilization accounting."""

    def __init__(self, name: str, speedup: float = 1.0):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.name = name
        self.speedup = speedup
        self.busy_until_us = 0.0
        self.total_busy_us = 0.0
        self.requests = 0

    def acquire(self, ready_us: float, service_us: float) -> Tuple[float, float]:
        """Serve a request that arrives at ``ready_us`` and needs ``service_us``.

        Returns ``(start_us, end_us)``: service begins when both the caller is
        ready and the resource is free, and occupies the resource until
        ``end_us``.  Use for strictly time-ordered request streams.
        """
        if service_us < 0:
            raise ValueError("service time must be non-negative")
        scaled = service_us / self.speedup
        start = max(ready_us, self.busy_until_us)
        end = start + scaled
        self.busy_until_us = end
        self.total_busy_us += scaled
        self.requests += 1
        return start, end

    def occupy(self, service_us: float) -> float:
        """Accumulate busy time without a timeline position.

        Used by the bottleneck-law accounting mode: clients advance their own
        cursors by latency+service, while each resource independently sums the
        service demand placed on it.  The simulation's makespan is then
        ``max(slowest client, busiest resource)`` — the classic operational
        bound that determines where throughput saturates.
        """
        if service_us < 0:
            raise ValueError("service time must be non-negative")
        scaled = service_us / self.speedup
        self.total_busy_us += scaled
        self.requests += 1
        return scaled

    def utilization(self, horizon_us: float) -> float:
        """Fraction of ``[0, horizon_us]`` this resource spent busy."""
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.total_busy_us / horizon_us)

    def reset(self) -> None:
        self.busy_until_us = 0.0
        self.total_busy_us = 0.0
        self.requests = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, busy={self.total_busy_us:.0f}us, n={self.requests})"


class ResourcePool:
    """A named collection of resources with aggregate reporting."""

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}

    def add(self, name: str, speedup: float = 1.0) -> Resource:
        if name in self._resources:
            raise ValueError(f"duplicate resource {name!r}")
        res = Resource(name, speedup)
        self._resources[name] = res
        return res

    def get(self, name: str) -> Resource:
        try:
            return self._resources[name]
        except KeyError:
            raise KeyError(f"unknown resource {name!r}") from None

    def get_or_add(self, name: str, speedup: float = 1.0) -> Resource:
        if name not in self._resources:
            return self.add(name, speedup)
        return self._resources[name]

    def names(self) -> List[str]:
        return sorted(self._resources)

    def reset(self) -> None:
        for res in self._resources.values():
            res.reset()

    def makespan_us(self) -> float:
        """Latest time any resource is busy until."""
        if not self._resources:
            return 0.0
        return max(r.busy_until_us for r in self._resources.values())

    def max_busy_us(self) -> float:
        """Total busy time of the busiest resource (the bottleneck bound)."""
        if not self._resources:
            return 0.0
        return max(r.total_busy_us for r in self._resources.values())

    def busiest(self) -> Optional[Resource]:
        """The resource with the highest total busy time (the bottleneck)."""
        if not self._resources:
            return None
        return max(self._resources.values(), key=lambda r: r.total_busy_us)

    def report(self, horizon_us: Optional[float] = None) -> Dict[str, float]:
        """Per-resource utilization over ``horizon_us`` (default: makespan)."""
        horizon = horizon_us if horizon_us is not None else self.makespan_us()
        return {name: res.utilization(horizon) for name, res in sorted(self._resources.items())}
