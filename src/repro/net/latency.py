"""Cost-model constants for the simulated environments.

The paper reports results from: an MPP cluster of commodity servers (Fig. 3),
virtualized 3.0 GHz Linux servers on a 10 Gbps network (Fig. 11), and a
device/edge/cloud setting where "direct communication between devices based
on Bluetooth is at least 10X faster than communications through the
Internet" (Sec. IV-B.2).

Absolute values here are plausible datacenter numbers; every reproduced
result depends only on their *ratios*, which follow the paper's statements.
All times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MppCostModel:
    """Service times for the MPP cluster simulation (Fig. 3).

    The GTM costs are per *request* and are serialized on the GTM resource;
    DN costs are serialized per data node.  A classical-GTM transaction pays
    ``gtm_xid_us + gtm_snapshot_us (+ gtm_commit_us)`` on the central GTM,
    while a GTM-lite single-shard transaction pays nothing there.
    """

    # One network hop between any two cluster components (half an RTT).
    lan_hop_us: float = 25.0
    # CN work: parse/route a statement.
    cn_route_us: float = 4.0
    # GTM work, serialized on the GTM resource.  The GTM is single-threaded
    # in Postgres-XC derivatives and its snapshot messages carry the whole
    # active-transaction list, so per-request costs are substantial.
    gtm_xid_us: float = 20.0         # assign a GXID, enqueue on active list
    gtm_snapshot_us: float = 100.0   # build + serialize the active-txn list
    gtm_snapshot_per_active_us: float = 0.5  # snapshot size grows with load
    gtm_commit_us: float = 30.0      # mark a GXID committed / dequeue it
    # DN work, serialized per data node.
    dn_begin_us: float = 5.0         # local xid + local snapshot
    dn_stmt_us: float = 30.0         # execute one read/write statement
    dn_merge_snapshot_us: float = 8.0  # run MergeSnapshot (GTM-lite readers)
    dn_commit_us: float = 15.0       # local commit record
    dn_prepare_us: float = 60.0      # 2PC prepare (flush prepare record)
    dn_commit_prepared_us: float = 40.0  # 2PC phase-two commit
    # Exchange (data-movement) costs, charged by the executor's PExchange.
    # The optimizer "accounts for the cost of data exchange": each exchange
    # edge pays a fixed setup (stream open, teardown) plus a per-byte wire
    # cost over rows * estimated row width.
    exchange_startup_us: float = 50.0   # per exchange edge (sender stream)
    wire_byte_us: float = 0.002         # serialize + transmit one byte

    def scaled(self, factor: float) -> "MppCostModel":
        """Return a copy with every cost multiplied by ``factor``."""
        return replace(
            self,
            **{f: getattr(self, f) * factor
               for f in self.__dataclass_fields__},  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class GmdbCostModel:
    """Service times for the GMDB simulation (Fig. 11).

    Based on the paper's setting: virtualized clients/servers with 3.0 GHz
    CPUs on a 10 Gbps network, 5–10 KB session objects.
    """

    rtt_us: float = 120.0                 # client <-> DN round trip (10 GbE)
    byte_wire_us: float = 0.0008          # per-byte serialization+wire cost
    kv_read_us: float = 3.0               # in-memory point lookup
    kv_write_us: float = 5.0              # in-memory upsert
    convert_field_us: float = 0.6         # schema-convert one field
    validate_field_us: float = 0.25       # validate one field against schema
    delta_apply_field_us: float = 0.8     # apply one delta entry


@dataclass(frozen=True)
class CollabCostModel:
    """Latency constants for device/edge/cloud synchronization.

    The paper: direct device-to-device (Bluetooth/ad-hoc WLAN) communication
    is "at least 10X faster" than going through the Internet to the cloud.
    """

    d2d_rtt_us: float = 6_000.0           # Bluetooth/ad-hoc round trip
    internet_rtt_us: float = 60_000.0     # device <-> cloud round trip
    edge_rtt_us: float = 12_000.0         # device <-> edge server
    byte_d2d_us: float = 0.03             # per-byte transfer, device link
    byte_internet_us: float = 0.01        # per-byte transfer, uplink
    cloud_process_us: float = 500.0       # cloud-side request handling


@dataclass(frozen=True)
class EnvironmentProfile:
    """Bundle of the three cost models plus identification metadata."""

    name: str = "default"
    mpp: MppCostModel = field(default_factory=MppCostModel)
    gmdb: GmdbCostModel = field(default_factory=GmdbCostModel)
    collab: CollabCostModel = field(default_factory=CollabCostModel)


DEFAULT_PROFILE = EnvironmentProfile()
