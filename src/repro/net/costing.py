"""Cost context: threads a simulated-time cursor through cluster operations.

A :class:`CostContext` represents one simulated client's point in time.  As
the client's transaction steps acquire serial resources (the GTM, data
nodes), the cursor advances: each step begins no earlier than both the
cursor and the resource allow, mirroring an RPC to a busy server.

Correctness code never depends on a context — every cluster operation
accepts ``ctx=None`` and simply skips accounting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.latency import MppCostModel
from repro.net.resource import Resource, ResourcePool
from repro.storage.types import DataType

#: Wire width (bytes) per column type for exchange costing.  Fixed-width
#: types serialize as their storage width; TEXT uses a typical short-string
#: estimate; unknown/untyped columns fall back to 8 bytes.
_TYPE_WIDTH_BYTES = {
    DataType.INT: 8,
    DataType.BIGINT: 8,
    DataType.DOUBLE: 8,
    DataType.TIMESTAMP: 8,
    DataType.BOOL: 1,
    DataType.TEXT: 32,
}
_DEFAULT_WIDTH_BYTES = 8


def row_width_bytes(types: Iterable[Optional[DataType]]) -> int:
    """Estimated serialized width of one row with the given column types."""
    return sum(_TYPE_WIDTH_BYTES.get(t, _DEFAULT_WIDTH_BYTES) for t in types)


def exchange_cost_us(model: MppCostModel, rows: int, width_bytes: int,
                     edges: int = 1, hop_us: Optional[float] = None) -> float:
    """Simulated cost of moving ``rows`` through one exchange operator.

    Each of the ``edges`` sender streams pays a startup cost plus a network
    hop pair; the data itself pays a per-byte wire cost over
    ``rows * width_bytes`` (rows are whatever actually crossed the exchange,
    so a partial aggregate that collapses a million rows into fifty groups
    moves fifty rows' worth of bytes).

    ``hop_us`` is the one-way hop latency the exchange's streams actually
    cross.  Callers that know their topology resolve it through
    :meth:`repro.net.fabric.Fabric.hop_us` (LAN within a region, WAN
    across regions); ``None`` falls back to the cost model's LAN hop, the
    single-region behavior.
    """
    edges = max(1, int(edges))
    if hop_us is None:
        hop_us = model.lan_hop_us
    startup = edges * (model.exchange_startup_us + 2 * hop_us)
    return startup + model.wire_byte_us * float(rows) * float(width_bytes)


class CostContext:
    """One client's simulated-time cursor plus the shared cost model."""

    def __init__(self, pool: ResourcePool, model: MppCostModel, start_us: float = 0.0):
        self.pool = pool
        self.model = model
        self.t_us = float(start_us)

    def charge(self, resource: Resource, service_us: float, hops: int = 1) -> float:
        """RPC to ``resource``: pay network hops plus service.

        The client's cursor advances by the round trip and the service time;
        the resource accumulates the service demand.  Queueing is accounted
        at the simulation level by the bottleneck law — the run's makespan is
        ``max(slowest client cursor, busiest resource demand)`` — rather than
        per-request, because the driver replays whole transactions and a
        per-request FIFO horizon would falsely serialize concurrent
        transactions around network gaps.  Returns the new cursor time.
        """
        scaled = resource.occupy(service_us)
        self.t_us += 2 * hops * self.model.lan_hop_us + scaled
        return self.t_us

    def charge_local(self, service_us: float) -> float:
        """Client-side (or CN-side) work that occupies no shared resource."""
        self.t_us += service_us
        return self.t_us

    def wait_until(self, t_us: float) -> float:
        if t_us > self.t_us:
            self.t_us = t_us
        return self.t_us


def maybe_charge(ctx: Optional[CostContext], resource: Optional[Resource],
                 service_us: float, hops: int = 1) -> None:
    """Charge if a context is present; no-op in pure-correctness runs."""
    if ctx is not None and resource is not None:
        ctx.charge(resource, service_us, hops)
