"""A tiny simulated message fabric for the collaboration platform.

Endpoints register under a name; messages are delivered synchronously (the
simulation is single-threaded) but pay simulated latency, and links can be
cut to model partitions or out-of-range devices.  The MPP cluster does not
use this module — its communication costs are charged straight to
:class:`repro.net.resource.Resource` objects — but the device/edge/cloud
platform needs reachability and partitions, and the geo-replication layer
(:mod:`repro.geo`) needs region-aware WAN links, which live here.

Partitions are **direction-aware**: cutting A→B does not implicitly drop
B→A.  Asymmetric partitions (a region that can send but not receive) are
the interesting WAN chaos case, so :meth:`Fabric.disconnect` takes a
``bidirectional`` flag — defaulting to ``True``, the historical behavior.

Endpoints can be tagged with a *region* (:meth:`Fabric.set_region`); the
fabric then answers WAN-vs-LAN latency questions itself
(:meth:`Fabric.hop_us`) instead of every caller hand-picking the right
RTT ratio.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.common.clock import SimClock
from repro.common.errors import NetworkError

Handler = Callable[[str, object], object]


class Fabric:
    """Named endpoints + point-to-point links with per-link latency."""

    def __init__(self, clock: Optional[SimClock] = None,
                 intra_region_hop_us: float = 25.0,
                 inter_region_hop_us: float = 30_000.0):
        self.clock = clock or SimClock()
        self._handlers: Dict[str, Handler] = {}
        self._latency_us: Dict[Tuple[str, str], float] = {}
        self._cut: Set[Tuple[str, str]] = set()
        #: Region tags (``set_region``): the basis for :meth:`hop_us` when
        #: no explicit link latency was configured.
        self._regions: Dict[str, str] = {}
        #: Default one-hop latencies for region-derived lookups: LAN within
        #: a region, WAN across regions.
        self.intra_region_hop_us = float(intra_region_hop_us)
        self.inter_region_hop_us = float(inter_region_hop_us)
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- topology -----------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove an endpoint *and* every link touching it.

        Leaving ``_latency_us``/``_cut`` entries behind would let a later
        same-named endpoint (the failover-promotion rename case) silently
        inherit the dead endpoint's links — including cuts it never made —
        so ``neighbors()``/``reachable()`` would resurrect stale topology.
        """
        self._handlers.pop(name, None)
        self._regions.pop(name, None)
        for pair in [p for p in self._latency_us if name in p]:
            del self._latency_us[pair]
        self._cut = {p for p in self._cut if name not in p}

    def connect(self, a: str, b: str, latency_us: float) -> None:
        """Create (or update) a bidirectional link between ``a`` and ``b``."""
        self._latency_us[(a, b)] = latency_us
        self._latency_us[(b, a)] = latency_us
        self._cut.discard((a, b))
        self._cut.discard((b, a))

    def disconnect(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Cut the link ``a``→``b`` (partition / out of range).

        ``bidirectional=True`` (the default, and the historical behavior)
        also cuts ``b``→``a``.  Pass ``bidirectional=False`` for an
        asymmetric partition: ``a`` can no longer reach ``b``, but ``b``
        still reaches ``a`` — the half-open WAN failure geo chaos cares
        about.
        """
        self._cut.add((a, b))
        if bidirectional:
            self._cut.add((b, a))

    def reconnect(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Heal the ``a``→``b`` cut (both directions by default)."""
        if (a, b) not in self._latency_us:
            raise NetworkError(f"no link {a!r} <-> {b!r} to reconnect")
        self._cut.discard((a, b))
        if bidirectional:
            self._cut.discard((b, a))

    def reachable(self, src: str, dst: str) -> bool:
        return (
            dst in self._handlers
            and (src, dst) in self._latency_us
            and (src, dst) not in self._cut
        )

    def neighbors(self, src: str) -> Set[str]:
        """Endpoints directly reachable from ``src`` right now."""
        out = set()
        for (a, b) in self._latency_us:
            if a == src and (a, b) not in self._cut and b in self._handlers:
                out.add(b)
        return out

    # -- regions ------------------------------------------------------------

    def set_region(self, name: str, region: str) -> None:
        """Tag an endpoint with the region it lives in."""
        self._regions[name] = region

    def region_of(self, name: str) -> Optional[str]:
        """The region an endpoint was tagged with, or ``None``."""
        return self._regions.get(name)

    def same_region(self, a: str, b: str) -> bool:
        """True when both endpoints carry the same (known) region tag."""
        ra = self._regions.get(a)
        return ra is not None and ra == self._regions.get(b)

    def hop_us(self, a: str, b: str) -> float:
        """One-hop latency between two endpoints.

        An explicitly configured link wins; otherwise the answer derives
        from region tags — LAN within a region, WAN across regions — so
        callers stop hand-picking the WAN/LAN ratio themselves.
        """
        explicit = self._latency_us.get((a, b))
        if explicit is not None:
            return explicit
        if self.same_region(a, b):
            return self.intra_region_hop_us
        return self.inter_region_hop_us

    # -- messaging ----------------------------------------------------------

    def send(self, src: str, dst: str, payload: object, size_bytes: int = 0) -> object:
        """Deliver ``payload`` to ``dst`` and return the handler's reply.

        Advances the fabric clock by one round trip (request + response hop)
        plus a per-byte cost; raises :class:`NetworkError` when unreachable.
        """
        if not self.reachable(src, dst):
            raise NetworkError(f"{dst!r} unreachable from {src!r}")
        latency = self._latency_us[(src, dst)]
        self.clock.advance(2 * latency + 0.01 * size_bytes)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        return self._handlers[dst](src, payload)
