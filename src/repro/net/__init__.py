"""Simulated environment: resources, cost models, message fabric."""

from repro.net.costing import CostContext
from repro.net.fabric import Fabric
from repro.net.latency import (
    DEFAULT_PROFILE,
    CollabCostModel,
    EnvironmentProfile,
    GmdbCostModel,
    MppCostModel,
)
from repro.net.resource import Resource, ResourcePool

__all__ = [
    "Resource", "ResourcePool", "CostContext", "Fabric",
    "MppCostModel", "GmdbCostModel", "CollabCostModel",
    "EnvironmentProfile", "DEFAULT_PROFILE",
]
