"""repro — a reproduction of "Data Management at Huawei" (ICDE 2019).

Subpackages:

* :mod:`repro.cluster` / :mod:`repro.core` — the FI-MPPDB simulation and the
  GTM-lite distributed transaction protocol (the paper's Sec. II-A).
* :mod:`repro.sql`, :mod:`repro.optimizer`, :mod:`repro.exec`,
  :mod:`repro.learnopt` — the SQL stack with the learning optimizer
  (Sec. II-C).
* :mod:`repro.multimodel` — graph / time-series / spatial engines unified
  over SQL (Sec. II-B).
* :mod:`repro.gmdb` — the telecom in-memory database with online schema
  evolution (Sec. III).
* :mod:`repro.autonomous` — the autonomous-database components (Sec. IV-A).
* :mod:`repro.collab` — the device-edge-cloud collaboration platform
  (Sec. IV-B).
"""

__version__ = "0.1.0"

from repro.cluster import MppCluster, TxnMode
from repro.gmdb import GmdbCluster
from repro.multimodel import MultiModelDB
from repro.sql import SqlEngine

__all__ = ["MppCluster", "TxnMode", "SqlEngine", "MultiModelDB",
           "GmdbCluster", "__version__"]
