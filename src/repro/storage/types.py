"""Column data types shared by the row store, column store and SQL layer."""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.common.errors import StorageError


class DataType(enum.Enum):
    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    TEXT = "text"
    BOOL = "bool"
    TIMESTAMP = "timestamp"   # stored as integer microseconds

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.DOUBLE, DataType.TIMESTAMP)


_NUMPY_DTYPES = {
    DataType.INT: np.dtype(np.int64),
    DataType.BIGINT: np.dtype(np.int64),
    DataType.DOUBLE: np.dtype(np.float64),
    DataType.TEXT: np.dtype(object),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.TIMESTAMP: np.dtype(np.int64),
}

_PY_TYPES = {
    DataType.INT: int,
    DataType.BIGINT: int,
    DataType.DOUBLE: float,
    DataType.TEXT: str,
    DataType.BOOL: bool,
    DataType.TIMESTAMP: int,
}


def coerce(value: object, data_type: DataType) -> Optional[object]:
    """Coerce ``value`` to the Python representation of ``data_type``.

    ``None`` passes through (SQL NULL).  Raises :class:`StorageError` on an
    impossible coercion, e.g. a non-numeric string into INT.
    """
    if value is None:
        return None
    py = _PY_TYPES[data_type]
    if data_type is DataType.BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return bool(value)
        raise StorageError(f"cannot coerce {value!r} to BOOL")
    if py is int and isinstance(value, bool):
        raise StorageError(f"cannot coerce bool {value!r} to {data_type.value}")
    try:
        if py is float and isinstance(value, (int, float)):
            return float(value)
        if py is int:
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
            raise StorageError(f"cannot coerce {value!r} to {data_type.value}")
        if py is str:
            if isinstance(value, str):
                return value
            raise StorageError(f"cannot coerce {value!r} to TEXT")
        return py(value)
    except (TypeError, ValueError) as exc:
        raise StorageError(f"cannot coerce {value!r} to {data_type.value}: {exc}") from None


def type_of_literal(value: object) -> DataType:
    """Infer the natural column type of a Python literal."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.BIGINT
    if isinstance(value, float):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.TEXT
    raise StorageError(f"no SQL type for literal {value!r}")
