"""Columnar compression codecs.

FI-MPPDB's column store ships with "data compression"; we implement the
three classic lightweight encodings used by analytic engines:

* run-length encoding (RLE) — long runs of equal values,
* dictionary encoding — low-cardinality columns,
* delta (frame-of-reference) encoding — slowly changing numeric columns,
  e.g. timestamps.

Codecs are lossless; :func:`best_codec` picks the smallest encoding for a
chunk the way a storage engine's encoder would.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import StorageError


class RunLengthCodec:
    """RLE over an arbitrary value sequence."""

    name = "rle"

    @staticmethod
    def encode(values: Sequence[object]) -> List[Tuple[object, int]]:
        runs: List[Tuple[object, int]] = []
        for value in values:
            if runs and runs[-1][0] == value:
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        return runs

    @staticmethod
    def decode(runs: Sequence[Tuple[object, int]]) -> List[object]:
        out: List[object] = []
        for value, count in runs:
            if count <= 0:
                raise StorageError(f"bad RLE run length {count}")
            out.extend([value] * count)
        return out

    @staticmethod
    def encoded_size(runs: Sequence[Tuple[object, int]]) -> int:
        return 2 * len(runs)


class DictionaryCodec:
    """Dictionary encoding: values -> small integer codes."""

    name = "dict"

    @staticmethod
    def encode(values: Sequence[object]) -> Tuple[List[object], List[int]]:
        mapping: Dict[object, int] = {}
        codes: List[int] = []
        dictionary: List[object] = []
        for value in values:
            code = mapping.get(value)
            if code is None:
                code = len(dictionary)
                mapping[value] = code
                dictionary.append(value)
            codes.append(code)
        return dictionary, codes

    @staticmethod
    def decode(dictionary: Sequence[object], codes: Sequence[int]) -> List[object]:
        try:
            return [dictionary[c] for c in codes]
        except IndexError:
            raise StorageError("dictionary code out of range") from None

    @staticmethod
    def encoded_size(dictionary: Sequence[object], codes: Sequence[int]) -> int:
        return len(dictionary) + max(1, len(codes) // 4)


class DeltaCodec:
    """Frame-of-reference + deltas for integer-like columns."""

    name = "delta"

    @staticmethod
    def encode(values: Sequence[int]) -> Tuple[int, List[int]]:
        if len(values) == 0:
            return 0, []
        arr = np.asarray(values, dtype=np.int64)
        base = int(arr[0])
        deltas = np.diff(arr, prepend=base).astype(np.int64)
        deltas[0] = 0
        return base, deltas.tolist()

    @staticmethod
    def decode(base: int, deltas: Sequence[int]) -> List[int]:
        if not deltas:
            return []
        arr = np.cumsum(np.asarray(deltas, dtype=np.int64)) + base
        return arr.tolist()

    @staticmethod
    def encoded_size(base: int, deltas: Sequence[int]) -> int:
        if not deltas:
            return 1
        # Small deltas pack tighter; approximate with max byte width.
        width = max(1, int(np.max(np.abs(deltas))).bit_length() // 8 + 1)
        return 1 + len(deltas) * width // 8 + 1


def best_codec(values: Sequence[object]) -> Tuple[str, object]:
    """Encode ``values`` with each applicable codec, return the smallest.

    Returns ``(codec_name, payload)``; ``'plain'`` if nothing beat raw.
    """
    n = len(values)
    candidates: List[Tuple[int, str, object]] = [(n, "plain", list(values))]

    runs = RunLengthCodec.encode(values)
    candidates.append((RunLengthCodec.encoded_size(runs), "rle", runs))

    dictionary, codes = DictionaryCodec.encode(values)
    if len(dictionary) < max(2, n // 2):
        candidates.append(
            (DictionaryCodec.encoded_size(dictionary, codes), "dict", (dictionary, codes))
        )

    if n and all(isinstance(v, (int, np.integer)) and not isinstance(v, bool) for v in values):
        base, deltas = DeltaCodec.encode(values)  # type: ignore[arg-type]
        candidates.append((DeltaCodec.encoded_size(base, deltas), "delta", (base, deltas)))

    candidates.sort(key=lambda c: (c[0], _CODEC_ORDER[c[1]]))
    _, name, payload = candidates[0]
    return name, payload


_CODEC_ORDER = {"plain": 3, "rle": 0, "dict": 1, "delta": 2}


def decode(name: str, payload: object) -> List[object]:
    """Inverse of :func:`best_codec`."""
    if name == "plain":
        return list(payload)  # type: ignore[arg-type]
    if name == "rle":
        return RunLengthCodec.decode(payload)  # type: ignore[arg-type]
    if name == "dict":
        dictionary, codes = payload  # type: ignore[misc]
        return DictionaryCodec.decode(dictionary, codes)
    if name == "delta":
        base, deltas = payload  # type: ignore[misc]
        return DeltaCodec.decode(base, deltas)
    raise StorageError(f"unknown codec {name!r}")
