"""Storage engines: MVCC row heap, columnar store, indexes, compression."""

from repro.storage.colstore import ColumnStore, ColumnVector
from repro.storage.heap import MvccHeap, TupleVersion
from repro.storage.index import HashIndex, OrderedIndex, make_index
from repro.storage.table import Column, Distribution, Orientation, TableSchema
from repro.storage.types import DataType, coerce

__all__ = [
    "MvccHeap", "TupleVersion", "ColumnStore", "ColumnVector",
    "TableSchema", "Column", "Distribution", "Orientation",
    "HashIndex", "OrderedIndex", "make_index", "DataType", "coerce",
]
