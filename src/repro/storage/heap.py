"""MVCC row store (the per-DN heap).

Tuples carry PostgreSQL-style ``xmin``/``xmax`` headers exactly like the
visibility table in the paper's Anomaly 2 discussion:

========  ======  ======  =========
tuple     Xmin    Xmax    meaning
========  ======  ======  =========
tuple1    —       T1      existed before T1, deleted by T1
tuple2    T1      T3      inserted by T1, superseded by T3
tuple3    T3      —       inserted by T3, current
========  ======  ======  =========

A *version chain* per primary key records history newest-last.  Visibility
of a version under a snapshot ``s``:

* the inserting ``xmin`` must be visible to ``s``; and
* the deleting ``xmax`` must be absent or *not* visible to ``s``.

Updates use first-updater-wins: writing a key whose newest version was
created or deleted by a concurrent (or snapshot-invisible committed)
transaction raises :class:`SerializationConflict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import DuplicateKeyError, SerializationConflict, StorageError
from repro.txn.snapshot import Snapshot
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.xid import INVALID_XID


@dataclass
class TupleVersion:
    """One version of one logical row."""

    xmin: int
    values: Dict[str, object]
    xmax: int = INVALID_XID

    def header(self) -> Tuple[int, int]:
        return self.xmin, self.xmax


class MvccHeap:
    """Version-chained key/value heap with snapshot visibility."""

    def __init__(self, name: str):
        self.name = name
        self._chains: Dict[object, List[TupleVersion]] = {}
        # Arrival stamps: a monotone per-key stamp assigned when a chain is
        # created and retired when the chain is deleted.  Because chains are
        # only ever appended or removed (never reordered), ascending stamp
        # order equals dict insertion order equals :meth:`scan` order — the
        # invariant the HTAP column path relies on to reproduce heap scan
        # output byte-for-byte from frozen chunks plus delta entries.
        self._stamps: Dict[object, int] = {}
        self._next_stamp = 0

    # -- write path -------------------------------------------------------

    def insert(self, key: object, values: Dict[str, object], xid: int,
               snapshot: Snapshot, clog: StatusLog) -> None:
        """Insert a new row; the key must not be visibly or concurrently alive."""
        if key not in self._chains:
            self._stamps[key] = self._next_stamp
            self._next_stamp += 1
        chain = self._chains.setdefault(key, [])
        newest = chain[-1] if chain else None
        if newest is not None:
            if self._version_alive(newest, xid, snapshot, clog):
                raise DuplicateKeyError(f"{self.name}: key {key!r} already exists")
            if self._in_doubt_by_other(newest.xmin, xid, clog) and newest.xmax == INVALID_XID:
                raise SerializationConflict(
                    f"{self.name}: key {key!r} being inserted by concurrent txn"
                )
        chain.append(TupleVersion(xmin=xid, values=dict(values)))

    def update(self, key: object, values: Dict[str, object], xid: int,
               snapshot: Snapshot, clog: StatusLog) -> None:
        """Replace the visible version of ``key`` with new values."""
        old = self._writable_version(key, xid, snapshot, clog)
        old.xmax = xid
        self._chains[key].append(TupleVersion(xmin=xid, values=dict(values)))

    def delete(self, key: object, xid: int, snapshot: Snapshot, clog: StatusLog) -> None:
        old = self._writable_version(key, xid, snapshot, clog)
        old.xmax = xid

    def abort_writes(self, xid: int) -> int:
        """Physically undo ``xid``'s insertions and xmax marks (rollback).

        The simulation applies rollback eagerly instead of leaving dead
        versions for vacuum; returns the number of versions touched.
        Prefer :meth:`abort_key` driven by the transaction's write set —
        this full-heap sweep exists as a fallback and for tests.
        """
        touched = 0
        for key in list(self._chains):
            touched += self.abort_key(key, xid)
        return touched

    def abort_key(self, key: object, xid: int) -> int:
        """Undo ``xid``'s effects on one key's version chain."""
        chain = self._chains.get(key)
        if chain is None:
            return 0
        touched = 0
        kept = []
        for version in chain:
            if version.xmin == xid:
                touched += 1
                continue
            if version.xmax == xid:
                version.xmax = INVALID_XID
                touched += 1
            kept.append(version)
        if kept:
            self._chains[key] = kept
        else:
            del self._chains[key]
            del self._stamps[key]
        return touched

    # -- read path ----------------------------------------------------------

    def read(self, key: object, snapshot: Snapshot, clog: StatusLog,
             own_xid: int = INVALID_XID) -> Optional[Dict[str, object]]:
        """Return the visible values for ``key`` or None."""
        version = self._visible_version(key, snapshot, clog, own_xid)
        return dict(version.values) if version is not None else None

    def scan(self, snapshot: Snapshot, clog: StatusLog,
             own_xid: int = INVALID_XID) -> Iterator[Tuple[object, Dict[str, object]]]:
        """Yield every visible (key, values) pair, in key insertion order."""
        for key, chain in self._chains.items():
            version = self._pick_visible(chain, snapshot, clog, own_xid)
            if version is not None:
                yield key, dict(version.values)

    def version_chain(self, key: object) -> List[TupleVersion]:
        """Raw version chain for ``key`` (introspection / tests)."""
        return list(self._chains.get(key, []))

    def stamp_of(self, key: object) -> int:
        """Arrival stamp for ``key`` (see ``_stamps``); key must be live."""
        return self._stamps[key]

    def vacuum(self, oldest_snapshot: Snapshot, clog: StatusLog) -> int:
        """Remove versions dead to every possible present or future snapshot."""
        removed = 0
        for key in list(self._chains):
            chain = self._chains[key]
            kept = []
            for version in chain:
                dead = (
                    version.xmax != INVALID_XID
                    and not oldest_snapshot.sees_as_running(version.xmax)
                    and clog.knows(version.xmax)
                    and clog.is_committed(version.xmax)
                )
                aborted_insert = (
                    clog.knows(version.xmin) and clog.is_aborted(version.xmin)
                )
                if dead or aborted_insert:
                    removed += 1
                else:
                    kept.append(version)
            if kept:
                self._chains[key] = kept
            else:
                del self._chains[key]
                del self._stamps[key]
        return removed

    def __len__(self) -> int:
        """Number of keys with at least one version (any visibility)."""
        return len(self._chains)

    # -- internals -----------------------------------------------------------

    def _visible_version(self, key: object, snapshot: Snapshot, clog: StatusLog,
                         own_xid: int) -> Optional[TupleVersion]:
        chain = self._chains.get(key)
        if not chain:
            return None
        return self._pick_visible(chain, snapshot, clog, own_xid)

    @staticmethod
    def _pick_visible(chain: List[TupleVersion], snapshot: Snapshot,
                      clog: StatusLog, own_xid: int) -> Optional[TupleVersion]:
        # Newest-first: at most one version of a key is visible per snapshot.
        for version in reversed(chain):
            if not snapshot.xid_visible(version.xmin, clog, own_xid):
                continue
            if version.xmax != INVALID_XID and snapshot.xid_visible(version.xmax, clog, own_xid):
                continue
            return version
        return None

    def _writable_version(self, key: object, xid: int, snapshot: Snapshot,
                          clog: StatusLog) -> TupleVersion:
        chain = self._chains.get(key)
        if not chain:
            raise StorageError(f"{self.name}: key {key!r} does not exist")
        newest = chain[-1]
        visible = self._pick_visible(chain, snapshot, clog, xid)
        if visible is None:
            raise StorageError(f"{self.name}: key {key!r} not visible to txn {xid}")
        if visible is not newest or self._modified_by_other(newest, xid, snapshot, clog):
            # First-updater-wins under snapshot isolation.
            raise SerializationConflict(
                f"{self.name}: concurrent update of key {key!r} (txn {xid})"
            )
        return visible

    def _modified_by_other(self, newest: TupleVersion, xid: int,
                           snapshot: Snapshot, clog: StatusLog) -> bool:
        if newest.xmax != INVALID_XID and newest.xmax != xid:
            blocker = newest.xmax
            if clog.knows(blocker) and clog.is_aborted(blocker):
                return False
            return True
        if newest.xmin != xid and not snapshot.xid_visible(newest.xmin, clog, xid):
            # The newest version itself came from a transaction we can't see.
            return not (clog.knows(newest.xmin) and clog.is_aborted(newest.xmin))
        return False

    def _version_alive(self, version: TupleVersion, xid: int,
                       snapshot: Snapshot, clog: StatusLog) -> bool:
        if not snapshot.xid_visible(version.xmin, clog, xid):
            return False
        if version.xmax == INVALID_XID:
            return True
        return not snapshot.xid_visible(version.xmax, clog, xid)

    @staticmethod
    def _in_doubt_by_other(xid: int, me: int, clog: StatusLog) -> bool:
        return xid != me and clog.knows(xid) and clog.is_in_doubt(xid)
