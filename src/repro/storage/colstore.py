"""Columnar store with numpy-backed chunks.

The analytic side of FI-MPPDB: append-only column chunks that the vectorized
execution engine (:mod:`repro.exec.vectorized`) scans with SIMD-style numpy
kernels.  Chunks are optionally compressed at seal time and decompressed
lazily on access.

The column store is not MVCC: OLAP tables are bulk-loaded, matching the
paper's "OLAP queries over mostly-appended data" usage.  The HTAP path reads
fresh transactional rows from the MVCC heap instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.errors import StorageError
from repro.storage import compression
from repro.storage.table import TableSchema, rows_to_columns
from repro.storage.types import DataType

DEFAULT_CHUNK_ROWS = 4096


@dataclass
class ColumnChunk:
    """One column's values for one horizontal chunk of rows."""

    column: str
    data_type: DataType
    codec: str
    payload: object
    row_count: int
    #: Decode-once cache.  Sealed chunks are immutable, so the decoded
    #: vector can be reused across scans; consumers must treat it as
    #: read-only (the arrays are marked non-writeable to enforce that).
    _decoded: Optional["ColumnVector"] = field(
        default=None, repr=False, compare=False)

    def decode(self) -> np.ndarray:
        values = compression.decode(self.codec, self.payload)
        if len(values) != self.row_count:
            raise StorageError(
                f"chunk {self.column}: decoded {len(values)} rows, expected {self.row_count}"
            )
        if self.data_type is DataType.TEXT:
            return np.array(values, dtype=object)
        arr = np.empty(self.row_count, dtype=self.data_type.numpy_dtype)
        mask = [v is None for v in values]
        if any(mask):
            # NULLs are materialized as the type's sentinel; a parallel
            # validity mask is produced by ``decode_with_nulls``.
            values = [0 if v is None else v for v in values]
        arr[:] = values
        return arr

    def decode_with_nulls(self) -> "ColumnVector":
        if self._decoded is not None:
            return self._decoded
        values = compression.decode(self.codec, self.payload)
        validity = np.array([v is not None for v in values], dtype=bool)
        if self.data_type is DataType.TEXT:
            data = np.array([v if v is not None else "" for v in values], dtype=object)
        else:
            data = np.array(
                [v if v is not None else 0 for v in values],
                dtype=self.data_type.numpy_dtype,
            )
        data.flags.writeable = False
        validity.flags.writeable = False
        self._decoded = ColumnVector(data=data, validity=validity)
        return self._decoded


@dataclass
class ColumnVector:
    """A decoded column slice: dense data plus a validity (non-NULL) mask."""

    data: np.ndarray
    validity: np.ndarray

    def __len__(self) -> int:
        return len(self.data)


class ColumnStore:
    """Append-only columnar table storage."""

    def __init__(self, schema: TableSchema, chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 compress: bool = True):
        if chunk_rows <= 0:
            raise StorageError("chunk_rows must be positive")
        self.schema = schema
        self.chunk_rows = chunk_rows
        self.compress = compress
        self._sealed: List[Dict[str, ColumnChunk]] = []
        self._open: List[Dict[str, object]] = []
        self._row_count = 0

    # -- ingest ---------------------------------------------------------

    def append_rows(self, rows: Sequence[Dict[str, object]]) -> None:
        for row in rows:
            self._open.append(self.schema.coerce_row(row))
            self._row_count += 1
            if len(self._open) >= self.chunk_rows:
                self._seal()

    def flush(self) -> None:
        """Seal any buffered rows into a (possibly short) chunk."""
        if self._open:
            self._seal()

    def _seal(self) -> None:
        cols = rows_to_columns(self._open, self.schema.column_names)
        sealed: Dict[str, ColumnChunk] = {}
        for col in self.schema.columns:
            values = cols[col.name]
            if self.compress:
                codec, payload = compression.best_codec(values)
            else:
                codec, payload = "plain", list(values)
            sealed[col.name] = ColumnChunk(
                column=col.name,
                data_type=col.data_type,
                codec=codec,
                payload=payload,
                row_count=len(values),
            )
        self._sealed.append(sealed)
        self._open = []

    # -- scan -------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def chunk_count(self) -> int:
        return len(self._sealed) + (1 if self._open else 0)

    def scan_chunks(self, columns: Optional[Sequence[str]] = None
                    ) -> Iterator[Dict[str, ColumnVector]]:
        """Yield decoded chunk dicts restricted to ``columns``."""
        wanted = list(columns) if columns is not None else self.schema.column_names
        for name in wanted:
            self.schema.column(name)  # validates
        for sealed in self._sealed:
            yield {name: sealed[name].decode_with_nulls() for name in wanted}
        if self._open:
            cols = rows_to_columns(self._open, wanted)
            chunk = {}
            for name in wanted:
                col = self.schema.column(name)
                values = cols[name]
                validity = np.array([v is not None for v in values], dtype=bool)
                if col.data_type is DataType.TEXT:
                    data = np.array([v if v is not None else "" for v in values], dtype=object)
                else:
                    data = np.array(
                        [v if v is not None else 0 for v in values],
                        dtype=col.data_type.numpy_dtype,
                    )
                chunk[name] = ColumnVector(data=data, validity=validity)
            yield chunk

    def scan_rows(self) -> Iterator[Dict[str, object]]:
        """Row-wise view of the whole store (used by tests and row fallback)."""
        names = self.schema.column_names
        for chunk in self.scan_chunks(names):
            length = len(chunk[names[0]]) if names else 0
            for i in range(length):
                row = {}
                for name in names:
                    vec = chunk[name]
                    row[name] = vec.data[i] if vec.validity[i] else None
                yield {k: _unbox(v) for k, v in row.items()}

    def compressed_footprint(self) -> int:
        """Abstract size units of all sealed chunks (for the ablation bench)."""
        total = 0
        for sealed in self._sealed:
            for chunk in sealed.values():
                if chunk.codec == "plain":
                    total += chunk.row_count
                elif chunk.codec == "rle":
                    total += compression.RunLengthCodec.encoded_size(chunk.payload)
                elif chunk.codec == "dict":
                    dictionary, codes = chunk.payload  # type: ignore[misc]
                    total += compression.DictionaryCodec.encoded_size(dictionary, codes)
                elif chunk.codec == "delta":
                    base, deltas = chunk.payload  # type: ignore[misc]
                    total += compression.DeltaCodec.encoded_size(base, deltas)
        return total


def _unbox(value: object) -> object:
    """Convert numpy scalars back to plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    return value
