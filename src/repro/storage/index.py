"""Secondary indexes for the row store.

Two index kinds, mirroring what a PostgreSQL-derived engine offers:

* :class:`HashIndex` — equality lookups, O(1).
* :class:`OrderedIndex` — a sorted-array "B-tree" supporting range scans
  (bisect-based; adequate for a single-process simulation).

Indexes map a column value to the set of primary keys whose *newest* version
carries that value.  MVCC visibility is still decided by the heap on the keys
an index returns, so an index can safely over-approximate.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Set

from repro.common.errors import StorageError


class HashIndex:
    """Equality index: value -> set of primary keys."""

    def __init__(self, table: str, column: str):
        self.table = table
        self.column = column
        self._buckets: Dict[object, Set[object]] = {}

    def add(self, value: object, key: object) -> None:
        self._buckets.setdefault(value, set()).add(key)

    def remove(self, value: object, key: object) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: object) -> Set[object]:
        return set(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class OrderedIndex:
    """Sorted index: supports equality and range lookups over one column."""

    def __init__(self, table: str, column: str):
        self.table = table
        self.column = column
        self._values: List[object] = []      # sorted, with duplicates
        self._keys: List[object] = []        # parallel to _values

    def add(self, value: object, key: object) -> None:
        if value is None:
            return  # NULLs are not indexed
        pos = bisect.bisect_right(self._values, value)
        self._values.insert(pos, value)
        self._keys.insert(pos, key)

    def remove(self, value: object, key: object) -> None:
        if value is None:
            return
        lo = bisect.bisect_left(self._values, value)
        hi = bisect.bisect_right(self._values, value)
        for i in range(lo, hi):
            if self._keys[i] == key:
                del self._values[i]
                del self._keys[i]
                return

    def lookup(self, value: object) -> Set[object]:
        lo = bisect.bisect_left(self._values, value)
        hi = bisect.bisect_right(self._values, value)
        return set(self._keys[lo:hi])

    def range(self, low: Optional[object] = None, high: Optional[object] = None,
              include_low: bool = True, include_high: bool = True) -> Iterator[object]:
        """Yield primary keys whose indexed value falls in [low, high]."""
        if low is None:
            lo = 0
        elif include_low:
            lo = bisect.bisect_left(self._values, low)
        else:
            lo = bisect.bisect_right(self._values, low)
        if high is None:
            hi = len(self._values)
        elif include_high:
            hi = bisect.bisect_right(self._values, high)
        else:
            hi = bisect.bisect_left(self._values, high)
        for i in range(lo, hi):
            yield self._keys[i]

    def min_value(self) -> Optional[object]:
        return self._values[0] if self._values else None

    def max_value(self) -> Optional[object]:
        return self._values[-1] if self._values else None

    def __len__(self) -> int:
        return len(self._values)


def make_index(kind: str, table: str, column: str):
    """Index factory: ``kind`` is 'hash' or 'btree'."""
    if kind == "hash":
        return HashIndex(table, column)
    if kind == "btree":
        return OrderedIndex(table, column)
    raise StorageError(f"unknown index kind {kind!r}")
