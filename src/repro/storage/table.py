"""Table schemas and distribution metadata.

FI-MPPDB is shared-nothing: every table is hash-distributed over the data
nodes by a distribution column (or replicated to all nodes for small
dimension tables).  The schema also records storage orientation, because
the paper's engine supports "hybrid row-column storage".
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import CatalogError, StorageError
from repro.storage.types import DataType, coerce


class Distribution(enum.Enum):
    HASH = "hash"              # rows hashed on the distribution column
    REPLICATION = "replication"  # full copy on every data node


class Orientation(enum.Enum):
    ROW = "row"
    COLUMN = "column"


@dataclass(frozen=True)
class Column:
    name: str
    data_type: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"bad column name {self.name!r}")


@dataclass
class TableSchema:
    """Full logical description of one table."""

    name: str
    columns: List[Column]
    primary_key: str
    distribution: Distribution = Distribution.HASH
    distribution_column: Optional[str] = None
    orientation: Orientation = Orientation.ROW
    # When the primary key encodes the distribution value (e.g. TPC-C's
    # district key ``w_id * 100 + d_id`` distributed by warehouse), this
    # extracts the distribution value from a primary key so point operations
    # can be routed without fetching the row.
    key_router: Optional[Callable[[object], object]] = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {self.name}: duplicate column names")
        if self.primary_key not in names:
            raise CatalogError(f"table {self.name}: unknown primary key {self.primary_key!r}")
        if self.distribution is Distribution.HASH:
            if self.distribution_column is None:
                self.distribution_column = self.primary_key
            if self.distribution_column not in names:
                raise CatalogError(
                    f"table {self.name}: unknown distribution column "
                    f"{self.distribution_column!r}"
                )
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"table {self.name}: no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def coerce_row(self, row: Dict[str, object]) -> Dict[str, object]:
        """Validate and type-coerce a row dict against this schema."""
        out: Dict[str, object] = {}
        for col in self.columns:
            value = row.get(col.name)
            if value is None:
                if not col.nullable and col.name != self.primary_key:
                    raise StorageError(
                        f"table {self.name}: column {col.name} is NOT NULL"
                    )
                if col.name == self.primary_key:
                    raise StorageError(f"table {self.name}: NULL primary key")
                out[col.name] = None
            else:
                out[col.name] = coerce(value, col.data_type)
        extra = set(row) - set(self._by_name)
        if extra:
            raise StorageError(f"table {self.name}: unknown columns {sorted(extra)}")
        return out

    def shard_of(self, row: Dict[str, object], num_shards) -> int:
        """Which data node (0-based) stores this row.

        ``num_shards`` may be an int modulus or a ShardMap-style router
        (see :func:`shard_of_value`)."""
        if self.distribution is Distribution.REPLICATION:
            raise StorageError(f"table {self.name} is replicated; no single shard")
        return shard_of_value(row[self.distribution_column], num_shards)

    def key_of(self, row: Dict[str, object]) -> object:
        return row[self.primary_key]

    def dist_value_of_key(self, key: object) -> object:
        """The distribution value a point operation's key routes by."""
        if self.distribution is Distribution.REPLICATION:
            raise StorageError(f"table {self.name} is replicated; no single shard")
        if self.key_router is not None:
            return self.key_router(key)
        if self.distribution_column != self.primary_key:
            raise StorageError(
                f"table {self.name}: cannot route by key — distribution column "
                f"{self.distribution_column!r} differs from the primary key and "
                f"no key_router is defined"
            )
        return key

    def shard_of_key(self, key: object, num_shards) -> int:
        """Route a point operation by primary key alone."""
        return shard_of_value(self.dist_value_of_key(key), num_shards)


def shard_of_value(value: object, num_shards) -> int:
    """Stable hash-distribution function (consistent across runs).

    Integers distribute by modulo — the usual choice for surrogate-key
    distribution columns, and it keeps sequential warehouse ids perfectly
    balanced across data nodes.  Everything else hashes its repr.

    ``num_shards`` is either a plain modulus (the seed behaviour, still
    used by slot hashing and the placement tests) or a router object with
    an ``owner_of_value`` method — in practice the cluster's versioned
    :class:`repro.cluster.shardmap.ShardMap` — in which case placement is
    value -> slot -> owning DN.  Duck-typed rather than imported to keep
    the storage layer free of cluster dependencies.
    """
    route = getattr(num_shards, "owner_of_value", None)
    if route is not None:
        return route(value)
    if num_shards <= 0:
        raise StorageError("num_shards must be positive")
    if isinstance(value, bool):
        return int(value) % num_shards
    if isinstance(value, int):
        return value % num_shards
    data = repr(value).encode("utf-8")
    return zlib.crc32(data) % num_shards


def rows_to_columns(rows: Sequence[Dict[str, object]],
                    columns: Sequence[str]) -> Dict[str, list]:
    """Pivot a row list into column lists (for columnar ingest)."""
    out: Dict[str, list] = {name: [] for name in columns}
    for row in rows:
        for name in columns:
            out[name].append(row.get(name))
    return out
