"""Transaction status log ("clog").

Each data node keeps a :class:`StatusLog` mapping local XIDs to their state;
the GTM keeps one for GXIDs.  The PREPARED state is the 2PC window between
phase one and phase two — the window in which the paper's Anomaly 1 lives.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.common.errors import InvalidTransactionState
from repro.txn.xid import FIRST_XID, INVALID_XID


class TxnStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"      # 2PC phase one done, awaiting phase two
    COMMITTED = "committed"
    ABORTED = "aborted"


_LEGAL_TRANSITIONS = {
    TxnStatus.IN_PROGRESS: {TxnStatus.PREPARED, TxnStatus.COMMITTED, TxnStatus.ABORTED},
    TxnStatus.PREPARED: {TxnStatus.COMMITTED, TxnStatus.ABORTED},
    TxnStatus.COMMITTED: set(),
    TxnStatus.ABORTED: set(),
}


class StatusLog:
    """Maps XIDs to transaction status with legal-transition checking."""

    def __init__(self) -> None:
        self._status: Dict[int, TxnStatus] = {}

    def begin(self, xid: int) -> None:
        if xid < FIRST_XID:
            raise InvalidTransactionState(f"illegal xid {xid}")
        if xid in self._status:
            raise InvalidTransactionState(f"xid {xid} already began")
        self._status[xid] = TxnStatus.IN_PROGRESS

    def get(self, xid: int) -> TxnStatus:
        if xid == INVALID_XID:
            raise InvalidTransactionState("status of INVALID_XID requested")
        try:
            return self._status[xid]
        except KeyError:
            raise InvalidTransactionState(f"unknown xid {xid}") from None

    def knows(self, xid: int) -> bool:
        return xid in self._status

    def set(self, xid: int, status: TxnStatus) -> None:
        current = self.get(xid)
        if status not in _LEGAL_TRANSITIONS[current]:
            raise InvalidTransactionState(
                f"xid {xid}: illegal transition {current.value} -> {status.value}"
            )
        self._status[xid] = status

    def is_committed(self, xid: int) -> bool:
        return self.get(xid) is TxnStatus.COMMITTED

    def is_aborted(self, xid: int) -> bool:
        return self.get(xid) is TxnStatus.ABORTED

    def is_in_doubt(self, xid: int) -> bool:
        """True while the transaction is running or prepared."""
        return self.get(xid) in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED)

    def forget(self, xid: int) -> None:
        """Drop a resolved xid (log truncation); in-doubt xids are kept."""
        status = self._status.get(xid)
        if status in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED):
            raise InvalidTransactionState(f"cannot truncate in-doubt xid {xid}")
        self._status.pop(xid, None)

    def __len__(self) -> int:
        return len(self._status)
