"""Transaction identifiers.

The MPP simulation uses two XID spaces, exactly as the paper describes:

* **Local XIDs** — each data node (DN) assigns its own ascending 64-bit
  transaction ids to everything it executes, single-shard or multi-shard.
* **Global XIDs (GXIDs)** — the Global Transaction Manager assigns ascending
  ids to distributed (multi-shard) transactions only under GTM-lite, or to
  *all* transactions under the classical-GTM baseline.

A multi-shard transaction therefore has one GXID plus one local XID per data
node it touched; the per-DN ``xidMap`` (GXID -> local XID) used by
Algorithm 1 is maintained by :class:`repro.txn.manager.LocalTransactionManager`.
"""

from __future__ import annotations

INVALID_XID = 0
"""Sentinel for "no transaction" (e.g. an un-deleted tuple's xmax)."""

FIRST_XID = 3
"""First assignable XID; ids below it are reserved (mirrors PostgreSQL)."""


class XidAllocator:
    """Monotonically ascending XID source."""

    def __init__(self, start: int = FIRST_XID):
        if start < FIRST_XID:
            raise ValueError(f"start must be >= {FIRST_XID}")
        self._next = start

    @property
    def next_xid(self) -> int:
        """The id the *next* allocation will return (PostgreSQL's xmax)."""
        return self._next

    def allocate(self) -> int:
        xid = self._next
        self._next += 1
        return xid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XidAllocator(next={self._next})"
