"""Per-data-node local transaction management.

Each data node owns a :class:`LocalTransactionManager`: a local XID space,
a status log, the set of in-flight local transactions, the **local commit
order (LCO)** that Algorithm 1 traverses, and the **xidMap** from global
XIDs to local XIDs for multi-shard transactions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import InvalidTransactionState
from repro.txn.snapshot import Snapshot
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.writeset import WriteSet
from repro.txn.xid import INVALID_XID, XidAllocator


@dataclass
class LcoEntry:
    """One local commit, in commit order.

    ``gxid`` is the transaction's global XID if it was multi-shard (None for
    purely local transactions); ``write_set`` is what it wrote on this node.
    """

    local_xid: int
    gxid: Optional[int]
    write_set: WriteSet
    seqno: int


class LocalTransactionManager:
    """Local XIDs, snapshots, commit order and GXID mapping for one DN."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._alloc = XidAllocator()
        self.clog = StatusLog()
        self._active: Dict[int, WriteSet] = {}
        self._gxid_of: Dict[int, int] = {}       # local xid -> gxid
        self.xid_map: Dict[int, int] = {}         # gxid -> local xid
        self.lco: Deque[LcoEntry] = deque()
        self._commit_seq = 0

    # -- lifecycle ------------------------------------------------------

    def begin(self, gxid: Optional[int] = None) -> int:
        """Start a local transaction; register the gxid mapping if global."""
        xid = self._alloc.allocate()
        self.clog.begin(xid)
        self._active[xid] = WriteSet()
        if gxid is not None:
            if gxid in self.xid_map:
                raise InvalidTransactionState(
                    f"gxid {gxid} already mapped on node {self.node_id}"
                )
            self.xid_map[gxid] = xid
            self._gxid_of[xid] = gxid
        return xid

    def record_write(self, xid: int, table: str, key: object) -> None:
        try:
            self._active[xid].add(table, key)
        except KeyError:
            raise InvalidTransactionState(f"xid {xid} not active on {self.node_id}") from None

    def write_set(self, xid: int) -> WriteSet:
        try:
            return self._active[xid]
        except KeyError:
            raise InvalidTransactionState(f"xid {xid} not active on {self.node_id}") from None

    def prepare(self, xid: int) -> None:
        """2PC phase one: the transaction can no longer unilaterally abort."""
        self.clog.set(xid, TxnStatus.PREPARED)

    def commit(self, xid: int) -> None:
        """Local commit: flip the clog bit and append to the LCO."""
        self.clog.set(xid, TxnStatus.COMMITTED)
        write_set = self._active.pop(xid)
        gxid = self._gxid_of.get(xid)
        self.lco.append(LcoEntry(xid, gxid, write_set, self._commit_seq))
        self._commit_seq += 1

    def abort(self, xid: int) -> None:
        self.clog.set(xid, TxnStatus.ABORTED)
        self._active.pop(xid, None)
        gxid = self._gxid_of.pop(xid, None)
        if gxid is not None:
            self.xid_map.pop(gxid, None)

    # -- snapshots --------------------------------------------------------

    def local_snapshot(self) -> Snapshot:
        """Capture (xmin, xmax, active).  PREPARED counts as active."""
        xmax = self._alloc.next_xid
        running = frozenset(
            xid for xid in self._active
            if self.clog.get(xid) in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED)
        )
        xmin = min(running) if running else xmax
        return Snapshot(xmin=xmin, xmax=xmax, active=running)

    def prepared_xids(self) -> List[int]:
        return sorted(
            xid for xid in self._active if self.clog.get(xid) is TxnStatus.PREPARED
        )

    def in_progress_xids(self) -> List[int]:
        """Active local transactions that never reached prepare.

        In-doubt resolution skips these (nothing voted, presumed abort is
        trivial), but maintenance work that must make progress against
        their uncommitted versions — e.g. a rebalance truncate after a
        coordinator crash mid-statement — needs to find and expel them.
        """
        return sorted(
            xid for xid in self._active
            if self.clog.get(xid) is TxnStatus.IN_PROGRESS
        )

    def gxid_for(self, local_xid: int) -> Optional[int]:
        return self._gxid_of.get(local_xid)

    # -- maintenance --------------------------------------------------------

    def truncate_lco(self, keep_last: int) -> int:
        """Drop the oldest LCO entries, keeping ``keep_last`` newest.

        Safe once no reader can hold a global snapshot old enough to need the
        dropped entries.  Returns the number of entries removed.
        """
        if keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        excess = max(0, len(self.lco) - keep_last)
        for _ in range(excess):
            self.lco.popleft()
        return excess

    def prune_lco(self, horizon_gxid: int) -> int:
        """Garbage-collect the LCO front up to a global snapshot horizon.

        A front entry may go when no live or future merge can downgrade it:
        pure-local entries at the front have nothing earlier to depend on,
        and multi-shard entries whose GXID is below ``horizon_gxid`` are
        resolved in every snapshot any live reader could hold.  Pruning
        stops at the first entry that must stay, preserving the commit-order
        prefix property the taint walk relies on.
        """
        removed = 0
        while self.lco:
            entry = self.lco[0]
            if entry.gxid is None or entry.gxid < horizon_gxid:
                self.lco.popleft()
                removed += 1
            else:
                break
        return removed

    @property
    def active_count(self) -> int:
        return len(self._active)
