"""MVCC snapshots.

A snapshot captures "which transactions were in flight when I started
looking" in the PostgreSQL style the paper's systems inherit from
Postgres-XC:

* ``xmin`` — the lowest XID that was still active (everything below is
  resolved: committed or aborted),
* ``xmax`` — the next XID to be assigned (everything at or above started
  *after* the snapshot and is invisible),
* ``active`` — XIDs in ``[xmin, xmax)`` that were in flight.

:class:`MergedSnapshot` extends this with the two adjustments of the paper's
Algorithm 1: *forced-active* XIDs (the DOWNGRADE set — locally committed but
globally invisible) and *forced-committed* XIDs (the UPGRADE set — locally
prepared but globally committed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.txn.status import StatusLog
from repro.txn.xid import INVALID_XID


@dataclass(frozen=True)
class Snapshot:
    """An immutable MVCC snapshot over one XID space."""

    xmin: int
    xmax: int
    active: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.xmin > self.xmax:
            raise ValueError(f"snapshot xmin {self.xmin} > xmax {self.xmax}")
        for xid in self.active:
            if not (self.xmin <= xid < self.xmax):
                raise ValueError(f"active xid {xid} outside [{self.xmin}, {self.xmax})")

    def sees_as_running(self, xid: int) -> bool:
        """True if the snapshot considers ``xid`` in flight or in the future."""
        if xid >= self.xmax:
            return True
        return xid in self.active

    def xid_visible(self, xid: int, clog: StatusLog, own_xid: int = INVALID_XID) -> bool:
        """Did ``xid``'s work happen, as far as this snapshot is concerned?

        Visible iff the transaction committed *and* was already resolved when
        the snapshot was taken.  A transaction always sees its own writes.
        """
        if xid == INVALID_XID:
            return False
        if xid == own_xid:
            return True
        if self.sees_as_running(xid):
            return False
        return clog.knows(xid) and clog.is_committed(xid)


@dataclass(frozen=True)
class MergedSnapshot(Snapshot):
    """The GTM-lite merged snapshot (output of Algorithm 1).

    ``forced_active`` re-hides locally committed transactions whose global
    counterpart had not committed when the global snapshot was taken
    (DOWNGRADE, resolving Anomaly 2).  ``forced_committed`` reveals locally
    prepared transactions whose global counterpart already committed
    (UPGRADE, resolving Anomaly 1) — safe because after 2PC prepare plus a
    GTM commit the local commit is inevitable.
    """

    forced_active: FrozenSet[int] = frozenset()
    forced_committed: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.xmin > self.xmax:
            raise ValueError(f"snapshot xmin {self.xmin} > xmax {self.xmax}")
        overlap = self.forced_active & self.forced_committed
        if overlap:
            raise ValueError(f"xids both upgraded and downgraded: {sorted(overlap)}")

    def sees_as_running(self, xid: int) -> bool:
        if xid in self.forced_committed:
            return False
        if xid in self.forced_active:
            return True
        return super().sees_as_running(xid)

    def xid_visible(self, xid: int, clog: StatusLog, own_xid: int = INVALID_XID) -> bool:
        if xid == own_xid:
            return True
        if xid in self.forced_committed:
            # UPGRADE: the reader has (conceptually) waited for the local
            # commit confirmation, so the write is visible even though the
            # local clog may still say PREPARED.
            return True
        if xid in self.forced_active:
            return False
        return super().xid_visible(xid, clog, own_xid)


def snapshot_union_active(a: Snapshot, b: Snapshot) -> FrozenSet[int]:
    """Union of two snapshots' active sets (a MergeSnapshot building block)."""
    return a.active | b.active


@dataclass
class SnapshotStats:
    """Counters a transaction manager keeps about snapshot production."""

    taken: int = 0
    merged: int = 0
    upgrades: int = 0
    downgrades: int = 0

    def as_dict(self) -> dict:
        return {
            "taken": self.taken,
            "merged": self.merged,
            "upgrades": self.upgrades,
            "downgrades": self.downgrades,
        }
