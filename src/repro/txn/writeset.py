"""Write-set tracking.

The DOWNGRADE step of Algorithm 1 must honor *data dependencies*: when T3
overwrote data last written by a globally invisible T1, a merged snapshot
that hides T1 must also hide T3 (the paper's Anomaly 2 table).  To decide
"depends on", every transaction records the logical items it wrote as
``(table, key)`` pairs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple

WriteItem = Tuple[str, object]


class WriteSet:
    """The set of (table, primary-key) items one transaction wrote."""

    def __init__(self, items: Iterable[WriteItem] = ()):
        self._items: Set[WriteItem] = set(items)

    def add(self, table: str, key: object) -> None:
        self._items.add((table, key))

    def merge(self, other: "WriteSet") -> None:
        self._items |= other._items

    def intersects(self, other: "WriteSet") -> bool:
        if len(self._items) > len(other._items):
            return other.intersects(self)
        return any(item in other._items for item in self._items)

    def frozen(self) -> FrozenSet[WriteItem]:
        return frozenset(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: WriteItem) -> bool:
        return item in self._items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteSet({sorted(map(repr, self._items))})"
