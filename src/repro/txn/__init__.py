"""Transaction substrate: XIDs, snapshots, status logs, local managers."""

from repro.txn.manager import LcoEntry, LocalTransactionManager
from repro.txn.snapshot import MergedSnapshot, Snapshot
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.writeset import WriteSet
from repro.txn.xid import FIRST_XID, INVALID_XID, XidAllocator

__all__ = [
    "XidAllocator", "INVALID_XID", "FIRST_XID",
    "Snapshot", "MergedSnapshot", "StatusLog", "TxnStatus",
    "LocalTransactionManager", "LcoEntry", "WriteSet",
]
