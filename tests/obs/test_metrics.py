"""Tests for the metrics registry: counters, gauges, histogram bucketing."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("txn.commit")
        c.inc()
        c.inc(4)
        assert reg.value("txn.commit") == 5.0
        # get-or-create returns the same instance
        assert reg.counter("txn.commit") is c

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("gtm.active")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8.0

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ConfigError):
            reg.gauge("m")
        with pytest.raises(ConfigError):
            reg.histogram("m")


class TestHistogramBucketing:
    def test_observations_land_in_first_fitting_bucket(self):
        h = Histogram("lat", buckets=[10.0, 100.0, 1000.0])
        for v in (5.0, 10.0, 11.0, 99.0, 500.0):
            h.observe(v)
        assert h.counts == [2, 2, 1]        # 10.0 is inclusive upper bound
        assert h.overflow == 0
        h.observe(5000.0)
        assert h.overflow == 1

    def test_summary_stats(self):
        h = Histogram("lat", buckets=[10.0, 100.0])
        h.observe(4.0)
        h.observe(6.0)
        assert h.count == 2
        assert h.sum == 10.0
        assert h.avg == 5.0
        assert h.minimum == 4.0
        assert h.maximum == 6.0

    def test_percentile_is_bucket_bound(self):
        h = Histogram("lat", buckets=[10.0, 100.0, 1000.0])
        for _ in range(99):
            h.observe(5.0)
        h.observe(500.0)
        assert h.percentile(0.50) == 10.0
        assert h.percentile(0.999) == 1000.0

    def test_percentile_overflow_returns_max(self):
        h = Histogram("lat", buckets=[10.0])
        h.observe(123.0)
        assert h.percentile(0.99) == 123.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("lat", buckets=[1.0]).percentile(0.5) == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("lat", buckets=[10.0, 5.0])


class TestRegistrySnapshot:
    def test_snapshot_flattens_and_timestamps_off_simclock(self):
        clock = SimClock()
        reg = MetricsRegistry(clock)
        reg.counter("txn.commit").inc(3)
        reg.gauge("gtm.active").set(2)
        reg.histogram("query.latency_us", buckets=[100.0]).observe(50.0)
        clock.advance(42.0)
        t_us, flat = reg.snapshot()
        assert t_us == 42.0
        assert flat["txn.commit"] == 3.0
        assert flat["gtm.active"] == 2.0
        assert flat["query.latency_us.count"] == 1.0
        assert flat["query.latency_us.avg"] == 50.0
        assert "query.latency_us.p95" in flat

    def test_reset_clears_values_not_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.reset()
        assert reg.value("a") == 0.0
        assert "a" in reg.names()
