"""Tests for the tracer: span nesting, parent/child links, attributes."""

from repro.common.clock import SimClock
from repro.obs.tracing import Tracer


class TestSpanNesting:
    def test_context_manager_links_parent_child(self):
        tracer = Tracer(SimClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.children_of(outer)] == ["inner"]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(SimClock())
        root = tracer.start_span("txn.global")
        with tracer.span("unrelated"):
            child = tracer.start_span("snapshot.merge", parent=root)
        assert child.parent_id == root.span_id

    def test_durations_come_from_simclock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("work")
        clock.advance(150.0)
        tracer.end_span(span)
        assert span.duration_us == 150.0

    def test_explicit_end_time(self):
        tracer = Tracer(SimClock())
        span = tracer.start_span("op.Scan")
        tracer.end_span(span, end_us=span.start_us + 7.5)
        assert span.duration_us == 7.5

    def test_end_span_idempotent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("x")
        tracer.end_span(span)
        clock.advance(100.0)
        tracer.end_span(span)
        assert span.duration_us == 0.0
        assert len(tracer.finished_spans("x")) == 1

    def test_exception_marks_error_attribute(self):
        tracer = Tracer(SimClock())
        try:
            with tracer.span("failing") as span:
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_walk_traverses_subtree(self):
        tracer = Tracer(SimClock())
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [s.name for s in tracer.walk(a)]
        assert names == ["a", "b", "c", "d"]

    def test_bounded_buffer(self):
        tracer = Tracer(SimClock(), max_spans=3)
        for i in range(5):
            tracer.end_span(tracer.start_span(f"s{i}"))
        assert [s.name for s in tracer.finished_spans()] == ["s2", "s3", "s4"]
        assert tracer.spans_started == 5
