"""Tests for the tracer: span nesting, parent/child links, attributes."""

from repro.common.clock import SimClock
from repro.obs.tracing import Tracer


class TestSpanNesting:
    def test_context_manager_links_parent_child(self):
        tracer = Tracer(SimClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.children_of(outer)] == ["inner"]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(SimClock())
        root = tracer.start_span("txn.global")
        with tracer.span("unrelated"):
            child = tracer.start_span("snapshot.merge", parent=root)
        assert child.parent_id == root.span_id

    def test_durations_come_from_simclock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("work")
        clock.advance(150.0)
        tracer.end_span(span)
        assert span.duration_us == 150.0

    def test_explicit_end_time(self):
        tracer = Tracer(SimClock())
        span = tracer.start_span("op.Scan")
        tracer.end_span(span, end_us=span.start_us + 7.5)
        assert span.duration_us == 7.5

    def test_end_span_idempotent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("x")
        tracer.end_span(span)
        clock.advance(100.0)
        tracer.end_span(span)
        assert span.duration_us == 0.0
        assert len(tracer.finished_spans("x")) == 1

    def test_exception_marks_error_attribute(self):
        tracer = Tracer(SimClock())
        try:
            with tracer.span("failing") as span:
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_walk_traverses_subtree(self):
        tracer = Tracer(SimClock())
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [s.name for s in tracer.walk(a)]
        assert names == ["a", "b", "c", "d"]

    def test_bounded_buffer(self):
        tracer = Tracer(SimClock(), max_spans=3)
        for i in range(5):
            tracer.end_span(tracer.start_span(f"s{i}"))
        assert [s.name for s in tracer.finished_spans()] == ["s2", "s3", "s4"]
        assert tracer.spans_started == 5


class TestOverflowAndInterleaving:
    def test_overflow_evicts_parent_but_keeps_open_children_consistent(self):
        """A root evicted by max_spans overflow must not corrupt a child that
        is still open: the child keeps its parent_id and finishes normally."""
        clock = SimClock()
        tracer = Tracer(clock, max_spans=2)
        root = tracer.start_span("txn.global")
        child = tracer.start_span("2pc.prepare", parent=root)
        tracer.end_span(root)
        # flood the buffer so the root is evicted while the child is open
        for i in range(3):
            tracer.end_span(tracer.start_span(f"filler{i}"))
        assert root not in tracer.finished_spans()
        clock.advance(10.0)
        tracer.end_span(child)
        assert child in tracer.finished_spans()
        assert child.parent_id == root.span_id
        assert child.duration_us == 10.0
        # children_of only walks the retained buffer, so the evicted root
        # simply has no retained children — never a crash or a wrong link
        assert tracer.children_of(root) == [child]
        assert tracer.spans_started == 5

    def test_interleaved_transactions_with_explicit_parents(self):
        """Two transactions interleave their 2PC phases (as driver scheduling
        does); explicit ``parent=`` keeps each phase under its own txn even
        though the stack would say otherwise."""
        clock = SimClock()
        tracer = Tracer(clock)
        t1 = tracer.start_span("txn.global", gxid=1)
        clock.advance(5.0)
        t2 = tracer.start_span("txn.global", gxid=2)
        # t2's prepare starts before t1's, and both finish out of order
        p2 = tracer.start_span("2pc.prepare", parent=t2)
        p1 = tracer.start_span("2pc.prepare", parent=t1)
        clock.advance(60.0)
        tracer.end_span(p1)
        tracer.end_span(p2)
        tracer.end_span(t2)
        tracer.end_span(t1)
        assert p1.parent_id == t1.span_id
        assert p2.parent_id == t2.span_id
        assert tracer.children_of(t1) == [p1]
        assert tracer.children_of(t2) == [p2]
        # the finished buffer is in end order, not start order
        assert [s.span_id for s in tracer.finished_spans()] == [
            p1.span_id, p2.span_id, t2.span_id, t1.span_id]
        # walk() reconstructs each transaction's subtree independently
        assert [s.span_id for s in tracer.walk(t1)] == [t1.span_id, p1.span_id]
        assert [s.span_id for s in tracer.walk(t2)] == [t2.span_id, p2.span_id]

    def test_reset_restarts_ids_and_counters(self):
        tracer = Tracer(SimClock())
        first = tracer.end_span(tracer.start_span("a"))
        tracer.reset()
        assert tracer.spans_started == 0
        assert tracer.finished_spans() == []
        # ids restart so a reset cluster retraces identically
        assert tracer.start_span("a").span_id == first.span_id
