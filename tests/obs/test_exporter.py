"""Tests for the registry → InformationStore exporter."""

import pytest

from repro.autonomous.infostore import InformationStore
from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.obs.export import InfoStoreExporter
from repro.obs.metrics import MetricsRegistry


class TestInfoStoreExporter:
    def test_round_trip(self):
        clock = SimClock()
        registry = MetricsRegistry(clock)
        registry.counter("txn.commit").inc(7)
        registry.gauge("gtm.active").set(2)
        registry.histogram("query.latency_us", buckets=[100.0]).observe(40.0)
        store = InformationStore()
        exporter = InfoStoreExporter(registry, store)

        clock.advance(1_000.0)
        n = exporter.flush()
        assert n == len(store.metrics())
        assert store.latest("txn.commit") == 7.0
        assert store.latest("gtm.active") == 2.0
        assert store.latest("query.latency_us.avg") == 40.0
        # samples carry the sim-clock timestamp
        assert store.window("txn.commit", 1_000.0, 1_000.0) == [(1_000.0, 7.0)]

    def test_maybe_flush_respects_interval(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        store = InformationStore()
        exporter = InfoStoreExporter(registry, store, interval_us=1_000.0)
        assert exporter.maybe_flush(0.0) > 0        # first flush always fires
        assert exporter.maybe_flush(500.0) == 0     # inside the interval
        assert exporter.maybe_flush(1_000.0) > 0    # interval elapsed
        assert exporter.flushes == 2

    def test_jittered_flush_times_do_not_drift(self):
        """Regression: anchoring the cadence at the raw flush time let
        per-flush jitter accumulate until an interval was silently skipped.
        The anchor must snap to the interval grid."""
        registry = MetricsRegistry()
        registry.counter("c").inc()
        store = InformationStore()
        exporter = InfoStoreExporter(registry, store, interval_us=1_000.0)
        # a driver whose transactions land the flush calls a little late
        # every time: 0, 1300, 2400, 3100 span four distinct grid slots
        fired = [t for t in (0.0, 1_300.0, 2_400.0, 3_100.0)
                 if exporter.maybe_flush(t) > 0]
        # with a drifting anchor, 3100 - 2400 < 1000 would skip the last one
        assert fired == [0.0, 1_300.0, 2_400.0, 3_100.0]
        assert exporter.flushes == 4
        # samples are still stamped with the true flush time, not the grid
        assert store.window("c", 3_100.0, 3_100.0) == [(3_100.0, 1.0)]

    def test_explicit_now_overrides_clock(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        store = InformationStore()
        InfoStoreExporter(registry, store).flush(now_us=123.0)
        assert store.window("c", 123.0, 123.0) == [(123.0, 3.0)]

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            InfoStoreExporter(MetricsRegistry(), InformationStore(),
                              interval_us=0.0)
