"""Integration: a TPC-C-lite run produces live telemetry end to end."""

from repro.autonomous.adbms import AutonomousManager
from repro.autonomous.infostore import InformationStore
from repro.cluster.mpp import MppCluster
from repro.obs.export import InfoStoreExporter
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


def _run(num_dns=2, warehouses=4):
    cluster = MppCluster(num_dns=num_dns)
    load_tpcc(cluster, num_warehouses=warehouses)
    workload = TpccLiteWorkload(num_warehouses=warehouses,
                                multi_shard_fraction=0.2, seed=11)
    store = InformationStore()
    exporter = InfoStoreExporter(cluster.obs.metrics, store,
                                 interval_us=100_000.0)
    result = run_oltp(cluster, workload, clients_per_dn=2, txns_per_client=5,
                      exporter=exporter)
    return cluster, store, result


class TestTpccTelemetry:
    def test_run_exports_engine_metrics_into_infostore(self):
        cluster, store, result = _run()
        assert result.committed > 0
        exported = set(store.metrics())
        # the canonical engine metrics from the acceptance criteria
        for metric in ("txn.commit", "txn.abort", "gtm.snapshot_us.count",
                       "exec.rows", "query.latency_us.count"):
            assert metric in exported, metric
        assert len(exported) >= 5
        # txn.commit also counts load_tpcc's loading transactions, so it must
        # match the cluster-wide stats facade, not just the driver's tally.
        assert store.latest("txn.commit") == cluster.stats.commits
        assert cluster.stats.commits >= result.committed
        assert store.latest("query.latency_us.count") == result.committed
        # latency summaries are non-degenerate: simulated time moved
        assert store.latest("query.latency_us.avg") > 0.0

    def test_run_produces_nonempty_traces(self):
        cluster, _, result = _run()
        spans = cluster.obs.tracer.finished_spans()
        assert spans, "expected a non-empty trace buffer"
        names = {s.name for s in spans}
        assert "txn.local" in names or "txn.global" in names
        assert "gtm.snapshot" in names
        assert "2pc.prepare" in names
        # spans carry simulated-time durations, never wall clock
        assert all(s.end_us is not None and s.end_us >= s.start_us
                   for s in spans)

    def test_autonomous_loop_consumes_live_telemetry(self):
        cluster, _, result = _run()
        manager = AutonomousManager(cluster)
        manager.collect(now_us=1_000_000.0)
        # the exporter flushed real engine counters into Fig. 12's store
        assert manager.info.latest("txn.commit") == cluster.stats.commits
        assert cluster.stats.commits >= result.committed
        assert manager.info.latest("gtm.snapshot") is not None
        report = manager.tick(now_us=1_000_000.0)
        assert report.concurrency_limit > 0

    def test_identical_runs_identical_telemetry(self):
        _, store_a, result_a = _run()
        _, store_b, result_b = _run()
        assert result_a.as_dict() == result_b.as_dict()
        assert store_a.metrics() == store_b.metrics()
        for metric in store_a.metrics():
            assert store_a.values(metric) == store_b.values(metric), metric
