"""Integration: a TPC-C-lite run produces live telemetry end to end."""

from repro.autonomous.adbms import AutonomousManager
from repro.autonomous.infostore import InformationStore
from repro.cluster.mpp import MppCluster
from repro.cluster.txn import TxnMode
from repro.obs.export import InfoStoreExporter
from repro.obs.waits import WAIT_GTM_GLOBAL, WAIT_GTM_LOCAL
from repro.sql.engine import SqlEngine
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


def _run(num_dns=2, warehouses=4, mode=TxnMode.GTM_LITE):
    cluster = MppCluster(num_dns=num_dns, mode=mode)
    load_tpcc(cluster, num_warehouses=warehouses)
    workload = TpccLiteWorkload(num_warehouses=warehouses,
                                multi_shard_fraction=0.2, seed=11)
    store = InformationStore()
    exporter = InfoStoreExporter(cluster.obs.metrics, store,
                                 interval_us=100_000.0)
    result = run_oltp(cluster, workload, clients_per_dn=2, txns_per_client=5,
                      exporter=exporter)
    return cluster, store, result


class TestTpccTelemetry:
    def test_run_exports_engine_metrics_into_infostore(self):
        cluster, store, result = _run()
        assert result.committed > 0
        exported = set(store.metrics())
        # the canonical engine metrics from the acceptance criteria
        for metric in ("txn.commit", "txn.abort", "gtm.snapshot_us.count",
                       "exec.rows", "query.latency_us.count"):
            assert metric in exported, metric
        assert len(exported) >= 5
        # txn.commit also counts load_tpcc's loading transactions, so it must
        # match the cluster-wide stats facade, not just the driver's tally.
        assert store.latest("txn.commit") == cluster.stats.commits
        assert cluster.stats.commits >= result.committed
        assert store.latest("query.latency_us.count") == result.committed
        # latency summaries are non-degenerate: simulated time moved
        assert store.latest("query.latency_us.avg") > 0.0

    def test_run_produces_nonempty_traces(self):
        cluster, _, result = _run()
        spans = cluster.obs.tracer.finished_spans()
        assert spans, "expected a non-empty trace buffer"
        names = {s.name for s in spans}
        assert "txn.local" in names or "txn.global" in names
        assert "gtm.snapshot" in names
        assert "2pc.prepare" in names
        # spans carry simulated-time durations, never wall clock
        assert all(s.end_us is not None and s.end_us >= s.start_us
                   for s in spans)

    def test_autonomous_loop_consumes_live_telemetry(self):
        cluster, _, result = _run()
        manager = AutonomousManager(cluster)
        manager.collect(now_us=1_000_000.0)
        # the exporter flushed real engine counters into Fig. 12's store
        assert manager.info.latest("txn.commit") == cluster.stats.commits
        assert cluster.stats.commits >= result.committed
        assert manager.info.latest("gtm.snapshot") is not None
        report = manager.tick(now_us=1_000_000.0)
        assert report.concurrency_limit > 0

    def test_identical_runs_identical_telemetry(self):
        _, store_a, result_a = _run()
        _, store_b, result_b = _run()
        assert result_a.as_dict() == result_b.as_dict()
        assert store_a.metrics() == store_b.metrics()
        for metric in store_a.metrics():
            assert store_a.values(metric) == store_b.values(metric), metric


class TestWaitEventAccounting:
    def test_gtm_lite_shifts_wait_time_off_the_gtm(self):
        """The paper's core claim, visible in the wait-event profile: under
        GTM-lite single-shard transactions take local snapshots, so global
        GTM snapshot waiting shrinks and local-snapshot waiting appears."""
        lite_cluster, _, lite_result = _run(mode=TxnMode.GTM_LITE)
        classical_cluster, _, classical_result = _run(mode=TxnMode.CLASSICAL)
        # same committed work on both sides — only the protocol differs
        assert lite_result.committed == classical_result.committed
        lite = lite_cluster.obs.waits
        classical = classical_cluster.obs.waits
        assert classical.total_us(WAIT_GTM_GLOBAL) > lite.total_us(
            WAIT_GTM_GLOBAL)
        assert lite.total_us(WAIT_GTM_LOCAL) > 0.0
        # classical never takes a purely-local snapshot path on begin: its
        # gtm.local waits come only from per-statement DN attach costs, so
        # the lion's share of its snapshot waiting is global
        assert classical.total_us(WAIT_GTM_GLOBAL) > classical.stats(
            WAIT_GTM_LOCAL).max_us
        # every terminal's waiting was attributed to some session
        assert lite.session_stats(1), "session 1 recorded no waits"

    def test_sys_views_queryable_after_tpcc_run(self):
        cluster, _, result = _run()
        engine = SqlEngine(cluster, learning_enabled=False)
        waits = engine.query(
            "SELECT event, total_us FROM sys.wait_events "
            "WHERE event LIKE 'gtm.%' ORDER BY total_us DESC")
        assert waits and waits[0]["total_us"] > 0.0
        top = engine.query(
            "SELECT count(*) AS n FROM sys.spans WHERE name = '2pc.prepare'")
        assert top[0]["n"] > 0
        commits = engine.query(
            "SELECT value FROM sys.metrics WHERE name = 'txn.commit'")
        assert commits[0]["value"] >= result.committed

    def test_identical_runs_identical_sys_view_contents(self):
        def sys_snapshot():
            cluster, _, _ = _run()
            engine = SqlEngine(cluster, learning_enabled=False)
            return {
                view: engine.execute(f"SELECT * FROM {view}").rows
                for view in ("sys.wait_events", "sys.metrics",
                             "sys.slow_queries", "sys.alerts")
            }
        assert sys_snapshot() == sys_snapshot()
