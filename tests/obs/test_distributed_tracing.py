"""Distributed query tracing: CN→DN span stitching end to end.

The acceptance criterion for ISSUE 7's tentpole: a fragmented TPC-C-lite
reporting query yields ONE stitched trace tree — coordinator query span at
the root, transaction/2PC edges and per-DN fragment execution as child
spans with per-node attribution — queryable through ``sys.trace_spans``,
and the per-DN fragment spans sum consistently with
``QueryProfile.elapsed_time_us`` (CN serial time + max across DNs per
fragment group).
"""

import pytest

from repro.cluster.mpp import MppCluster
from repro.obs.profiler import QueryProfile
from repro.sql.engine import SqlEngine
from repro.workloads.tpcc_lite import load_tpcc

REPORTING_QUERY = "select w_id, sum(d_ytd) from district group by w_id"


def _reporting_cluster(num_dns=4):
    cluster = MppCluster(num_dns=num_dns)
    load_tpcc(cluster, num_warehouses=num_dns)
    return cluster, SqlEngine(cluster)


def _last_query_trace(cluster):
    query_spans = cluster.obs.tracer.finished_spans("query")
    assert query_spans
    root = query_spans[-1]
    return root, cluster.obs.tracer.spans_for_trace(root.trace_id)


class TestStitchedTrace:
    def test_one_trace_tree_per_query(self):
        cluster, engine = _reporting_cluster()
        engine.execute(REPORTING_QUERY)
        root, spans = _last_query_trace(cluster)
        assert root.parent_id is None
        # every span of the query — txn, 2PC, operators — shares the trace
        names = {s.name for s in spans}
        assert "txn.global" in names
        assert "2pc.prepare" in names
        assert any(n.startswith("op.") for n in names)
        # and nothing in the trace dangles: each non-root span's parent is
        # a span of the same trace
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span is root:
                continue
            assert span.parent_id in by_id

    def test_fragment_spans_attributed_to_every_dn(self):
        cluster, engine = _reporting_cluster(num_dns=4)
        engine.execute(REPORTING_QUERY)
        _, spans = _last_query_trace(cluster)
        fragment_nodes = {s.node for s in spans
                          if s.name.startswith("op.") and s.node
                          and s.node.startswith("dn")}
        assert fragment_nodes == {"dn0", "dn1", "dn2", "dn3"}
        # coordinator-side spans carry the CN's identity
        cn_ops = [s for s in spans if s.name.startswith("op.")
                  and s.node and s.node.startswith("cn")]
        assert cn_ops
        for name in ("txn.global", "2pc.prepare"):
            for s in spans:
                if s.name == name:
                    assert s.node and s.node.startswith("cn")

    def test_fragment_crossing_preserves_parent_child_edge(self):
        cluster, engine = _reporting_cluster()
        engine.execute(REPORTING_QUERY)
        _, spans = _last_query_trace(cluster)
        by_id = {s.span_id: s for s in spans}
        crossings = 0
        for span in spans:
            if not (span.name.startswith("op.") and span.node
                    and span.node.startswith("dn")):
                continue
            parent = by_id[span.parent_id]
            if parent.node != span.node:
                # CN→DN boundary: parent ran on the coordinator
                assert parent.node.startswith("cn")
                crossings += 1
        assert crossings == 4      # one shipped fragment root per DN

    def test_elapsed_time_identity_cn_serial_plus_max_per_fragment(self):
        """The acceptance-criterion consistency check: per-DN fragment
        spans sum with the coordinator time to the profile's elapsed time
        as CN serial + max-across-DN per fragment group."""
        cluster, engine = _reporting_cluster()
        result = engine.execute(REPORTING_QUERY)
        profile = result.profile
        rows = profile.distributed_rows()
        assert rows[0][0] == "coordinator"
        cn_us = rows[0][5]
        groups = {}
        for fragment, node, _ops, _rows, _net, elapsed_us, _crit in rows[1:]:
            assert node.startswith("dn")
            groups.setdefault(fragment, []).append(elapsed_us)
        reconstructed = cn_us + sum(max(times) for times in groups.values())
        assert reconstructed == pytest.approx(profile.elapsed_time_us,
                                              rel=1e-9)

    def test_critical_flag_marks_slowest_instance_per_group(self):
        cluster, engine = _reporting_cluster()
        result = engine.execute(REPORTING_QUERY)
        rows = result.profile.distributed_rows()
        assert rows[0][6] is True             # coordinator always critical
        by_group = {}
        for row in rows[1:]:
            by_group.setdefault(row[0], []).append(row)
        for group_rows in by_group.values():
            slowest = max(r[5] for r in group_rows)
            for r in group_rows:
                assert r[6] == (r[5] >= slowest)


class TestExplainAnalyzeDistributed:
    def test_returns_per_fragment_rows(self):
        _, engine = _reporting_cluster()
        result = engine.execute(
            "explain analyze distributed " + REPORTING_QUERY)
        assert result.columns == list(QueryProfile.DIST_COLUMNS)
        fragments = [row[0] for row in result.rows]
        assert fragments[0] == "coordinator"
        assert len([f for f in fragments if f != "coordinator"]) == 4
        for _frag, node, ops, rows, net_rows, elapsed, critical in result.rows:
            assert ops >= 1 and rows >= 0 and net_rows >= 0
            assert elapsed >= 0.0
            assert isinstance(critical, bool)

    def test_pretty_rendering_marks_critical_path(self):
        _, engine = _reporting_cluster()
        result = engine.execute(
            "explain analyze distributed " + REPORTING_QUERY)
        assert "<-- critical" in result.plan_text
        assert "Critical path:" in result.plan_text

    def test_plain_explain_analyze_unchanged(self):
        _, engine = _reporting_cluster()
        result = engine.execute("explain analyze " + REPORTING_QUERY)
        assert result.columns == list(QueryProfile.COLUMNS)


class TestSysTraceSpans:
    def test_trace_tree_queryable_by_sql(self):
        cluster, engine = _reporting_cluster()
        engine.execute(REPORTING_QUERY)
        root, spans = _last_query_trace(cluster)
        rows = engine.query(
            "select trace_id, span_id, parent_id, depth, name, node "
            "from sys.trace_spans where trace_id = %d" % root.trace_id)
        assert len(rows) == len(spans)
        roots = [r for r in rows if r["depth"] == 0]
        assert len(roots) == 1
        assert roots[0]["name"] == "query"
        assert roots[0]["span_id"] == root.span_id
        assert roots[0]["node"].startswith("cn")
        # depth increments follow parent edges: pre-order listing
        depths = [r["depth"] for r in rows]
        assert all(b - a <= 1 for a, b in zip(depths, depths[1:]))

    def test_slowlog_entries_join_to_traces(self):
        cluster, engine = _reporting_cluster()
        cluster.obs.slowlog.threshold_us = 0.0
        engine.execute(REPORTING_QUERY)
        root, _ = _last_query_trace(cluster)
        entries = cluster.obs.slowlog.entries()
        assert entries
        assert entries[-1].trace_id == root.trace_id
        # as_row exposes it for sys.slow_queries consumers
        assert entries[-1].as_row()[-1] == root.trace_id


class TestBackgroundWorkTracing:
    def test_htap_merge_spans_stitch_under_tick(self):
        cluster = MppCluster(num_dns=2, htap_enabled=True)
        engine = SqlEngine(cluster)
        engine.execute("create table r (id int primary key, v int) "
                       "with (orientation = column)")
        engine.execute("insert into r values (1, 10), (2, 20), (3, 30), "
                       "(4, 40)")
        cluster.htap.tick()
        tracer = cluster.obs.tracer
        ticks = tracer.finished_spans("htap.tick")
        merges = tracer.finished_spans("htap.merge")
        assert ticks and merges
        tick = ticks[-1]
        children = [m for m in merges if m.parent_id == tick.span_id]
        assert children
        for merge in children:
            assert merge.trace_id == tick.trace_id
            assert merge.node.startswith("dn")
            assert merge.get_attribute("table") == "r"

    def test_wlm_queue_span_child_of_query(self):
        cluster, engine = _reporting_cluster()
        engine.execute(REPORTING_QUERY)
        root, spans = _last_query_trace(cluster)
        queue = [s for s in spans if s.name == "wlm.queue"]
        if queue:                 # present only with WLM admission active
            assert queue[0].parent_id == root.span_id
