"""Tests for the query profiler and EXPLAIN ANALYZE."""

from repro.cluster.mpp import MppCluster
from repro.obs.profiler import QueryProfile
from repro.sql.engine import SqlEngine


def _engine(num_dns=2):
    cluster = MppCluster(num_dns=num_dns)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int, v int)")
    engine.execute(
        "insert into t values (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)")
    return cluster, engine


class TestExplainAnalyze:
    def test_returns_per_operator_rows_and_time(self):
        _, engine = _engine()
        result = engine.execute("explain analyze select v from t where v > 10")
        assert result.columns == list(QueryProfile.COLUMNS)
        assert len(result.rows) >= 2           # at least Exchange + Scan
        operators = [row[0] for row in result.rows]
        assert any("SeqScan" in op for op in operators)
        for _, est, rows, batches, time_us, spilled in result.rows:
            assert rows >= 0 and batches >= 0 and time_us >= 0.0
            assert spilled == 0    # nothing spills under the default budget
        # The root operator produced the query's result rows.
        assert result.rows[0][2] == 4
        assert result.rowcount == 4

    def test_plain_explain_unchanged(self):
        _, engine = _engine()
        result = engine.execute("explain select v from t")
        assert result.columns == ["plan"]
        # plain EXPLAIN does not execute: actual counts stay zero
        assert "actual=0" in result.rows[0][0]

    def test_profile_attached_to_ordinary_select(self):
        _, engine = _engine()
        result = engine.execute("select v from t")
        assert result.profile is not None
        assert result.profile.output_rows == 5
        assert result.profile.total_time_us > 0.0

    def test_depth_indentation_mirrors_plan_tree(self):
        _, engine = _engine()
        result = engine.execute(
            "explain analyze select v, count(*) from t group by v")
        depths = [(len(row[0]) - len(row[0].lstrip())) // 2
                  for row in result.rows]
        assert depths[0] == 0
        assert all(b - a <= 1 for a, b in zip(depths, depths[1:]))

    def test_limit_short_circuit_still_profiles_all_operators(self):
        _, engine = _engine()
        result = engine.execute("explain analyze select v from t limit 2")
        assert result.rowcount == 2
        # every operator row has a finite time even if never exhausted
        assert all(row[4] >= 0.0 for row in result.rows)


class TestProfilerTelemetry:
    def test_operator_spans_mirror_plan_tree(self):
        cluster, engine = _engine()
        engine.execute("select v, count(*) from t where v > 10 group by v")
        spans = cluster.obs.tracer.finished_spans()
        query_spans = [s for s in spans if s.name == "query"]
        assert len(query_spans) == 1
        op_spans = [s for s in spans if s.name.startswith("op.")]
        assert len(op_spans) >= 3
        by_id = {s.span_id: s for s in spans}
        # Since the distributed-tracing refactor, the plan's root operator
        # is a child of the query span, so no operator roots a trace of its
        # own — the whole tree shares the query's trace_id.
        assert not [s for s in op_spans if s.parent_id is None]
        root_ops = 0
        for span in op_spans:
            parent = by_id[span.parent_id]
            if parent.name == "query":
                root_ops += 1
            else:
                assert parent.name.startswith("op.")
        assert root_ops == 1
        assert all(s.trace_id == query_spans[0].trace_id for s in op_spans)

    def test_exec_rows_counter_reconciles_with_profile(self):
        cluster, engine = _engine()
        before = cluster.obs.metrics.value("exec.rows") or 0.0
        result = engine.execute("select v from t")
        # executor-level exec.rows grew by at least the root output rows
        after = cluster.obs.metrics.value("exec.rows")
        assert after - before >= result.profile.output_rows

    def test_query_commits_reconcile_with_cluster_stats(self):
        cluster, engine = _engine()
        commits_before = cluster.stats.commits_multi_shard
        for _ in range(3):
            engine.execute("select v from t")
        assert cluster.stats.commits_multi_shard == commits_before + 3
        assert cluster.obs.metrics.value("query.executed") == 3.0
        assert cluster.obs.metrics.value("query.latency_us") == 3.0  # hist count


class TestDeterminism:
    def test_identical_runs_produce_identical_profiles(self):
        def run():
            _, engine = _engine()
            result = engine.execute(
                "explain analyze select v, count(*) from t "
                "where v > 10 group by v order by v")
            return result.rows

        assert run() == run()
