"""The telemetry fast path: deterministic sampling, exact aggregates,
replay identity and full reset of the sampler/ring state.

The contract under test (ROADMAP item 2 / ISSUE 7):

* aggregates in ``sys.wait_events`` are exact regardless of the sampling
  mode — only per-observation *detail* (sample ring, reservoir, histogram
  feed) is sampled;
* sampling is deterministic: same seed + same workload ⇒ byte-identical
  sample sets, across fresh clusters and across ``reset_telemetry``;
* ``sys.obs_config`` tells the truth about the live telemetry mode.
"""

from repro.cluster.mpp import MppCluster
from repro.obs.config import ObsConfig
from repro.sql.engine import SqlEngine
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


def _run_workload(cluster):
    load_tpcc(cluster, num_warehouses=2)
    workload = TpccLiteWorkload(num_warehouses=2, multi_shard_fraction=0.3,
                                seed=11)
    return run_oltp(cluster, workload, clients_per_dn=2, txns_per_client=8)


def _telemetry(cluster):
    """Every surface the fast path rewrote, in comparable form."""
    obs = cluster.obs
    _, metrics = obs.metrics.snapshot()
    return {
        "metrics": metrics,
        "waits": obs.waits.rows(),
        "samples": obs.waits.sample_rows(),
        "sampling": obs.waits.sampling_rows(),
        "span_count": obs.tracer.spans_started,
    }


class TestDeterministicSampling:
    def test_same_seed_same_workload_identical_sample_sets(self):
        a = MppCluster(num_dns=2)
        b = MppCluster(num_dns=2)
        ra = _run_workload(a)
        rb = _run_workload(b)
        assert ra.as_dict() == rb.as_dict()
        ta, tb = _telemetry(a), _telemetry(b)
        assert ta["samples"] == tb["samples"]      # byte-identical detail
        assert ta == tb                            # ...and everything else

    def test_exact_aggregates_match_unsampled_totals(self):
        sampled = MppCluster(num_dns=2,
                             obs_config=ObsConfig(wait_sample_every=8))
        full = MppCluster(num_dns=2,
                          obs_config=ObsConfig(wait_sample_every=1))
        rs = _run_workload(sampled)
        rf = _run_workload(full)
        assert rs.as_dict() == rf.as_dict()
        # count/total/avg/max per event are exact under sampling: identical
        # to the unsampled run even though the detail streams differ.
        assert sampled.obs.waits.rows() == full.obs.waits.rows()
        # the sampled run actually sampled (fewer detail rows, same seen)
        for (ev_s, every_s, seen_s, taken_s), (ev_f, every_f, seen_f,
                                               taken_f) in zip(
                sampled.obs.waits.sampling_rows(),
                full.obs.waits.sampling_rows()):
            assert ev_s == ev_f and seen_s == seen_f
            if every_s > 1:
                assert taken_s < taken_f

    def test_high_frequency_events_are_strided(self):
        cluster = MppCluster(num_dns=2)
        _run_workload(cluster)
        strides = {event: every
                   for event, every, _seen, _taken
                   in cluster.obs.waits.sampling_rows()}
        config = cluster.obs.config
        for event in config.high_frequency_events:
            if event in strides:
                assert strides[event] == config.wait_sample_every
        assert any(every > 1 for every in strides.values())

    def test_sampled_detail_covers_every_high_frequency_event(self):
        cluster = MppCluster(num_dns=2)
        _run_workload(cluster)
        sampled_events = {row[0] for row in cluster.obs.waits.sample_rows()}
        recorded = {row[0] for row in cluster.obs.waits.rows()}
        for event in cluster.obs.config.high_frequency_events:
            if event in recorded:
                assert event in sampled_events


def _reset_load(cluster):
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)],
        primary_key="k"))
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for k in range(8):
        txn.insert("t", {"k": k, "v": 0})
    txn.commit()


def _reset_workload(cluster):
    """Update/read mix heavy enough to trip the 1-in-8 detail samplers."""
    session = cluster.session()
    for rep in range(4):
        for k in range(8):
            txn = session.begin(multi_shard=(k % 2 == 0))
            txn.update("t", k, {"v": 8 * rep + k})
            txn.read("t", k)
            txn.commit()


class TestResetRegression:
    def test_reset_then_replay_matches_fresh_cluster_telemetry(self):
        """Satellite (a): reset + same workload == fresh cluster running
        that workload — including the sample rings and sampler state, which
        must restart from their seeded position, not continue mid-stream."""
        fresh = MppCluster(num_dns=2)
        _reset_load(fresh)
        fresh.reset_telemetry()          # discard the load's telemetry
        _reset_workload(fresh)

        reused = MppCluster(num_dns=2)
        _reset_load(reused)
        _reset_workload(reused)          # dirty the recorders and samplers
        reused.reset_telemetry()
        _reset_workload(reused)          # then replay the same workload

        tf, tr = _telemetry(fresh), _telemetry(reused)
        assert tf["samples"]             # samplers actually fired
        assert tf == tr

    def test_reset_clears_sample_rings_and_sampler_state(self):
        cluster = MppCluster(num_dns=2)
        _run_workload(cluster)
        obs = cluster.obs
        assert obs.waits.sample_rows()
        assert obs.waits.sampling_rows()
        cluster.reset_telemetry()
        assert obs.waits.sample_rows() == []
        assert obs.waits.sampling_rows() == []
        assert obs.waits.rows() == []
        assert obs.tracer.finished_spans() == []


class TestObsConfigView:
    def test_sys_obs_config_reflects_live_knobs(self):
        cluster = MppCluster(
            num_dns=2, obs_config=ObsConfig(wait_sample_every=4,
                                            wait_detail_capacity=512))
        load_tpcc(cluster, num_warehouses=2)
        engine = SqlEngine(cluster)
        settings = {row["setting"]: row["value"] for row in
                    engine.query("SELECT setting, value FROM sys.obs_config")}
        assert settings["wait_sample_every"] == "4"
        assert settings["wait_detail_capacity"] == "512"
        assert settings["trace_enabled"] == "true"
        assert "dn.scan" in settings["high_frequency_events"]

    def test_sys_wait_sampling_queryable(self):
        cluster = MppCluster(num_dns=2)
        _run_workload(cluster)
        before = dict((row[0], row[1]) for row in cluster.obs.waits.rows())
        engine = SqlEngine(cluster)
        rows = engine.query(
            "SELECT event, every, seen, sampled FROM sys.wait_sampling")
        assert rows
        after = dict((row[0], row[1]) for row in cluster.obs.waits.rows())
        for row in rows:
            # the view query itself fires wait events, so `seen` (snapshotted
            # mid-query) sits between the pre- and post-query exact counts
            assert before.get(row["event"], 0) <= row["seen"]
            assert row["seen"] <= after[row["event"]]
            assert row["sampled"] <= row["seen"]

    def test_sys_wait_samples_queryable(self):
        cluster = MppCluster(num_dns=2)
        _run_workload(cluster)
        engine = SqlEngine(cluster)
        rows = engine.query(
            "SELECT event, wait_us, event_seq FROM sys.wait_samples")
        assert rows
        assert all(r["wait_us"] >= 0.0 for r in rows)
