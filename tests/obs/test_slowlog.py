"""Tests for the slow-query log and the alert pipeline."""

import pytest

from repro.common.errors import ConfigError
from repro.obs.alerts import AlertManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import OperatorProfile, QueryProfile
from repro.obs.slowlog import SlowQueryLog


def _profile(total_us, rows=10):
    ops = [
        OperatorProfile(operator="PScan(t)", depth=1, est_rows=10,
                        rows=rows, batches=1, time_us=total_us * 0.8),
        OperatorProfile(operator="PProject", depth=0, est_rows=10,
                        rows=rows, batches=1, time_us=total_us * 0.2),
    ]
    return QueryProfile(operators=ops)


class TestSlowQueryLog:
    def test_below_threshold_not_recorded(self):
        log = SlowQueryLog(threshold_us=1_000.0)
        assert log.note("SELECT 1", 0.0, _profile(500.0)) is None
        assert len(log) == 0
        assert log.queries_seen == 1

    def test_above_threshold_recorded_with_profile_summary(self):
        log = SlowQueryLog(threshold_us=1_000.0)
        entry = log.note("SELECT *\n  FROM t", 42.0, _profile(2_000.0))
        assert entry is not None
        assert entry.sql == "SELECT * FROM t"     # whitespace normalized
        assert entry.start_us == 42.0
        assert entry.elapsed_us == 2_000.0
        assert entry.operators == 2
        assert entry.top_operator == "PScan(t)"
        assert entry.top_operator_us == pytest.approx(1_600.0)

    def test_ring_buffer_evicts_oldest(self):
        log = SlowQueryLog(threshold_us=0.0, max_entries=2)
        for i in range(4):
            log.note(f"q{i}", float(i), _profile(10.0))
        entries = log.entries()
        assert [e.sql for e in entries] == ["q2", "q3"]
        # ids keep counting even after eviction
        assert [e.query_id for e in entries] == [3, 4]

    def test_recorded_since(self):
        log = SlowQueryLog(threshold_us=0.0)
        for t in (0.0, 100.0, 200.0):
            log.note("q", t, _profile(10.0))
        assert log.recorded_since(100.0) == 2
        assert log.recorded_since(300.0) == 0

    def test_metrics_mirrored(self):
        registry = MetricsRegistry()
        log = SlowQueryLog(threshold_us=0.0, metrics=registry)
        log.note("q", 0.0, _profile(10.0))
        assert registry.counter("slowlog.recorded").value == 1
        assert registry.histogram("slowlog.elapsed_us").count == 1

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            SlowQueryLog(threshold_us=-1.0)
        with pytest.raises(ConfigError):
            SlowQueryLog(max_entries=0)

    def test_reset(self):
        log = SlowQueryLog(threshold_us=0.0)
        log.note("q", 0.0, _profile(10.0))
        log.reset()
        assert len(log) == 0 and log.queries_seen == 0


class TestAlertManager:
    def test_dedup_within_window(self):
        mgr = AlertManager(dedup_window_us=1_000.0)
        a = mgr.raise_alert("gtm", "warning", "m1", t_us=0.0)
        b = mgr.raise_alert("gtm", "warning", "m2", t_us=500.0)
        assert a is b
        assert a.count == 2
        assert a.message == "m2"
        assert a.last_us == 500.0
        assert len(mgr) == 1
        assert mgr.deduplicated_total == 1

    def test_new_alert_outside_window(self):
        mgr = AlertManager(dedup_window_us=1_000.0)
        mgr.raise_alert("gtm", "warning", "m1", t_us=0.0)
        late = mgr.raise_alert("gtm", "warning", "m2", t_us=5_000.0)
        assert late.count == 1
        assert mgr.raised_total == 2

    def test_severity_escalates_never_deescalates(self):
        mgr = AlertManager()
        a = mgr.raise_alert("x", "warning", "m", t_us=0.0)
        mgr.raise_alert("x", "critical", "m", t_us=1.0)
        assert a.severity == "critical"
        mgr.raise_alert("x", "info", "m", t_us=2.0)
        assert a.severity == "critical"

    def test_ranked_most_severe_first(self):
        mgr = AlertManager()
        mgr.raise_alert("a", "info", "m", t_us=0.0)
        mgr.raise_alert("b", "critical", "m", t_us=1.0)
        mgr.raise_alert("c", "warning", "m", t_us=2.0)
        assert [x.severity for x in mgr.alerts()] == [
            "critical", "warning", "info"]

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigError):
            AlertManager().raise_alert("x", "catastrophic", "m", t_us=0.0)

    def test_store_publication(self):
        from repro.autonomous.infostore import InformationStore
        store = InformationStore()
        mgr = AlertManager()
        mgr.bind_store(store)
        mgr.raise_alert("x", "warning", "m", t_us=10.0)
        assert store.latest("alerts.warning") == 1.0
        assert store.latest("alerts.active") == 1.0

    def test_from_anomaly_duck_typed(self):
        class FakeSeverity:
            value = "critical"

        class FakeAnomaly:
            detector = "threshold"
            metric = "memory_utilization"
            severity = FakeSeverity()
            message = "too high"
            t_us = 5.0

        mgr = AlertManager()
        alert = mgr.from_anomaly(FakeAnomaly())
        assert alert.source == "anomaly:threshold"
        assert alert.severity == "critical"
        # dedup key is detector:metric, so a repeat folds in
        assert mgr.from_anomaly(FakeAnomaly()) is alert
        assert alert.count == 2

    def test_slow_query_burst_raises_warning(self):
        mgr = AlertManager()
        log = SlowQueryLog(threshold_us=0.0)
        assert mgr.check_slow_queries(log, now_us=1_000.0) is None
        for t in (500.0, 600.0, 700.0):
            log.note("q", t, _profile(10.0))
        alert = mgr.check_slow_queries(log, now_us=1_000.0,
                                       burst_threshold=3)
        assert alert is not None
        assert alert.severity == "warning"
        assert alert.source == "slowlog"

    def test_counters_mirrored(self):
        registry = MetricsRegistry()
        mgr = AlertManager(metrics=registry)
        mgr.raise_alert("x", "critical", "m", t_us=0.0)
        assert registry.counter("alerts.raised").value == 1
        assert registry.counter("alerts.critical").value == 1
