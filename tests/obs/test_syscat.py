"""The ``sys.*`` views, end to end through parser → binder → executor."""

import pytest

from repro.cluster.mpp import MppCluster
from repro.common.errors import SqlAnalysisError
from repro.sql.engine import SqlEngine


@pytest.fixture
def engine():
    cluster = MppCluster(num_dns=2)
    eng = SqlEngine(cluster, learning_enabled=False)
    eng.execute("CREATE TABLE t (a int, b text)")
    eng.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return eng


class TestSysViewsBindAndExecute:
    def test_every_view_selects_star(self, engine):
        for view in ("sys.metrics", "sys.activity", "sys.wait_events",
                     "sys.slow_queries", "sys.spans", "sys.alerts"):
            result = engine.execute(f"SELECT * FROM {view}")
            assert result.columns, view
            # served through the standard physical pipeline
            assert "TableFunction" in result.plan_text, view

    def test_metrics_view_reflects_live_registry(self, engine):
        before = engine.cluster.obs.metrics.counter("txn.commit").value
        rows = engine.query(
            "SELECT value FROM sys.metrics WHERE name = 'txn.commit'")
        # the view snapshots at read time, inside the querying transaction —
        # so it sees every commit *before* this query, not its own
        assert rows[0]["value"] == before
        kinds = engine.query(
            "SELECT kind FROM sys.metrics WHERE name = 'gtm.active'")
        assert kinds[0]["kind"] == "gauge"
        hist = engine.query("SELECT kind FROM sys.metrics "
                            "WHERE name = 'gtm.snapshot_us.p95'")
        assert hist[0]["kind"] == "histogram"

    def test_wait_events_view_matches_recorder(self, engine):
        recorder_rows = engine.cluster.obs.waits.rows()
        sql_rows = engine.execute("SELECT * FROM sys.wait_events").rows
        # the SELECT itself runs in a transaction that adds waits, so the
        # recorder read *before* must be a prefix-wise subset by event name
        assert {r[0] for r in recorder_rows} <= {r[0] for r in sql_rows}
        assert [r[0] for r in sql_rows] == sorted(r[0] for r in sql_rows)

    def test_activity_shows_the_querying_transaction(self, engine):
        rows = engine.query("SELECT kind, state, snapshot FROM sys.activity")
        # exactly one open transaction: the one serving this query
        assert rows == [{"kind": "global", "state": "running",
                         "snapshot": "merged"}]

    def test_activity_where_state_waiting(self, engine):
        obs = engine.cluster.obs
        # hold a transaction open and mark it blocked, as an UPGRADE would
        session = engine.cluster.session()
        stalled = session.begin(multi_shard=True)
        obs.activity.enter_wait(stalled.activity_entry)
        rows = engine.query(
            "SELECT txn_id, kind FROM sys.activity WHERE state = 'waiting'")
        assert rows == [{"txn_id": stalled.gxid, "kind": "global"}]
        obs.activity.leave_wait(stalled.activity_entry)
        stalled.commit()

    def test_composition_filter_plus_aggregate(self, engine):
        rows = engine.query(
            "SELECT count(*) AS n, sum(total_us) AS w FROM sys.wait_events "
            "WHERE event LIKE 'gtm.%' AND total_us > 0")
        assert rows[0]["n"] >= 2          # gtm.global + gtm.local at least
        assert rows[0]["w"] > 0.0

    def test_composition_group_by_and_order(self, engine):
        rows = engine.query(
            "SELECT kind, count(*) AS n FROM sys.metrics "
            "GROUP BY kind ORDER BY n DESC")
        kinds = {r["kind"] for r in rows}
        assert {"counter", "histogram"} <= kinds

    def test_composition_join_with_user_table(self, engine):
        # joining a sys view against a user table goes through the normal
        # join operators — no special casing anywhere
        rows = engine.query(
            "SELECT t.a, w.event FROM t JOIN sys.wait_events w "
            "ON t.a = 1 WHERE w.event = 'gtm.global'")
        assert rows == [{"a": 1, "event": "gtm.global"}]

    def test_alias_binding(self, engine):
        rows = engine.query(
            "SELECT m.name FROM sys.metrics m WHERE m.name = 'txn.commit'")
        assert rows == [{"name": "txn.commit"}]

    def test_spans_view(self, engine):
        rows = engine.query(
            "SELECT count(*) AS n FROM sys.spans WHERE name = 'txn.global'")
        assert rows[0]["n"] > 0

    def test_unknown_sys_view_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.execute("SELECT * FROM sys.nonsense")

    def test_views_are_deterministic_between_identical_engines(self):
        def snapshot():
            cluster = MppCluster(num_dns=2)
            eng = SqlEngine(cluster, learning_enabled=False)
            eng.execute("CREATE TABLE t (a int)")
            eng.execute("INSERT INTO t VALUES (1), (2)")
            eng.query("SELECT * FROM t")
            return (eng.execute("SELECT * FROM sys.wait_events").rows,
                    eng.execute("SELECT * FROM sys.metrics").rows)
        assert snapshot() == snapshot()


class TestSlowQueryPipeline:
    def test_slow_query_lands_in_view(self):
        cluster = MppCluster(num_dns=2)
        cluster.obs.slowlog.threshold_us = 0.0      # everything is "slow"
        eng = SqlEngine(cluster, learning_enabled=False)
        eng.execute("CREATE TABLE t (a int)")
        eng.execute("INSERT INTO t VALUES (1), (2), (3)")
        eng.query("SELECT * FROM t WHERE a > 1")
        rows = eng.query(
            "SELECT sql, operators, top_operator FROM sys.slow_queries")
        assert any(r["sql"] == "SELECT * FROM t WHERE a > 1" for r in rows)
        slowest = rows[-1]
        assert slowest["operators"] > 0
        assert slowest["top_operator"]

    def test_alerts_queryable_after_burst(self):
        cluster = MppCluster(num_dns=2)
        cluster.obs.slowlog.threshold_us = 0.0
        eng = SqlEngine(cluster, learning_enabled=False)
        eng.execute("CREATE TABLE t (a int)")
        eng.execute("INSERT INTO t VALUES (1)")
        for _ in range(3):
            eng.query("SELECT * FROM t")
        cluster.obs.alerts.check_slow_queries(
            cluster.obs.slowlog, now_us=cluster.obs.clock.now_us + 1.0,
            window_us=1e12)
        rows = eng.query(
            "SELECT severity, source, count FROM sys.alerts "
            "WHERE source = 'slowlog'")
        assert rows and rows[0]["severity"] == "warning"


class TestSysFaultsView:
    def test_empty_without_injector(self, engine):
        result = engine.execute("SELECT * FROM sys.faults")
        assert result.rows == []
        assert result.columns == ["fault_id", "failpoint", "action",
                                  "target", "gxid", "t_us"]

    def test_injected_faults_queryable(self, engine):
        from repro.faults import ACT_TIMEOUT, FP_PREPARE_BEFORE, FaultInjector

        cluster = engine.cluster
        injector = FaultInjector(seed=3).bind(cluster)
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=1)
        engine.execute("UPDATE t SET b = 'w' WHERE a = 1")
        rows = engine.query(
            "SELECT failpoint, action, target FROM sys.faults")
        assert rows == [{"failpoint": "2pc.prepare.before",
                         "action": "timeout",
                         "target": "dn1"}]    # a = 1 hashes to dn1
        count = engine.query("SELECT count(*) AS n FROM sys.faults")
        assert count[0]["n"] == 1
