"""Telemetry reset: zeroed recorders, rewound clock, identical replays."""

from repro.cluster.mpp import MppCluster
from repro.common.clock import SimClock
from repro.obs import Observability
from repro.obs.waits import WAIT_GTM_GLOBAL
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType


def _load(cluster):
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)],
        primary_key="k"))
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for k in range(4):
        txn.insert("t", {"k": k, "v": 0})
    txn.commit()


def _workload(cluster):
    """A deterministic mix of global and local read-write transactions."""
    session = cluster.session()
    for k in range(4):
        txn = session.begin(multi_shard=(k % 2 == 0))
        txn.update("t", k, {"v": k + 1})
        txn.read("t", k)
        txn.commit()


def _telemetry(cluster):
    """Everything sys.* serves, minus MVCC ids (which survive a reset)."""
    _, metrics = cluster.obs.metrics.snapshot()
    spans = [(s.name, s.start_us, s.end_us, s.parent_id)
             for s in cluster.obs.tracer.finished_spans()]
    return (metrics, cluster.obs.waits.rows(), spans,
            [e.as_row() for e in cluster.obs.slowlog.entries()])


class TestObservabilityReset:
    def test_reset_zeroes_every_recorder_and_the_clock(self):
        obs = Observability()
        obs.metrics.counter("txn.commit").inc()
        obs.tracer.end_span(obs.tracer.start_span("txn.global"))
        obs.waits.record(WAIT_GTM_GLOBAL, 100.0, session=1)
        obs.activity.finish(obs.activity.begin("global", "merged"), "committed")
        obs.alerts.raise_alert("x", "warning", "m", t_us=0.0)
        obs.clock.advance(5_000.0)

        obs.reset()

        # registered names survive a reset, but every value is zeroed
        _, metrics = obs.metrics.snapshot()
        assert metrics and all(v == 0.0 for v in metrics.values())
        assert obs.tracer.finished_spans() == []
        assert obs.tracer.spans_started == 0
        assert obs.waits.rows() == []
        assert obs.activity.completed() == []
        assert obs.activity.open_count == 0
        assert len(obs.alerts) == 0
        assert obs.clock.now_us == 0.0

    def test_simclock_reset_rewinds(self):
        clock = SimClock()
        clock.advance(123.0)
        clock.reset()
        assert clock.now_us == 0.0
        clock.reset(start_us=50.0)
        assert clock.now_us == 50.0


class TestClusterResetTelemetry:
    def test_reset_preserves_data_and_transactions_still_run(self):
        cluster = MppCluster(num_dns=2)
        _load(cluster)
        _workload(cluster)
        cluster.reset_telemetry()
        # telemetry is gone ...
        assert cluster.obs.waits.rows() == []
        assert cluster.obs.tracer.finished_spans() == []
        assert cluster.gtm.stats.total_requests == 0
        # ... but the data and XID allocators are untouched
        session = cluster.session()
        assert session.session_id == 1        # session ids restart too
        txn = session.begin(multi_shard=True)
        assert txn.read("t", 2) == {"k": 2, "v": 3}
        txn.update("t", 2, {"v": 99})
        txn.commit()

    def test_workload_after_reset_replays_identical_telemetry(self):
        """The satellite guarantee: reset + same workload == fresh cluster
        running that workload.  MVCC ids differ; telemetry must not."""
        fresh = MppCluster(num_dns=2)
        _load(fresh)
        fresh.reset_telemetry()          # discard the load's telemetry
        _workload(fresh)

        reused = MppCluster(num_dns=2)
        _load(reused)
        _workload(reused)                # dirty the recorders first
        reused.reset_telemetry()
        _workload(reused)                # then replay the same workload

        assert _telemetry(fresh) == _telemetry(reused)

    def test_double_reset_is_idempotent(self):
        cluster = MppCluster(num_dns=2)
        _load(cluster)
        cluster.reset_telemetry()
        first = _telemetry(cluster)
        cluster.reset_telemetry()
        assert _telemetry(cluster) == first
        metrics, wait_rows, spans, slow = first
        assert all(v == 0.0 for v in metrics.values())
        assert (wait_rows, spans, slow) == ([], [], [])
