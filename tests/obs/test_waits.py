"""Tests for wait-event accounting and the live activity registry."""

from repro.cluster.mpp import MppCluster
from repro.cluster.txn import TxnMode
from repro.common.clock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.waits import (
    ALL_WAIT_EVENTS,
    ActivityRegistry,
    WAIT_2PC_COMMIT,
    WAIT_2PC_PREPARE,
    WAIT_DN_APPLY,
    WAIT_GTM_GLOBAL,
    WAIT_GTM_LOCAL,
    WaitEventRecorder,
)


class TestWaitEventRecorder:
    def test_aggregates_per_event(self):
        rec = WaitEventRecorder()
        rec.record(WAIT_GTM_GLOBAL, 100.0)
        rec.record(WAIT_GTM_GLOBAL, 50.0)
        rec.record(WAIT_2PC_PREPARE, 60.0)
        s = rec.stats(WAIT_GTM_GLOBAL)
        assert s.count == 2
        assert s.total_us == 150.0
        assert s.avg_us == 75.0
        assert s.max_us == 100.0
        assert rec.total_us(WAIT_2PC_PREPARE) == 60.0
        assert rec.total_us("nonexistent") == 0.0

    def test_attributes_per_session(self):
        rec = WaitEventRecorder()
        rec.record(WAIT_GTM_GLOBAL, 100.0, session=1)
        rec.record(WAIT_GTM_GLOBAL, 40.0, session=2)
        rec.record(WAIT_2PC_COMMIT, 30.0, session=1)
        per = rec.session_stats(1)
        assert set(per) == {WAIT_GTM_GLOBAL, WAIT_2PC_COMMIT}
        assert per[WAIT_GTM_GLOBAL].total_us == 100.0
        assert rec.session_stats(2)[WAIT_GTM_GLOBAL].total_us == 40.0

    def test_mirrors_into_registry_histograms(self):
        registry = MetricsRegistry()
        rec = WaitEventRecorder(registry)
        rec.record(WAIT_GTM_GLOBAL, 100.0)
        rec.record(WAIT_GTM_GLOBAL, 50.0)
        hist = registry.histogram(f"wait.{WAIT_GTM_GLOBAL}_us")
        assert hist.count == 2
        assert hist.sum == 150.0

    def test_rows_sorted_by_event(self):
        rec = WaitEventRecorder()
        rec.record(WAIT_GTM_LOCAL, 5.0)
        rec.record(WAIT_2PC_PREPARE, 60.0)
        rows = rec.rows()
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)
        assert rows[0] == (WAIT_2PC_PREPARE, 1, 60.0, 60.0, 60.0)

    def test_negative_wait_clamped(self):
        rec = WaitEventRecorder()
        rec.record(WAIT_GTM_LOCAL, -10.0)
        assert rec.stats(WAIT_GTM_LOCAL).total_us == 0.0

    def test_reset(self):
        rec = WaitEventRecorder()
        rec.record(WAIT_GTM_GLOBAL, 1.0, session=1)
        rec.reset()
        assert rec.events() == {}
        assert rec.session_stats(1) == {}


class TestActivityRegistry:
    def test_lifecycle(self):
        clock = SimClock()
        reg = ActivityRegistry(clock)
        entry = reg.begin("global", "merged", cn=1, session=7)
        assert entry.open and entry.state == "running"
        assert reg.open_count == 1
        clock.advance(100.0)
        assert entry.elapsed_us(clock.now_us) == 100.0
        reg.finish(entry, "committed")
        assert not entry.open
        assert entry.state == "committed"
        assert reg.open_count == 0
        assert reg.completed() == [entry]

    def test_wait_depth(self):
        reg = ActivityRegistry()
        entry = reg.begin("global", "merged")
        reg.enter_wait(entry)
        reg.enter_wait(entry)
        assert entry.state == "waiting"
        reg.leave_wait(entry)
        assert entry.state == "waiting"        # still one level deep
        reg.leave_wait(entry)
        assert entry.state == "running"

    def test_note_wait_accumulates(self):
        reg = ActivityRegistry()
        entry = reg.begin("local", "local")
        entry.note_wait(WAIT_GTM_LOCAL, 5.0)
        entry.note_wait(WAIT_DN_APPLY, 30.0)
        assert entry.wait_us == 35.0
        assert entry.last_wait == WAIT_DN_APPLY

    def test_ids_restart_after_reset(self):
        reg = ActivityRegistry()
        first = reg.begin("local", "local")
        reg.reset()
        assert reg.begin("local", "local").activity_id == first.activity_id


class TestTransactionWaitAccounting:
    """Wait events recorded by real transactions against the cost model."""

    def _cluster(self, mode=TxnMode.GTM_LITE):
        cluster = MppCluster(num_dns=2, mode=mode)
        from repro.storage.table import Column, TableSchema
        from repro.storage.types import DataType
        cluster.create_table(TableSchema(
            "t", [Column("k", DataType.INT), Column("v", DataType.INT)],
            primary_key="k"))
        return cluster

    def test_global_txn_records_protocol_waits(self):
        cluster = self._cluster()
        model = cluster.profile.mpp
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 1, "v": 1})
        txn.insert("t", {"k": 2, "v": 2})
        txn.commit()
        waits = cluster.obs.waits
        # global snapshot acquired once, no other global txns in flight
        assert waits.total_us(WAIT_GTM_GLOBAL) == model.gtm_snapshot_us
        # one prepare per written node (keys 1 and 2 hash to both shards)
        prepared = waits.stats(WAIT_2PC_PREPARE)
        assert prepared.count == len(txn.touched_nodes())
        assert prepared.total_us == model.dn_prepare_us * prepared.count
        assert waits.total_us(WAIT_DN_APPLY) == model.dn_stmt_us * 2
        # 2pc.commit covers the GTM commit plus per-node confirmations
        assert waits.total_us(WAIT_2PC_COMMIT) == (
            model.gtm_commit_us
            + model.dn_commit_prepared_us * prepared.count)

    def test_local_txn_avoids_global_waits(self):
        cluster = self._cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        txn.insert("t", {"k": 1, "v": 1})
        txn.commit()
        waits = cluster.obs.waits
        assert waits.total_us(WAIT_GTM_GLOBAL) == 0.0
        assert waits.total_us(WAIT_GTM_LOCAL) > 0.0

    def test_classical_mode_routes_everything_through_gtm(self):
        cluster = self._cluster(mode=TxnMode.CLASSICAL)
        session = cluster.session()
        txn = session.begin(multi_shard=False)   # still global under classical
        txn.insert("t", {"k": 1, "v": 1})
        txn.commit()
        assert cluster.obs.waits.total_us(WAIT_GTM_GLOBAL) > 0.0

    def test_session_attribution(self):
        cluster = self._cluster()
        s1 = cluster.session()
        s2 = cluster.session()
        assert s1.session_id != s2.session_id
        t1 = s1.begin(multi_shard=True)
        t1.insert("t", {"k": 1, "v": 1})
        t1.commit()
        per = cluster.obs.waits.session_stats(s1.session_id)
        assert per and all(s.total_us >= 0 for s in per.values())
        assert cluster.obs.waits.session_stats(s2.session_id) == {}

    def test_activity_registry_tracks_txn_lifecycle(self):
        cluster = self._cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        entry = txn.activity_entry
        assert entry is not None and entry.open
        assert entry.kind == "global" and entry.snapshot == "merged"
        assert entry.txn_id == txn.gxid
        assert entry.session == session.session_id
        txn.insert("t", {"k": 1, "v": 1})
        txn.commit()
        assert not entry.open
        assert entry.state == "committed"
        assert entry.wait_us > 0.0

    def test_vocabulary_is_closed(self):
        """Every event a real run records is in the published vocabulary."""
        cluster = self._cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 1, "v": 1})
        txn.read("t", 1)
        txn.commit()
        assert set(cluster.obs.waits.events()) <= set(ALL_WAIT_EVENTS)
