"""Tests for the columnar compression codecs."""

import pytest

from repro.common.errors import StorageError
from repro.storage import compression
from repro.storage.compression import (
    DeltaCodec,
    DictionaryCodec,
    RunLengthCodec,
    best_codec,
    decode,
)


class TestRle:
    def test_round_trip(self):
        values = ["a"] * 5 + ["b"] * 3 + ["a"]
        assert RunLengthCodec.decode(RunLengthCodec.encode(values)) == values

    def test_runs_counted(self):
        runs = RunLengthCodec.encode([1, 1, 1, 2])
        assert runs == [(1, 3), (2, 1)]

    def test_empty(self):
        assert RunLengthCodec.decode(RunLengthCodec.encode([])) == []

    def test_bad_run_rejected(self):
        with pytest.raises(StorageError):
            RunLengthCodec.decode([("a", 0)])


class TestDictionary:
    def test_round_trip(self):
        values = ["x", "y", "x", "z", "x"]
        dictionary, codes = DictionaryCodec.encode(values)
        assert DictionaryCodec.decode(dictionary, codes) == values
        assert len(dictionary) == 3

    def test_code_out_of_range(self):
        with pytest.raises(StorageError):
            DictionaryCodec.decode(["a"], [0, 1])


class TestDelta:
    def test_round_trip(self):
        values = [100, 101, 103, 103, 90]
        base, deltas = DeltaCodec.encode(values)
        assert DeltaCodec.decode(base, deltas) == values

    def test_monotone_timestamps_compress_well(self):
        values = list(range(1_000_000, 1_001_000))
        base, deltas = DeltaCodec.encode(values)
        assert DeltaCodec.encoded_size(base, deltas) < len(values)

    def test_empty(self):
        assert DeltaCodec.decode(*DeltaCodec.encode([])) == []


class TestBestCodec:
    def test_constant_column_picks_rle(self):
        name, payload = best_codec([7] * 1000)
        assert name == "rle"
        assert decode(name, payload) == [7] * 1000

    def test_low_cardinality_strings_pick_dict(self):
        values = ["us", "cn", "de"] * 300
        name, payload = best_codec(values)
        assert name in ("dict", "rle")
        assert decode(name, payload) == values

    def test_sequential_ints_pick_delta(self):
        values = list(range(5000, 6000))
        name, payload = best_codec(values)
        assert name == "delta"
        assert decode(name, payload) == values

    def test_random_strings_fall_back_to_plain(self):
        values = [f"s{i}" for i in range(100)]
        name, payload = best_codec(values)
        assert name == "plain"
        assert decode(name, payload) == values

    def test_decode_unknown_codec(self):
        with pytest.raises(StorageError):
            decode("nope", [])

    def test_none_values_survive(self):
        values = [None, 1, None, 1]
        name, payload = best_codec(values)
        assert decode(name, payload) == values
