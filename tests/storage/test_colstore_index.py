"""Tests for the column store, indexes and type coercion."""

import pytest

from repro.common.errors import StorageError
from repro.storage.colstore import ColumnStore
from repro.storage.index import HashIndex, OrderedIndex, make_index
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType, coerce, type_of_literal


def store_with_rows(n=100, chunk_rows=32):
    schema = TableSchema(
        "metrics",
        [Column("id", DataType.INT), Column("region", DataType.TEXT),
         Column("value", DataType.DOUBLE)],
        "id",
    )
    store = ColumnStore(schema, chunk_rows=chunk_rows)
    store.append_rows([
        {"id": i, "region": f"r{i % 3}", "value": float(i)} for i in range(n)
    ])
    return store


class TestColumnStore:
    def test_row_count_and_chunking(self):
        store = store_with_rows(100, chunk_rows=32)
        assert store.row_count == 100
        assert store.chunk_count == 4   # 3 sealed + 1 open

    def test_scan_rows_round_trip(self):
        store = store_with_rows(50)
        rows = list(store.scan_rows())
        assert len(rows) == 50
        assert rows[7] == {"id": 7, "region": "r1", "value": 7.0}

    def test_flush_seals_tail(self):
        store = store_with_rows(10, chunk_rows=32)
        store.flush()
        assert store.chunk_count == 1
        assert len(list(store.scan_rows())) == 10

    def test_scan_chunks_projection(self):
        store = store_with_rows(64, chunk_rows=32)
        chunks = list(store.scan_chunks(["value"]))
        assert all(set(c.keys()) == {"value"} for c in chunks)
        total = sum(len(c["value"]) for c in chunks)
        assert total == 64

    def test_nulls_round_trip(self):
        schema = TableSchema("t", [Column("id", DataType.INT),
                                   Column("v", DataType.TEXT)], "id")
        store = ColumnStore(schema, chunk_rows=2)
        store.append_rows([{"id": 1, "v": None}, {"id": 2, "v": "x"},
                           {"id": 3, "v": None}])
        rows = list(store.scan_rows())
        assert [r["v"] for r in rows] == [None, "x", None]

    def test_compression_reduces_footprint(self):
        compressed = store_with_rows(4096 * 2)
        compressed.flush()
        plain = ColumnStore(compressed.schema, compress=False)
        plain.append_rows(list(compressed.scan_rows()))
        plain.flush()
        assert compressed.compressed_footprint() < plain.compressed_footprint()

    def test_unknown_column_rejected(self):
        store = store_with_rows(4)
        with pytest.raises(Exception):
            list(store.scan_chunks(["zz"]))


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex("t", "c")
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 3)
        assert index.lookup("a") == {1, 2}
        assert index.lookup("zz") == set()

    def test_remove(self):
        index = HashIndex("t", "c")
        index.add("a", 1)
        index.remove("a", 1)
        assert index.lookup("a") == set()
        assert len(index) == 0


class TestOrderedIndex:
    def test_range_query(self):
        index = OrderedIndex("t", "c")
        for i in range(10):
            index.add(i * 10, f"k{i}")
        assert set(index.range(25, 55)) == {"k3", "k4", "k5"}
        assert set(index.range(30, 50, include_low=False,
                               include_high=False)) == {"k4"}

    def test_open_ranges(self):
        index = OrderedIndex("t", "c")
        for i in range(5):
            index.add(i, i)
        assert list(index.range(None, 2)) == [0, 1, 2]
        assert list(index.range(3, None)) == [3, 4]

    def test_duplicates_and_remove(self):
        index = OrderedIndex("t", "c")
        index.add(5, "a")
        index.add(5, "b")
        index.remove(5, "a")
        assert index.lookup(5) == {"b"}

    def test_nulls_skipped(self):
        index = OrderedIndex("t", "c")
        index.add(None, "a")
        assert len(index) == 0

    def test_min_max(self):
        index = OrderedIndex("t", "c")
        assert index.min_value() is None
        index.add(3, "a")
        index.add(1, "b")
        assert (index.min_value(), index.max_value()) == (1, 3)

    def test_factory(self):
        assert isinstance(make_index("hash", "t", "c"), HashIndex)
        assert isinstance(make_index("btree", "t", "c"), OrderedIndex)
        with pytest.raises(StorageError):
            make_index("lsm", "t", "c")


class TestTypes:
    def test_coerce_valid(self):
        assert coerce("12", DataType.INT) == 12
        assert coerce(3, DataType.DOUBLE) == 3.0
        assert coerce(1, DataType.BOOL) is True
        assert coerce(None, DataType.TEXT) is None

    def test_coerce_invalid(self):
        with pytest.raises(StorageError):
            coerce("abc", DataType.INT)
        with pytest.raises(StorageError):
            coerce(3.5, DataType.INT)
        with pytest.raises(StorageError):
            coerce(True, DataType.BIGINT)
        with pytest.raises(StorageError):
            coerce(12, DataType.TEXT)

    def test_type_of_literal(self):
        assert type_of_literal(True) is DataType.BOOL
        assert type_of_literal(1) is DataType.BIGINT
        assert type_of_literal(1.5) is DataType.DOUBLE
        assert type_of_literal("x") is DataType.TEXT
        with pytest.raises(StorageError):
            type_of_literal(object())
