"""Tests for the MVCC heap: visibility, version chains, conflicts, vacuum."""

import pytest

from repro.common.errors import DuplicateKeyError, SerializationConflict, StorageError
from repro.storage.heap import MvccHeap
from repro.txn.manager import LocalTransactionManager


class Env:
    """A heap wired to a local transaction manager, with tiny helpers."""

    def __init__(self):
        self.ltm = LocalTransactionManager("dn0")
        self.heap = MvccHeap("t")

    def begin(self):
        xid = self.ltm.begin()
        return xid, self.ltm.local_snapshot()

    def commit(self, xid):
        self.ltm.commit(xid)

    def abort(self, xid):
        self.ltm.abort(xid)

    def insert(self, key, values, xid, snap):
        self.heap.insert(key, values, xid, snap, self.ltm.clog)

    def update(self, key, values, xid, snap):
        self.heap.update(key, values, xid, snap, self.ltm.clog)

    def delete(self, key, xid, snap):
        self.heap.delete(key, xid, snap, self.ltm.clog)

    def read(self, key, snap, xid=0):
        return self.heap.read(key, snap, self.ltm.clog, xid)


@pytest.fixture
def env():
    return Env()


def committed_row(env, key, values):
    xid, snap = env.begin()
    env.insert(key, values, xid, snap)
    env.commit(xid)


class TestBasicVisibility:
    def test_committed_insert_visible_to_later_snapshot(self, env):
        committed_row(env, 1, {"v": 10})
        _, snap = env.begin()
        assert env.read(1, snap) == {"v": 10}

    def test_uncommitted_insert_invisible_to_others(self, env):
        xid, snap = env.begin()
        env.insert(1, {"v": 10}, xid, snap)
        other_xid, other_snap = env.begin()
        assert env.read(1, other_snap, other_xid) is None

    def test_own_uncommitted_insert_visible(self, env):
        xid, snap = env.begin()
        env.insert(1, {"v": 10}, xid, snap)
        assert env.read(1, snap, xid) == {"v": 10}

    def test_snapshot_taken_before_commit_never_sees_it(self, env):
        writer, wsnap = env.begin()
        reader, rsnap = env.begin()  # snapshot while writer active
        env.insert(1, {"v": 10}, writer, wsnap)
        env.commit(writer)
        assert env.read(1, rsnap, reader) is None

    def test_update_produces_new_visible_version(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        env.update(1, {"v": 2}, xid, snap)
        env.commit(xid)
        _, later = env.begin()
        assert env.read(1, later) == {"v": 2}

    def test_old_snapshot_reads_old_version_after_update(self, env):
        committed_row(env, 1, {"v": 1})
        reader, rsnap = env.begin()
        writer, wsnap = env.begin()
        env.update(1, {"v": 2}, writer, wsnap)
        env.commit(writer)
        assert env.read(1, rsnap, reader) == {"v": 1}

    def test_delete_hides_row(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        env.delete(1, xid, snap)
        env.commit(xid)
        _, later = env.begin()
        assert env.read(1, later) is None

    def test_scan_yields_only_visible(self, env):
        committed_row(env, 1, {"v": 1})
        committed_row(env, 2, {"v": 2})
        xid, snap = env.begin()
        env.delete(1, xid, snap)
        env.commit(xid)
        _, later = env.begin()
        keys = [k for k, _ in self_scan(env, later)]
        assert keys == [2]


def self_scan(env, snap, xid=0):
    return list(env.heap.scan(snap, env.ltm.clog, xid))


class TestConflicts:
    def test_duplicate_insert_rejected(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        with pytest.raises(DuplicateKeyError):
            env.insert(1, {"v": 2}, xid, snap)

    def test_concurrent_update_conflicts(self, env):
        committed_row(env, 1, {"v": 1})
        t1, s1 = env.begin()
        t2, s2 = env.begin()
        env.update(1, {"v": 2}, t1, s1)
        with pytest.raises(SerializationConflict):
            env.update(1, {"v": 3}, t2, s2)

    def test_update_after_invisible_commit_conflicts(self, env):
        # First-updater-wins: t2's snapshot predates t1's committed update.
        committed_row(env, 1, {"v": 1})
        t2, s2 = env.begin()
        t1, s1 = env.begin()
        env.update(1, {"v": 2}, t1, s1)
        env.commit(t1)
        with pytest.raises(SerializationConflict):
            env.update(1, {"v": 3}, t2, s2)

    def test_update_after_aborted_writer_succeeds(self, env):
        committed_row(env, 1, {"v": 1})
        t1, s1 = env.begin()
        env.update(1, {"v": 2}, t1, s1)
        env.heap.abort_key(1, t1)
        env.abort(t1)
        t2, s2 = env.begin()
        env.update(1, {"v": 3}, t2, s2)
        env.commit(t2)
        _, later = env.begin()
        assert env.read(1, later) == {"v": 3}

    def test_update_missing_key_raises(self, env):
        xid, snap = env.begin()
        with pytest.raises(StorageError):
            env.update(99, {"v": 1}, xid, snap)

    def test_own_double_update_allowed(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        env.update(1, {"v": 2}, xid, snap)
        env.update(1, {"v": 3}, xid, snap)
        env.commit(xid)
        _, later = env.begin()
        assert env.read(1, later) == {"v": 3}


class TestRollbackAndVacuum:
    def test_abort_key_removes_insert(self, env):
        xid, snap = env.begin()
        env.insert(1, {"v": 1}, xid, snap)
        touched = env.heap.abort_key(1, xid)
        env.abort(xid)
        assert touched == 1
        _, later = env.begin()
        assert env.read(1, later) is None
        assert len(env.heap) == 0

    def test_abort_key_restores_xmax(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        env.delete(1, xid, snap)
        env.heap.abort_key(1, xid)
        env.abort(xid)
        _, later = env.begin()
        assert env.read(1, later) == {"v": 1}

    def test_abort_writes_sweeps_everything(self, env):
        xid, snap = env.begin()
        env.insert(1, {"v": 1}, xid, snap)
        env.insert(2, {"v": 2}, xid, snap)
        assert env.heap.abort_writes(xid) == 2

    def test_vacuum_drops_dead_versions(self, env):
        committed_row(env, 1, {"v": 1})
        for v in (2, 3):
            xid, snap = env.begin()
            env.update(1, {"v": v}, xid, snap)
            env.commit(xid)
        assert len(env.heap.version_chain(1)) == 3
        removed = env.heap.vacuum(env.ltm.local_snapshot(), env.ltm.clog)
        assert removed == 2
        _, later = env.begin()
        assert env.read(1, later) == {"v": 3}

    def test_vacuum_respects_old_snapshot(self, env):
        committed_row(env, 1, {"v": 1})
        reader, rsnap = env.begin()  # holds the old version alive
        writer, wsnap = env.begin()
        env.update(1, {"v": 2}, writer, wsnap)
        env.commit(writer)
        removed = env.heap.vacuum(rsnap, env.ltm.clog)
        assert removed == 0
        assert env.read(1, rsnap, reader) == {"v": 1}

    def test_version_chain_records_history(self, env):
        committed_row(env, 1, {"v": 1})
        xid, snap = env.begin()
        env.update(1, {"v": 2}, xid, snap)
        env.commit(xid)
        chain = env.heap.version_chain(1)
        assert [v.values["v"] for v in chain] == [1, 2]
        assert chain[0].xmax == chain[1].xmin
