"""Tests for table schemas, distribution and routing."""

import pytest

from repro.common.errors import CatalogError, StorageError
from repro.storage.table import (
    Column,
    Distribution,
    TableSchema,
    rows_to_columns,
    shard_of_value,
)
from repro.storage.types import DataType


def make_schema(**kwargs):
    return TableSchema(
        "t",
        [Column("id", DataType.INT), Column("v", DataType.TEXT),
         Column("w", DataType.INT)],
        primary_key="id",
        **kwargs,
    )


class TestSchemaValidation:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT),
                              Column("a", DataType.INT)], "a")

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT)], "b")

    def test_unknown_distribution_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT)], "a",
                        distribution_column="zz")

    def test_distribution_defaults_to_primary_key(self):
        schema = make_schema()
        assert schema.distribution_column == "id"

    def test_bad_column_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("not a name", DataType.INT)


class TestCoerceRow:
    def test_types_coerced(self):
        schema = make_schema()
        row = schema.coerce_row({"id": 1.0, "v": "x", "w": 3})
        assert row == {"id": 1, "v": "x", "w": 3}
        assert isinstance(row["id"], int)

    def test_missing_nullable_becomes_none(self):
        schema = make_schema()
        assert schema.coerce_row({"id": 1})["v"] is None

    def test_null_primary_key_rejected(self):
        with pytest.raises(StorageError):
            make_schema().coerce_row({"v": "x"})

    def test_not_null_enforced(self):
        schema = TableSchema(
            "t", [Column("id", DataType.INT),
                  Column("v", DataType.TEXT, nullable=False)], "id")
        with pytest.raises(StorageError):
            schema.coerce_row({"id": 1})

    def test_unknown_columns_rejected(self):
        with pytest.raises(StorageError):
            make_schema().coerce_row({"id": 1, "zz": 2})


class TestRouting:
    def test_int_sharding_is_modulo(self):
        assert [shard_of_value(i, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_string_sharding_is_stable(self):
        assert shard_of_value("abc", 8) == shard_of_value("abc", 8)

    def test_shard_of_row(self):
        schema = make_schema(distribution_column="w")
        row = schema.coerce_row({"id": 1, "w": 5})
        assert schema.shard_of(row, 4) == 5 % 4

    def test_replicated_has_no_shard(self):
        schema = make_schema(distribution=Distribution.REPLICATION,
                             distribution_column=None)
        with pytest.raises(StorageError):
            schema.shard_of({"id": 1}, 4)

    def test_key_router(self):
        schema = TableSchema(
            "d", [Column("d_key", DataType.INT), Column("w", DataType.INT)],
            "d_key", distribution_column="w", key_router=lambda k: k // 10)
        assert schema.shard_of_key(57, 4) == 5 % 4

    def test_key_routing_without_router_requires_pk_distribution(self):
        schema = make_schema(distribution_column="w")
        with pytest.raises(StorageError):
            schema.shard_of_key(1, 4)


class TestRowsToColumns:
    def test_pivot(self):
        cols = rows_to_columns([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert cols == {"a": [1, 3], "b": [2, None]}
