"""Chaos: injected faults at WLM failpoints never leak slots or transactions."""

import pytest

from repro.cluster.mpp import MppCluster
from repro.faults import (
    ACT_CRASH_COORDINATOR,
    ACT_TIMEOUT,
    CoordinatorCrash,
    FaultInjector,
    FP_WLM_ADMIT,
    FP_WLM_SPILL,
    InjectedTimeout,
)
from repro.sql.engine import SqlEngine
from repro.wlm import ResourceGroup, WlmConfig


def _cluster(seed=7):
    config = WlmConfig(groups=[
        ResourceGroup("tight", slots=2, memory_per_query_bytes=512)])
    cluster = MppCluster(num_dns=2, wlm_config=config)
    injector = FaultInjector(seed=seed).bind(cluster)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int, v int)")
    values = ", ".join(f"({i}, {i % 97})" for i in range(300))
    engine.execute(f"insert into t values {values}")
    return cluster, engine, injector


class TestAdmitFailpoint:
    def test_coordinator_crash_at_admit_leaks_nothing(self):
        cluster, engine, injector = _cluster()
        events_before = len(cluster.wlm.events)
        injector.arm(FP_WLM_ADMIT, ACT_CRASH_COORDINATOR, times=1)
        with pytest.raises(CoordinatorCrash):
            engine.execute("select v from t", group="tight")
        # The crash fired before a ticket existed: no slot held, no queue
        # event, no open transaction.
        assert cluster.wlm.running_count("tight") == 0
        assert cluster.wlm.queued_count("tight") == 0
        assert len(cluster.wlm.events) == events_before
        assert cluster.obs.activity.open_count == 0
        result = engine.execute("select count(*) from t", group="tight")
        assert result.scalar() == 300

    def test_injected_timeout_at_admit_sheds_cleanly(self):
        cluster, engine, injector = _cluster()
        injector.arm(FP_WLM_ADMIT, ACT_TIMEOUT, times=1)
        with pytest.raises(InjectedTimeout):
            engine.execute("select v from t", group="tight")
        assert cluster.wlm.running_count("tight") == 0
        assert engine.execute("select count(*) from t",
                              group="tight").scalar() == 300

    def test_admit_fault_recorded_against_coordinator(self):
        cluster, engine, injector = _cluster()
        injector.arm(FP_WLM_ADMIT, ACT_TIMEOUT, times=1)
        with pytest.raises(InjectedTimeout):
            engine.execute("select v from t", group="tight")
        rows = injector.rows()
        assert len(rows) == 1
        _, failpoint, action, target, _, _ = rows[0]
        assert failpoint == FP_WLM_ADMIT
        assert action == ACT_TIMEOUT
        assert target == "coordinator"


class TestSpillFailpoint:
    def test_crash_mid_spill_releases_slot_and_aborts_txn(self):
        cluster, engine, injector = _cluster()
        injector.arm(FP_WLM_SPILL, ACT_TIMEOUT, times=1)
        sql = "select v, count(*) from t group by v"
        with pytest.raises(InjectedTimeout):
            engine.execute(sql, group="tight")
        assert cluster.wlm.running_count("tight") == 0
        assert cluster.obs.activity.open_count == 0
        failed = [e for e in cluster.wlm.events if e.event == "failed"]
        assert len(failed) == 1
        # Fault exhausted: the identical statement now spills and succeeds.
        governed = engine.execute(sql, group="tight")
        baseline = engine.execute(sql)
        assert sorted(governed.rows) == sorted(baseline.rows)
        assert governed.profile.spilled_bytes > 0

    def test_spill_fault_attributed_to_a_data_node(self):
        cluster, engine, injector = _cluster()
        injector.arm(FP_WLM_SPILL, ACT_TIMEOUT, times=1)
        with pytest.raises(InjectedTimeout):
            engine.execute("select v, count(*) from t group by v",
                           group="tight")
        _, failpoint, _, target, _, _ = injector.rows()[0]
        assert failpoint == FP_WLM_SPILL
        assert target.startswith("dn")

    def test_cancel_while_queued_under_faults_leaks_no_slot(self):
        cluster, _, injector = _cluster()
        injector.arm(FP_WLM_SPILL, ACT_TIMEOUT, times=-1)  # armed, unrelated
        gov = cluster.wlm
        holder = gov.submit(group="tight")
        second = gov.submit(group="tight")
        waiter = gov.submit(group="tight")      # both slots held -> queued
        assert waiter.queued
        assert gov.cancel(waiter, now_us=5.0) is True
        gov.release(holder, holder.admitted_us + 10.0)
        gov.release(second, second.admitted_us + 10.0)
        assert gov.running_count("tight") == 0
        assert gov.queued_count("tight") == 0
        next_up = gov.submit(group="tight")
        assert not next_up.queued


class TestChaosDeterminism:
    def test_same_seed_same_fault_history(self):
        def run(seed):
            cluster, engine, injector = _cluster(seed=seed)
            injector.arm(FP_WLM_SPILL, ACT_TIMEOUT, times=1,
                         probability=0.5)
            outcomes = []
            for _ in range(4):
                try:
                    engine.execute("select v, count(*) from t group by v",
                                   group="tight")
                    outcomes.append("ok")
                except InjectedTimeout:
                    outcomes.append("fault")
            return outcomes, injector.rows()

        assert run(3) == run(3)
