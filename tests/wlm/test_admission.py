"""Admission control: determinism, priority ordering, shedding, timeouts."""

import pytest

from repro.common.errors import AdmissionRejected, ConfigError
from repro.wlm import (
    Priority,
    ResourceGroup,
    WlmConfig,
    WlmGovernor,
)
from repro.wlm.driver import QueryRequest, replay


def _governor(**group_kwargs):
    group = ResourceGroup("g", **group_kwargs)
    return WlmGovernor(config=WlmConfig(groups=[group]))


class TestGroups:
    def test_default_group_always_exists(self):
        config = WlmConfig()
        assert config.get(None).name == "default"
        assert "default" in config.names()

    def test_invalid_group_config_rejected(self):
        with pytest.raises(ConfigError):
            ResourceGroup("bad", slots=0)
        with pytest.raises(ConfigError):
            ResourceGroup("bad", memory_per_query_bytes=0)
        with pytest.raises(ConfigError):
            WlmConfig().get("no-such-group")

    def test_duplicate_group_rejected(self):
        config = WlmConfig(groups=[ResourceGroup("g")])
        with pytest.raises(ConfigError):
            config.add(ResourceGroup("g"))


class TestAdmission:
    def test_sequential_submissions_never_wait(self):
        gov = _governor(slots=2)
        for i in range(10):
            ticket = gov.submit(group="g")
            assert not ticket.queued
            assert ticket.wait_us == 0.0
            gov.release(ticket, ticket.admitted_us + 100.0)
        assert gov.running_count("g") == 0

    def test_burst_past_slots_fast_forwards_admission(self):
        # Three arrivals at t=0 into one slot of 100us queries: admissions
        # serialize at 0, 100, 200 — the queue wait is real sim time.
        gov = _governor(slots=1)
        waits = []
        for _ in range(3):
            ticket = gov.submit(group="g", now_us=0.0)
            gov.release(ticket, ticket.admitted_us + 100.0)
            waits.append(ticket.wait_us)
        assert waits == [0.0, 100.0, 200.0]

    def test_queue_depth_cap_sheds_with_typed_error(self):
        gov = _governor(slots=1, queue_limit=2)
        for _ in range(3):   # 1 running (fast-forwarded) + 2 "ahead"
            ticket = gov.submit(group="g", now_us=0.0)
            gov.release(ticket, ticket.admitted_us + 1000.0)
        with pytest.raises(AdmissionRejected) as err:
            gov.submit(group="g", now_us=0.0)
        assert err.value.group == "g"
        rejected = [e for e in gov.events if e.event == "rejected"]
        assert len(rejected) == 1

    def test_priority_inversion_high_admitted_before_earlier_low(self):
        gov = _governor(slots=1)
        runner = gov.submit(group="g", now_us=0.0)
        # Occupied with an unknown-end runner: later arrivals park queued.
        low = gov.submit(group="g", now_us=1.0, priority=Priority.LOW)
        high = gov.submit(group="g", now_us=2.0, priority=Priority.HIGH)
        assert low.queued and high.queued
        promoted = gov.release(runner, 50.0)
        assert promoted == [high]
        assert high.admitted_us == 50.0
        assert low.queued    # still waiting behind the high-priority query

    def test_timeout_cancellation_releases_slot_to_queue_head(self):
        gov = _governor(slots=1, timeout_us=10.0)
        runner = gov.submit(group="g", now_us=0.0)
        waiter = gov.submit(group="g", now_us=1.0)
        assert waiter.queued
        promoted = gov.finish_cancelled(runner, 25.0, kind="timeout")
        assert promoted == [waiter]
        assert not waiter.queued and waiter.admitted_us == 25.0
        kinds = [e.event for e in gov.events if e.query_id == runner.query_id]
        assert "timeout" in kinds

    def test_cancel_queued_ticket_removes_it(self):
        gov = _governor(slots=1)
        runner = gov.submit(group="g", now_us=0.0)
        waiter = gov.submit(group="g", now_us=1.0)
        assert gov.cancel(waiter, now_us=5.0) is True
        assert gov.queued_count("g") == 0
        # The freed queue spot does not corrupt the slot pool.
        assert gov.release(runner, 10.0) == []
        next_up = gov.submit(group="g", now_us=10.0)
        assert not next_up.queued

    def test_cancel_running_is_cooperative(self):
        gov = _governor(slots=1)
        runner = gov.submit(group="g", now_us=0.0)
        assert gov.cancel(runner, reason="user request") is False
        assert runner.cancel_requested == "user request"

    def test_set_slots_growth_promotes_waiters(self):
        gov = _governor(slots=1)
        gov.submit(group="g", now_us=0.0)
        waiter = gov.submit(group="g", now_us=1.0)
        promoted = gov.set_slots("g", 2, now_us=5.0)
        assert promoted == [waiter]
        assert gov.running_count("g") == 2


class TestDeterminism:
    SCHEDULE = [
        QueryRequest(arrival_us=i * 50.0, exec_us=400.0 if i % 3 else 2000.0,
                     group="g",
                     priority=Priority.HIGH if i % 5 == 0 else Priority.NORMAL)
        for i in range(40)
    ]

    def _run(self):
        gov = _governor(slots=2, queue_limit=8)
        outcomes = replay(gov, self.SCHEDULE, parallelism=4)
        return gov.queue_rows(), outcomes

    def test_same_schedule_same_config_identical_queue_history(self):
        rows_a, _ = self._run()
        rows_b, _ = self._run()
        assert rows_a == rows_b
        assert len(rows_a) > len(self.SCHEDULE)   # queued + admitted + done

    def test_replay_loses_no_admitted_query(self):
        _, outcomes = self._run()
        for outcome in outcomes:
            assert outcome.rejected or outcome.finished_us is not None

    def test_reset_history_then_rerun_is_identical(self):
        gov = _governor(slots=2, queue_limit=8)
        replay(gov, self.SCHEDULE, parallelism=4)
        first = gov.queue_rows()
        gov.reset_history()
        assert gov.queue_rows() == []
        replay(gov, self.SCHEDULE, parallelism=4)
        assert gov.queue_rows() == first
