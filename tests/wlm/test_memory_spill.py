"""Memory budgets and spill-to-disk accounting."""

import pytest

from repro.cluster.mpp import MppCluster
from repro.sql.engine import SqlEngine
from repro.wlm import (
    MemoryBudget,
    ResourceGroup,
    SPILL_BYTE_US,
    WlmConfig,
)


class TestMemoryBudget:
    def test_grow_spills_when_budget_overflows(self):
        spills = []

        class Ctx:
            def note_spill(self, op, nbytes):
                spills.append(nbytes)

        from repro.wlm.memory import OperatorMemory

        budget = MemoryBudget(100)
        mem = OperatorMemory(Ctx(), object(), budget)
        mem.grow(60)
        assert spills == [] and budget.reserved_bytes == 60
        mem.grow(60)      # 120 > 100: spills until the budget fits
        assert spills and budget.reserved_bytes <= 100
        assert budget.peak_bytes == 120

    def test_finish_releases_residency(self):
        class Ctx:
            def note_spill(self, op, nbytes):
                pass

        from repro.wlm.memory import OperatorMemory

        budget = MemoryBudget(1000)
        mem = OperatorMemory(Ctx(), object(), budget)
        mem.grow(400)
        mem.finish()
        assert budget.reserved_bytes == 0
        assert mem.held_bytes == 0


def _spill_engine(memory_bytes=512):
    config = WlmConfig(groups=[
        ResourceGroup("tight", slots=4, memory_per_query_bytes=memory_bytes)])
    cluster = MppCluster(num_dns=2, wlm_config=config)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int, v int)")
    values = ", ".join(f"({i}, {i % 97})" for i in range(300))
    engine.execute(f"insert into t values {values}")
    return cluster, engine


class TestSpillThroughEngine:
    def test_hash_aggregate_over_budget_completes_via_spill(self):
        cluster, engine = _spill_engine()
        sql = "select v, count(*) from t group by v"
        governed = engine.execute(sql, group="tight")
        baseline = engine.execute(sql)     # default group: 64MiB, no spill
        assert sorted(governed.rows) == sorted(baseline.rows)
        assert governed.profile.spilled_bytes > 0
        assert baseline.profile.spilled_bytes == 0

    def test_spill_charges_wait_and_profile_time(self):
        cluster, engine = _spill_engine()
        result = engine.execute("select v, count(*) from t group by v",
                                group="tight")
        spilled = result.profile.spilled_bytes
        stats = cluster.obs.waits.stats("wlm_spill")
        assert stats.count > 0
        assert stats.total_us == pytest.approx(spilled * SPILL_BYTE_US)
        # The wait histogram mirrors the recorder.
        assert cluster.obs.metrics.value("wait.wlm_spill_us") == stats.count

    def test_spilled_bytes_surface_in_explain_analyze(self):
        _, engine = _spill_engine()
        result = engine.execute(
            "explain analyze select v, count(*) from t group by v",
            group="tight")
        assert "spilled_bytes" in result.columns
        idx = result.columns.index("spilled_bytes")
        assert sum(row[idx] for row in result.rows) > 0

    def test_fragmented_spill_charged_on_data_nodes(self):
        cluster, engine = _spill_engine()
        engine.execute("select v, count(*) from t group by v", group="tight")
        # Per-DN partial aggregates overflow their partitions: the wait is
        # attributed to dn sessions, not the coordinator.
        sessions = set(cluster.obs.waits.event_sessions("wlm_spill"))
        assert sessions and all(str(s).startswith("dn") for s in sessions)

    def test_sort_and_join_account_memory(self):
        cluster, engine = _spill_engine(memory_bytes=256)
        ordered = engine.execute("select v from t order by v", group="tight")
        assert ordered.rows == sorted(ordered.rows)
        assert ordered.profile.spilled_bytes > 0
        joined = engine.execute(
            "select a.id from t a join t b on a.v = b.v where a.id < 5",
            group="tight")
        assert joined.rowcount > 0
        assert joined.profile.spilled_bytes > 0

    def test_wlm_groups_view_accumulates_spill(self):
        _, engine = _spill_engine()
        engine.execute("select v, count(*) from t group by v", group="tight")
        rows = engine.execute(
            "select group_name, spills, spilled_bytes from sys.wlm_groups"
        ).as_dicts()
        by_name = {r["group_name"]: r for r in rows}
        assert by_name["tight"]["spilled_bytes"] > 0
        assert by_name["tight"]["spills"] > 0
        assert by_name["default"]["spilled_bytes"] == 0
