"""Engine-level workload management: queue time, views, enabled/disabled parity."""

import pytest

from repro.cluster.mpp import MppCluster
from repro.common.errors import AdmissionRejected
from repro.sql.engine import SqlEngine
from repro.wlm import Priority, ResourceGroup, WlmConfig


def _engine(wlm_enabled=True, wlm_config=None, num_dns=2):
    cluster = MppCluster(num_dns=num_dns, wlm_enabled=wlm_enabled,
                         wlm_config=wlm_config)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int, v int)")
    engine.execute(
        "insert into t values (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)")
    return cluster, engine


class TestQueueTime:
    def test_sequential_queries_have_zero_queue_time(self):
        _, engine = _engine()
        result = engine.execute("select v from t")
        assert result.profile.queue_time_us == 0.0

    def test_burst_records_queue_time_on_profile(self):
        config = WlmConfig(groups=[ResourceGroup("narrow", slots=1)])
        cluster, engine = _engine(wlm_config=config)
        first = engine.execute("select v from t", group="narrow",
                               arrival_us=0.0)
        second = engine.execute("select v from t", group="narrow",
                                arrival_us=0.0)
        assert first.profile.queue_time_us == 0.0
        assert second.profile.queue_time_us > 0.0
        stats = cluster.obs.waits.stats("wlm_queue")
        assert stats.count == 1
        assert stats.total_us == second.profile.queue_time_us

    def test_queue_time_reaches_slow_query_log(self):
        config = WlmConfig(groups=[ResourceGroup("narrow", slots=1)])
        cluster, engine = _engine(wlm_config=config)
        cluster.obs.slowlog.threshold_us = 0.0   # retain everything
        engine.execute("select v from t", group="narrow", arrival_us=0.0)
        engine.execute("select v from t", group="narrow", arrival_us=0.0)
        entries = cluster.obs.slowlog.entries()
        selects = [e for e in entries if e.sql.startswith("select v")]
        assert len(selects) == 2
        assert selects[0].queue_us == 0.0
        assert selects[1].queue_us > 0.0
        # The threshold judged execution time, not execution + queue.
        assert selects[1].elapsed_us == pytest.approx(
            selects[0].elapsed_us)
        rows = engine.execute(
            "select queue_us from sys.slow_queries").column("queue_us")
        assert rows == [e.queue_us for e in entries]


class TestGroupRouting:
    def test_unknown_group_is_a_config_error(self):
        from repro.common.errors import ConfigError
        _, engine = _engine()
        with pytest.raises(ConfigError):
            engine.execute("select v from t", group="no-such-group")

    def test_priority_override_lands_in_queue_history(self):
        cluster, engine = _engine()
        engine.execute("select v from t", priority=Priority.HIGH)
        admitted = [e for e in cluster.wlm.events if e.event == "admitted"]
        assert admitted[-1].priority == "HIGH"

    def test_engine_sheds_when_external_driver_holds_all_slots(self):
        config = WlmConfig(groups=[ResourceGroup("narrow", slots=1)])
        cluster, engine = _engine(wlm_config=config)
        holder = cluster.wlm.submit(group="narrow")   # never released: the
        with pytest.raises(AdmissionRejected):        # engine cannot wait on
            engine.execute("select v from t", group="narrow")  # foreign slots
        assert cluster.wlm.queued_count("narrow") == 0
        cluster.wlm.release(holder, holder.admitted_us + 1.0)


class TestSystemViews:
    def test_wlm_views_queryable_via_sql(self):
        _, engine = _engine()
        engine.execute("select v from t")
        groups = engine.execute("select * from sys.wlm_groups")
        assert "default" in groups.column("group_name")
        queue = engine.execute("select * from sys.wlm_queue")
        assert queue.rowcount > 0
        events = queue.column("event")
        assert set(events) <= {"queued", "admitted", "done", "failed",
                               "rejected", "timeout", "cancelled"}

    def test_wlm_views_empty_when_disabled(self):
        _, engine = _engine(wlm_enabled=False)
        assert engine.execute("select * from sys.wlm_groups").rowcount == 0
        assert engine.execute("select * from sys.wlm_queue").rowcount == 0


class TestDisabledParity:
    """``wlm_enabled=False`` replays the ungoverned path telemetry-identical."""

    WORKLOAD = [
        "select v from t where v > 10",
        "select v, count(*) from t group by v",
        "explain analyze select v from t order by v desc",
        "update t set v = v + 1 where id = 3",
        "select sum(v) from t",
    ]

    def _run(self, wlm_enabled):
        cluster, engine = _engine(wlm_enabled=wlm_enabled)
        cluster.obs.slowlog.threshold_us = 0.0
        results = [engine.execute(sql) for sql in self.WORKLOAD]
        return cluster, results

    def test_disabled_cluster_matches_governed_default_group(self):
        governed, governed_results = self._run(wlm_enabled=True)
        bare, bare_results = self._run(wlm_enabled=False)
        for gov, plain in zip(governed_results, bare_results):
            assert gov.rows == plain.rows
            if gov.profile is not None:
                assert gov.profile.rows_table() == plain.profile.rows_table()
                assert (gov.profile.elapsed_time_us
                        == plain.profile.elapsed_time_us)
        assert governed.obs.waits.rows() == bare.obs.waits.rows()
        assert ([e.as_row() for e in governed.obs.slowlog.entries()]
                == [e.as_row() for e in bare.obs.slowlog.entries()])
