"""Query timeout and cooperative cancellation through the engine."""

import pytest

from repro.cluster.mpp import MppCluster
from repro.common.errors import QueryCancelled, QueryTimeout
from repro.sql.engine import SqlEngine
from repro.wlm import ResourceGroup, WlmConfig


def _engine(timeout_us=10.0):
    config = WlmConfig(groups=[
        ResourceGroup("bounded", slots=2, timeout_us=timeout_us)])
    cluster = MppCluster(num_dns=2, wlm_config=config)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int, v int)")
    values = ", ".join(f"({i}, {i % 7})" for i in range(300))
    engine.execute(f"insert into t values {values}")
    return cluster, engine


class TestStatementTimeout:
    def test_long_query_times_out(self):
        _, engine = _engine()
        with pytest.raises(QueryTimeout):
            engine.execute("select v, count(*) from t group by v",
                           group="bounded")

    def test_timeout_releases_slot_and_aborts_txn(self):
        cluster, engine = _engine()
        with pytest.raises(QueryTimeout):
            engine.execute("select v from t", group="bounded")
        # Slot back in the pool, no transaction left open.
        assert cluster.wlm.running_count("bounded") == 0
        assert cluster.obs.activity.open_count == 0
        assert cluster.obs.metrics.value("wlm.timeouts") == 1.0
        # The group is immediately usable again: a query small enough to
        # finish inside the timeout admits without queueing and succeeds.
        engine.execute("create table tiny (id int)")
        engine.execute("insert into tiny values (1), (2), (3)")
        result = engine.execute("select count(*) from tiny", group="bounded")
        assert result.scalar() == 3

    def test_timeout_raises_wlm_alert(self):
        cluster, engine = _engine()
        with pytest.raises(QueryTimeout):
            engine.execute("select v from t", group="bounded")
        wlm_alerts = [a for a in cluster.obs.alerts.alerts()
                      if a.source == "wlm"]
        assert any("timeout" in a.message for a in wlm_alerts)
        assert all(a.severity == "warning" for a in wlm_alerts)

    def test_timeout_event_in_queue_history(self):
        cluster, engine = _engine()
        with pytest.raises(QueryTimeout):
            engine.execute("select v from t", group="bounded")
        events = [e.event for e in cluster.wlm.events
                  if e.group == "bounded"]
        assert events == ["admitted", "timeout"]

    def test_generous_timeout_does_not_fire(self):
        _, engine = _engine(timeout_us=10_000_000.0)
        result = engine.execute("select v, count(*) from t group by v",
                                group="bounded")
        assert result.rowcount == 7


class TestCooperativeCancel:
    def test_cancel_request_raises_at_next_checkpoint(self):
        cluster, _ = _engine()
        ticket = cluster.wlm.submit(group="bounded")
        ctx = cluster.wlm.context(ticket)
        cluster.wlm.cancel(ticket, reason="user request")
        with pytest.raises(QueryCancelled) as err:
            ctx.tick(object())
        assert not isinstance(err.value, QueryTimeout)
        assert err.value.query_id == ticket.query_id
        cluster.wlm.finish_cancelled(ticket, 1.0, kind="cancelled")
        assert cluster.wlm.running_count("bounded") == 0
        assert cluster.obs.metrics.value("wlm.cancelled") == 1.0

    def test_untimed_group_never_times_out_from_progress(self):
        cluster, _ = _engine()
        ticket = cluster.wlm.submit(group="default")
        ctx = cluster.wlm.context(ticket)
        for _ in range(10_000):
            ctx.tick(object())
        assert ctx.progress_us > 0
        cluster.wlm.release(ticket, ticket.admitted_us + ctx.progress_us)
