"""Integration: anomaly detection -> automatic failover -> service resumes.

Closes the self-healing loop end to end: a data node stops heartbeating,
the anomaly manager's heartbeat detector fires, the healing hook promotes
the standby, and committed data plus ongoing traffic survive.
"""

import pytest

from repro.autonomous.adbms import AutonomousManager
from repro.cluster import MppCluster
from repro.cluster.ha import HaManager
from repro.storage import Column, DataType, TableSchema


def test_heartbeat_loss_triggers_real_promotion():
    cluster = MppCluster(num_dns=2)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    ha = HaManager(cluster)
    manager = AutonomousManager(cluster, ha=ha)
    session = cluster.session()
    seed = session.begin(multi_shard=True)
    for k in range(8):
        seed.insert("t", {"k": k, "v": k})
    seed.commit()
    failed_node = cluster.dns[1]

    # dn0 keeps heartbeating; dn1 goes silent after t=0.
    manager.info.record("heartbeat.dn1", 0.0, 1.0)
    for t in (0.0, 2_000_000.0, 6_000_000.0):
        manager.info.record("heartbeat.dn0", t, 1.0)
    report = manager.tick(6_000_000.0)

    assert any("failover dn1" in a for a in report.healing_actions)
    assert ha.failovers and ha.failovers[0].node_id == "dn1"
    assert cluster.dns[1] is not failed_node          # actually replaced
    assert "dn1" in manager.changes.online_nodes()    # back online

    # Committed data survived and traffic continues on the promoted node.
    reader = session.begin(multi_shard=True)
    assert {k: reader.read("t", k)["v"] for k in range(8)} == \
        {k: k for k in range(8)}
    reader.commit()
    session.run_transaction(lambda t: t.update("t", 1, {"v": 99}))
    check = session.begin(multi_shard=True)
    assert check.read("t", 1)["v"] == 99
    check.commit()


def test_without_ha_manager_failover_is_logged_only():
    cluster = MppCluster(num_dns=2)
    manager = AutonomousManager(cluster)
    original = cluster.dns[1]
    manager.info.record("heartbeat.dn1", 0.0, 1.0)
    manager.info.record("heartbeat.dn0", 6_000_000.0, 1.0)
    report = manager.tick(6_000_000.0)
    assert any("failover dn1" in a for a in report.healing_actions)
    assert cluster.dns[1] is original                 # no HA: node unchanged
    assert "dn1" not in manager.changes.online_nodes()
