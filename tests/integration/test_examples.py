"""Integration tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "htap_bank", "multimodel_city",
            "gmdb_session_store", "edge_photo_sync"} <= names
