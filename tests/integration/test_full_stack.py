"""Cross-subsystem integration tests.

These exercise flows that span multiple packages at once: SQL over live
OLTP traffic, the autonomous manager supervising a working cluster, the
learning loop changing join orders, and a GMDB + collab hybrid.
"""

import pytest

from repro.autonomous.adbms import AutonomousManager
from repro.autonomous.workload import Sla
from repro.cluster import MppCluster, TxnMode
from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform, collection
from repro.common.rng import make_rng
from repro.gmdb.cluster import GmdbCluster
from repro.sql.engine import SqlEngine
from repro.workloads.mme import MmeSessionGenerator, mme_schema
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


class TestHtapFlow:
    """OLAP SQL over a cluster that OLTP transactions keep mutating."""

    def test_analytics_track_transactional_writes(self):
        cluster = MppCluster(num_dns=2)
        engine = SqlEngine(cluster)
        engine.execute("create table account "
                       "(id int primary key, balance int)")
        engine.execute("insert into account values " + ",".join(
            f"({i}, 100)" for i in range(40)))
        session = cluster.session()
        rng = make_rng(8)
        for _ in range(60):
            src, dst = rng.sample(range(40), 2)

            def transfer(txn):
                a = txn.read("account", src)
                b = txn.read("account", dst)
                txn.update("account", src, {"balance": a["balance"] - 5})
                txn.update("account", dst, {"balance": b["balance"] + 5})

            session.run_transaction(transfer, multi_shard=False)
        total = engine.execute("select sum(balance) from account").scalar()
        assert total == 40 * 100

    def test_sql_over_tpcc_state(self):
        cluster = MppCluster(num_dns=2)
        load_tpcc(cluster, num_warehouses=4)
        engine = SqlEngine(cluster)
        engine.execute("analyze")
        rows = engine.query(
            "select w_id, count(*) districts from district "
            "group by w_id order by w_id")
        assert len(rows) == 4
        assert all(r["districts"] == 10 for r in rows)
        joined = engine.execute(
            "select count(*) from customer c join district d "
            "on c.w_id = d.w_id and c.d_id = d.d_id").scalar()
        assert joined == 4 * 10 * 30


class TestAutonomousSupervision:
    def test_manager_observes_real_traffic(self):
        cluster = MppCluster(num_dns=2)
        load_tpcc(cluster, num_warehouses=4)
        manager = AutonomousManager(cluster, sla=Sla("x", p95_latency_us=1e9))
        workload = TpccLiteWorkload(4, multi_shard_fraction=0.1, seed=2)
        stream = workload.stream(home_warehouse=0, seed_offset=0)
        session = cluster.session()
        for tick in range(5):
            for _ in range(20):
                spec = next(stream)
                txn = session.begin(multi_shard=spec.multi_shard)
                spec.body(txn)
                txn.commit()
            manager.collect(tick * 1_000_000.0)
            report = manager.tick(tick * 1_000_000.0)
            assert not report.anomalies
        commits = manager.info.values("commits_delta")
        assert sum(commits) == 100
        assert manager.info.latest("gtm_requests") == \
            cluster.gtm.stats.total_requests


class TestLearningChangesPlans:
    def test_feedback_flips_join_order(self):
        """A badly mis-estimated side should move after capture."""
        cluster = MppCluster(num_dns=1)
        engine = SqlEngine(cluster)
        engine.execute("create table a (id int primary key, k int)")
        engine.execute("create table b (id int primary key, k int)")
        # a is big but filters to 2 rows (correlated, stats mislead);
        # b is mid-size.  Without feedback the optimizer believes the
        # filtered a is bigger than it is.
        engine.execute("insert into a values " + ",".join(
            f"({i}, {0 if i > 1 else 1})" for i in range(400)))
        engine.execute("insert into b values " + ",".join(
            f"({i}, {i % 7})" for i in range(60)))
        query = ("select count(*) from a, b "
                 "where a.id = b.id and a.k = 1")
        first = engine.execute(query)
        second = engine.execute(query)
        assert first.scalar() == second.scalar() == 2
        # After learning, the scan estimate of "a where k=1" is exact.
        line = [l for l in second.plan_text.splitlines()
                if "SeqScan a" in l][0]
        assert "est=2" in line, line


class TestTelecomPlusEdge:
    def test_session_data_flows_to_edge_dashboard(self):
        """GMDB session counters replicated to an ops dashboard device."""
        gmdb = GmdbCluster(num_dns=1)
        gmdb.register_schema(3, mme_schema(3))
        client = gmdb.connect("mme", 3)
        gen = MmeSessionGenerator(3)
        connected = 0
        for i in range(20):
            session = gen.session(i)
            client.create(session["imsi"], session)
            if session["state"] == "CONNECTED":
                connected += 1

        platform = CollabPlatform()
        core = platform.add_node("core-site", NodeKind.EDGE)
        dashboard = platform.add_node("noc-laptop", NodeKind.DEVICE)
        metrics = collection(core, "metrics")
        metrics.put("sessions_total", gmdb.object_count())
        metrics.put("sessions_connected", connected)
        platform.converge()
        assert collection(dashboard, "metrics").get("sessions_total") == 20
        assert collection(dashboard, "metrics").get(
            "sessions_connected") == connected
