"""Tests for MVCC snapshots and merged snapshots."""

import pytest

from repro.txn.snapshot import MergedSnapshot, Snapshot
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.xid import INVALID_XID


def _clog(**statuses) -> StatusLog:
    """Build a status log from xid=status pairs like x5='committed'."""
    log = StatusLog()
    for name, status in statuses.items():
        xid = int(name[1:])
        log.begin(xid)
        if status == "committed":
            log.set(xid, TxnStatus.COMMITTED)
        elif status == "aborted":
            log.set(xid, TxnStatus.ABORTED)
        elif status == "prepared":
            log.set(xid, TxnStatus.PREPARED)
    return log


class TestSnapshotConstruction:
    def test_active_must_be_in_range(self):
        with pytest.raises(ValueError):
            Snapshot(xmin=5, xmax=10, active=frozenset({3}))
        with pytest.raises(ValueError):
            Snapshot(xmin=5, xmax=10, active=frozenset({10}))

    def test_xmin_le_xmax(self):
        with pytest.raises(ValueError):
            Snapshot(xmin=10, xmax=5)

    def test_empty_snapshot_ok(self):
        snap = Snapshot(xmin=7, xmax=7)
        assert not snap.active


class TestVisibility:
    def test_committed_past_xid_visible(self):
        snap = Snapshot(xmin=10, xmax=10)
        assert snap.xid_visible(5, _clog(x5="committed"))

    def test_aborted_xid_invisible(self):
        snap = Snapshot(xmin=10, xmax=10)
        assert not snap.xid_visible(5, _clog(x5="aborted"))

    def test_active_xid_invisible_even_if_now_committed(self):
        # Committed after the snapshot was taken: still invisible.
        snap = Snapshot(xmin=5, xmax=10, active=frozenset({5}))
        assert not snap.xid_visible(5, _clog(x5="committed"))

    def test_future_xid_invisible(self):
        snap = Snapshot(xmin=5, xmax=10)
        assert not snap.xid_visible(15, _clog(x15="committed"))

    def test_own_writes_always_visible(self):
        snap = Snapshot(xmin=5, xmax=10, active=frozenset({7}))
        assert snap.xid_visible(7, _clog(x7="in_progress"), own_xid=7)

    def test_invalid_xid_invisible(self):
        snap = Snapshot(xmin=5, xmax=10)
        assert not snap.xid_visible(INVALID_XID, _clog())

    def test_prepared_xid_invisible(self):
        snap = Snapshot(xmin=10, xmax=10)
        assert not snap.xid_visible(5, _clog(x5="prepared"))


class TestMergedSnapshot:
    def test_forced_active_hides_committed(self):
        # xid 5 committed locally, but DOWNGRADE re-hides it.
        clog = _clog(x5="committed")
        merged = MergedSnapshot(xmin=10, xmax=10, forced_active=frozenset({5}))
        assert not merged.xid_visible(5, clog)
        assert merged.sees_as_running(5)

    def test_forced_committed_reveals_prepared(self):
        # xid 5 only prepared locally, but UPGRADE reveals it.
        clog = _clog(x5="prepared")
        merged = MergedSnapshot(
            xmin=5, xmax=10, active=frozenset({5}), forced_committed=frozenset({5})
        )
        assert merged.xid_visible(5, clog)
        assert not merged.sees_as_running(5)

    def test_overlapping_forced_sets_rejected(self):
        with pytest.raises(ValueError):
            MergedSnapshot(
                xmin=0, xmax=10,
                forced_active=frozenset({5}),
                forced_committed=frozenset({5}),
            )

    def test_unforced_xids_fall_back_to_base_rules(self):
        clog = _clog(x5="committed", x6="aborted")
        merged = MergedSnapshot(xmin=10, xmax=10, forced_active=frozenset({8}))
        assert merged.xid_visible(5, clog)
        assert not merged.xid_visible(6, clog)

    def test_own_xid_beats_forced_active(self):
        clog = _clog(x5="in_progress")
        merged = MergedSnapshot(xmin=5, xmax=10, active=frozenset({5}))
        assert merged.xid_visible(5, clog, own_xid=5)
