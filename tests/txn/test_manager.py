"""Tests for XID allocation, status log and the local transaction manager."""

import pytest

from repro.common.errors import InvalidTransactionState
from repro.txn.manager import LocalTransactionManager
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.xid import FIRST_XID, XidAllocator


class TestXidAllocator:
    def test_ascending(self):
        alloc = XidAllocator()
        xids = [alloc.allocate() for _ in range(5)]
        assert xids == sorted(xids)
        assert len(set(xids)) == 5

    def test_next_xid_is_upper_bound(self):
        alloc = XidAllocator()
        xid = alloc.allocate()
        assert alloc.next_xid == xid + 1

    def test_reserved_range_protected(self):
        with pytest.raises(ValueError):
            XidAllocator(start=FIRST_XID - 1)


class TestStatusLog:
    def test_lifecycle(self):
        log = StatusLog()
        log.begin(10)
        assert log.get(10) is TxnStatus.IN_PROGRESS
        log.set(10, TxnStatus.PREPARED)
        log.set(10, TxnStatus.COMMITTED)
        assert log.is_committed(10)

    def test_double_begin_rejected(self):
        log = StatusLog()
        log.begin(10)
        with pytest.raises(InvalidTransactionState):
            log.begin(10)

    def test_committed_is_final(self):
        log = StatusLog()
        log.begin(10)
        log.set(10, TxnStatus.COMMITTED)
        with pytest.raises(InvalidTransactionState):
            log.set(10, TxnStatus.ABORTED)

    def test_unknown_xid_raises(self):
        with pytest.raises(InvalidTransactionState):
            StatusLog().get(99)

    def test_in_doubt_states(self):
        log = StatusLog()
        log.begin(10)
        assert log.is_in_doubt(10)
        log.set(10, TxnStatus.PREPARED)
        assert log.is_in_doubt(10)
        log.set(10, TxnStatus.COMMITTED)
        assert not log.is_in_doubt(10)

    def test_forget_refuses_in_doubt(self):
        log = StatusLog()
        log.begin(10)
        with pytest.raises(InvalidTransactionState):
            log.forget(10)
        log.set(10, TxnStatus.ABORTED)
        log.forget(10)
        assert not log.knows(10)


class TestLocalTransactionManager:
    def test_begin_registers_gxid_mapping(self):
        ltm = LocalTransactionManager("dn0")
        lxid = ltm.begin(gxid=500)
        assert ltm.xid_map[500] == lxid
        assert ltm.gxid_for(lxid) == 500

    def test_duplicate_gxid_mapping_rejected(self):
        ltm = LocalTransactionManager("dn0")
        ltm.begin(gxid=500)
        with pytest.raises(InvalidTransactionState):
            ltm.begin(gxid=500)

    def test_commit_appends_lco_in_order(self):
        ltm = LocalTransactionManager("dn0")
        a = ltm.begin()
        b = ltm.begin(gxid=9)
        ltm.record_write(a, "t", 1)
        ltm.record_write(b, "t", 2)
        ltm.commit(b)
        ltm.commit(a)
        assert [e.local_xid for e in ltm.lco] == [b, a]
        assert [e.gxid for e in ltm.lco] == [9, None]
        assert ltm.lco[0].seqno < ltm.lco[1].seqno

    def test_abort_clears_mapping(self):
        ltm = LocalTransactionManager("dn0")
        lxid = ltm.begin(gxid=77)
        ltm.abort(lxid)
        assert 77 not in ltm.xid_map
        assert ltm.active_count == 0

    def test_local_snapshot_includes_prepared(self):
        ltm = LocalTransactionManager("dn0")
        a = ltm.begin()
        ltm.prepare(a)
        snap = ltm.local_snapshot()
        assert a in snap.active
        assert ltm.prepared_xids() == [a]

    def test_local_snapshot_excludes_finished(self):
        ltm = LocalTransactionManager("dn0")
        a = ltm.begin()
        b = ltm.begin()
        ltm.commit(a)
        snap = ltm.local_snapshot()
        assert a not in snap.active and b in snap.active
        assert snap.xmin == b

    def test_record_write_requires_active(self):
        ltm = LocalTransactionManager("dn0")
        a = ltm.begin()
        ltm.commit(a)
        with pytest.raises(InvalidTransactionState):
            ltm.record_write(a, "t", 1)

    def test_truncate_lco_keeps_newest(self):
        ltm = LocalTransactionManager("dn0")
        for _ in range(10):
            ltm.commit(ltm.begin())
        removed = ltm.truncate_lco(keep_last=3)
        assert removed == 7 and len(ltm.lco) == 3

    def test_prune_lco_respects_horizon(self):
        ltm = LocalTransactionManager("dn0")
        # local commit, old global commit, newer global commit, local commit
        a = ltm.begin()
        ltm.commit(a)
        b = ltm.begin(gxid=10)
        ltm.commit(b)
        c = ltm.begin(gxid=20)
        ltm.commit(c)
        d = ltm.begin()
        ltm.commit(d)
        removed = ltm.prune_lco(horizon_gxid=15)
        # a (local front) and b (gxid 10 < 15) go; c blocks the prefix, so d stays.
        assert removed == 2
        assert [e.local_xid for e in ltm.lco] == [c, d]
