"""Tests for the device-edge-cloud collaboration platform."""

import pytest

from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform, SyncPolicy, collection
from repro.collab.store import TOMBSTONE, ReplicaStore
from repro.collab.versions import VersionVector
from repro.common.clock import HlcTimestamp
from repro.common.errors import ConfigError, NetworkError, SyncError


class TestVersionVector:
    def test_advance_and_get(self):
        vv = VersionVector()
        vv.advance("a", 3)
        vv.advance("a", 2)   # no regression
        assert vv.get("a") == 3
        assert vv.get("zz") == 0

    def test_merge_and_dominates(self):
        a = VersionVector({"x": 3, "y": 1})
        b = VersionVector({"y": 5})
        assert not a.dominates(b)
        a.merge(b)
        assert a.dominates(b)
        assert a.get("y") == 5

    def test_equality_ignores_zeros(self):
        assert VersionVector({"a": 0}) == VersionVector()


class TestReplicaStore:
    def stamp(self, t, node="n"):
        return HlcTimestamp(t, 0, node)

    def test_local_updates_sequence(self):
        store = ReplicaStore("a")
        u1 = store.local_update("k", 1, self.stamp(10))
        u2 = store.local_update("k", 2, self.stamp(20))
        assert (u1.seq, u2.seq) == (1, 2)
        assert store.get("k") == 2

    def test_lww_by_hlc(self):
        store = ReplicaStore("a")
        store.local_update("k", "new", self.stamp(100))
        other = ReplicaStore("b")
        old = other.local_update("k", "old", self.stamp(50, "b"))
        store.ingest([old])
        assert store.get("k") == "new"        # older write loses
        assert store.stale_ignored == 1
        assert store.vv.get("b") == 1          # but it is not lost from the log

    def test_ingest_duplicates_ignored(self):
        a, b = ReplicaStore("a"), ReplicaStore("b")
        update = a.local_update("k", 1, self.stamp(1))
        assert b.ingest([update]) == 1
        assert b.ingest([update]) == 0

    def test_ingest_gap_detected(self):
        a, b = ReplicaStore("a"), ReplicaStore("b")
        a.local_update("k", 1, self.stamp(1))
        u2 = a.local_update("k", 2, self.stamp(2))
        with pytest.raises(SyncError):
            b.ingest([u2])

    def test_missing_for_is_exact(self):
        a, b = ReplicaStore("a"), ReplicaStore("b")
        updates = [a.local_update(f"k{i}", i, self.stamp(i)) for i in range(5)]
        b.ingest(a.missing_for(b.vv))
        assert a.missing_for(b.vv) == []
        assert b.snapshot() == a.snapshot()
        assert b.missing_for(a.vv) == []    # nothing redundant flows back

    def test_tombstone_hides_key(self):
        store = ReplicaStore("a")
        store.local_update("k", 1, self.stamp(1))
        store.local_update("k", TOMBSTONE, self.stamp(2))
        assert store.get("k") is None
        assert "k" not in store.keys()

    def test_compact(self):
        a = ReplicaStore("a")
        for i in range(10):
            a.local_update("k", i, self.stamp(i))
        removed = a.compact(VersionVector({"a": 7}))
        assert removed == 7
        assert a.log_size == 3


class TestPlatformTopology:
    def test_default_links(self):
        p = CollabPlatform()
        p.add_node("cloud", NodeKind.CLOUD)
        p.add_node("edge", NodeKind.EDGE)
        p.add_node("phone", NodeKind.DEVICE)
        assert p.fabric.reachable("phone", "cloud")
        assert p.fabric.reachable("phone", "edge")
        assert not p.fabric.reachable("phone", "phone")

    def test_devices_need_explicit_proximity(self):
        p = CollabPlatform()
        p.add_node("a", NodeKind.DEVICE)
        p.add_node("b", NodeKind.DEVICE)
        assert not p.fabric.reachable("a", "b")
        p.connect_nearby("a", "b")
        assert p.fabric.reachable("a", "b")

    def test_duplicate_node_rejected(self):
        p = CollabPlatform()
        p.add_node("a", NodeKind.DEVICE)
        with pytest.raises(ConfigError):
            p.add_node("a", NodeKind.DEVICE)


class TestSync:
    def mesh(self, n=4):
        p = CollabPlatform()
        nodes = [p.add_node(f"d{i}", NodeKind.DEVICE) for i in range(n)]
        for i in range(n - 1):
            p.connect_nearby(f"d{i}", f"d{i+1}")   # a chain, not a clique
        return p, nodes

    def test_convergence_over_multi_hop_chain(self):
        p, nodes = self.mesh(5)
        nodes[0].put("k", "v")
        nodes[4].put("other", 42)
        p.converge()
        assert p.is_consistent()
        assert nodes[4].get("k") == "v"
        assert nodes[0].get("other") == 42

    def test_no_redundant_transfer(self):
        p, nodes = self.mesh(3)
        nodes[0].put("k", "v")
        p.converge()
        p.stats.reset()
        p.sync_round()
        assert p.stats.updates_transferred == 0

    def test_partition_heals(self):
        p, nodes = self.mesh(2)
        p.disconnect("d0", "d1")
        nodes[0].put("k", 1)
        with pytest.raises(NetworkError):
            p.sync_pair("d0", "d1")
        p.reconnect("d0", "d1")
        p.converge()
        assert nodes[1].get("k") == 1

    def test_concurrent_writes_resolve_identically_everywhere(self):
        p, nodes = self.mesh(3)
        nodes[0].put("k", "from-0")
        nodes[2].put("k", "from-2")
        p.converge()
        values = {node.get("k") for node in nodes}
        assert len(values) == 1   # all replicas agree on one winner

    def test_time_drift_does_not_break_causality(self):
        p = CollabPlatform()
        fast = p.add_node("fast", NodeKind.DEVICE, skew_us=10_000_000)
        slow = p.add_node("slow", NodeKind.DEVICE, skew_us=0)
        p.connect_nearby("fast", "slow")
        fast.put("doc", "first")
        p.converge()
        slow.put("doc", "second")   # causally later despite the slower clock
        p.converge()
        assert fast.get("doc") == "second"
        assert slow.get("doc") == "second"

    def test_cloud_only_policy(self):
        p = CollabPlatform(policy=SyncPolicy.CLOUD_ONLY)
        p.add_node("cloud", NodeKind.CLOUD)
        a = p.add_node("a", NodeKind.DEVICE)
        b = p.add_node("b", NodeKind.DEVICE)
        a.put("k", 1)
        p.converge()
        assert b.get("k") == 1

    def test_leader_policy(self):
        p = CollabPlatform(policy=SyncPolicy.LEADER)
        router = p.add_node("router", NodeKind.EDGE)
        a = p.add_node("a", NodeKind.DEVICE)
        b = p.add_node("b", NodeKind.DEVICE)
        p.set_leader("router")
        a.put("k", 1)
        p.converge()
        assert b.get("k") == 1

    def test_compact_logs_after_convergence(self):
        p, nodes = self.mesh(3)
        for i in range(5):
            nodes[0].put(f"k{i}", i)
        p.converge()
        removed = p.compact_logs()
        assert removed > 0
        # a fresh round still transfers nothing and stays consistent
        assert p.sync_round() == 0
        assert p.is_consistent()


class TestDeviceFeatures:
    def test_subscriptions_fire_on_local_and_remote(self):
        p = CollabPlatform()
        a = p.add_node("a", NodeKind.DEVICE)
        b = p.add_node("b", NodeKind.DEVICE)
        p.connect_nearby("a", "b")
        events = []
        b.subscribe(lambda k, v: k.startswith("chat/"),
                    lambda k, v: events.append((k, v)))
        a.put("chat/1", "hi")
        a.put("other", "x")
        p.converge()
        assert events == [("chat/1", "hi")]

    def test_storage_budget_offloads_to_peer(self):
        p = CollabPlatform()
        phone = p.add_node("phone", NodeKind.DEVICE)
        watch = p.add_node("watch", NodeKind.DEVICE, storage_budget=2)
        p.connect_nearby("phone", "watch")
        watch.backing_peer = phone
        for i in range(5):
            watch.put(f"k{i}", i)
        assert watch.local_key_count() <= 2
        assert watch.offloaded_keys
        # After syncing, transparent read-through answers from the phone.
        p.converge()
        assert watch.get(watch.offloaded_keys[0]) is not None
        # Eviction never perturbs replication: all replicas stay equal.
        assert p.is_consistent()

    def test_rewriting_evicted_key_rematerializes(self):
        p = CollabPlatform()
        phone = p.add_node("phone", NodeKind.DEVICE)
        watch = p.add_node("watch", NodeKind.DEVICE, storage_budget=1)
        p.connect_nearby("phone", "watch")
        watch.backing_peer = phone
        watch.put("a", 1)
        watch.put("b", 2)       # evicts "a"
        assert "a" in watch.offloaded_keys
        watch.put("a", 99)      # fresh write re-materializes "a", evicts "b"
        assert watch.get("a") == 99

    def test_function_download_and_invoke(self):
        p = CollabPlatform()
        cloud = p.add_node("cloud", NodeKind.CLOUD)
        phone = p.add_node("phone", NodeKind.DEVICE)
        cloud.install_function(
            "count_keys", lambda node, args: len(node.keys()))
        phone.download_function("count_keys", source=cloud)
        phone.put("a", 1)
        phone.put("b", 2)
        assert phone.invoke("count_keys") == 2
        with pytest.raises(SyncError):
            phone.invoke("nope")

    def test_collection_api(self):
        p = CollabPlatform()
        a = p.add_node("a", NodeKind.DEVICE)
        photos = collection(a, "photos")
        photos.put("1", {"t": "sunset"})
        photos.put("2", {"t": "dog"})
        photos.delete("1")
        assert photos.ids() == ["2"]
        assert photos.get("1") is None
        seen = []
        photos.watch(lambda doc_id, value: seen.append(doc_id))
        photos.put("3", {"t": "cat"})
        assert seen == ["3"]
