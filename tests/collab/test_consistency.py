"""Tests for configurable consistency policies (session guarantees)."""

import pytest

from repro.collab.consistency import ConsistencyLevel, ConsistentSession
from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform
from repro.common.errors import SyncError


@pytest.fixture
def platform():
    p = CollabPlatform()
    p.add_node("phone", NodeKind.DEVICE)
    p.add_node("tablet", NodeKind.DEVICE)
    p.add_node("laptop", NodeKind.DEVICE)
    p.connect_nearby("phone", "tablet")
    p.connect_nearby("tablet", "laptop")
    return p


class TestEventual:
    def test_reads_may_be_stale(self, platform):
        session = ConsistentSession(platform, ConsistencyLevel.EVENTUAL)
        session.write("phone", "doc", "v1")
        # Without sync the tablet simply has nothing — allowed.
        assert session.read("tablet", "doc") is None
        assert session.stats.syncs_triggered == 0


class TestReadYourWrites:
    def test_write_on_one_device_read_on_another(self, platform):
        session = ConsistentSession(platform,
                                    ConsistencyLevel.READ_YOUR_WRITES)
        session.write("phone", "doc", "v1")
        assert session.read("tablet", "doc") == "v1"
        assert session.stats.syncs_triggered >= 1

    def test_multi_hop_catchup(self, platform):
        session = ConsistentSession(platform,
                                    ConsistencyLevel.READ_YOUR_WRITES)
        session.write("phone", "doc", "v1")
        # laptop is two hops from phone; on-demand sync pulls via tablet.
        assert session.read("laptop", "doc") == "v1"

    def test_other_sessions_writes_not_required(self, platform):
        writer = ConsistentSession(platform,
                                   ConsistencyLevel.READ_YOUR_WRITES)
        reader = ConsistentSession(platform,
                                   ConsistencyLevel.READ_YOUR_WRITES)
        writer.write("phone", "doc", "v1")
        # The reader never wrote anything: no guarantee, no forced sync.
        assert reader.read("laptop", "doc") is None
        assert reader.stats.syncs_triggered == 0

    def test_partition_raises_instead_of_lying(self, platform):
        session = ConsistentSession(platform,
                                    ConsistencyLevel.READ_YOUR_WRITES)
        session.write("phone", "doc", "v1")
        platform.disconnect("phone", "tablet")
        with pytest.raises(SyncError):
            session.read("tablet", "doc")


class TestMonotonicReads:
    def test_never_goes_backwards(self, platform):
        session = ConsistentSession(platform,
                                    ConsistencyLevel.MONOTONIC_READS)
        platform.node("phone").put("doc", "v1")
        platform.converge()
        assert session.read("phone", "doc") == "v1"
        platform.node("phone").put("doc", "v2")
        assert session.read("phone", "doc") == "v2"
        # Reading from the (stale) laptop must first catch it up to v2's
        # causal point... but v2 hasn't synced; the session saw phone's VV
        # after v2, so the laptop read triggers an on-demand sync.
        assert session.read("laptop", "doc") == "v2"

    def test_fresh_session_reads_anywhere(self, platform):
        platform.node("phone").put("doc", "v1")
        session = ConsistentSession(platform,
                                    ConsistencyLevel.MONOTONIC_READS)
        # Never read anything yet: any state is acceptable.
        assert session.read("laptop", "doc") is None


class TestBoundedStaleness:
    def test_requires_known_writes(self, platform):
        session = ConsistentSession(platform,
                                    ConsistencyLevel.BOUNDED_STALENESS)
        session.write("phone", "a", 1)
        assert session.read("tablet", "a") == 1


class TestStrong:
    def test_reads_and_writes_route_to_leader(self, platform):
        platform.set_leader("tablet")
        session = ConsistentSession(platform, ConsistencyLevel.STRONG)
        session.write("phone", "doc", "v1")   # transparently to the leader
        assert platform.node("tablet").get("doc") == "v1"
        assert session.read("laptop", "doc") == "v1"  # served by leader

    def test_strong_needs_a_leader(self, platform):
        session = ConsistentSession(platform, ConsistencyLevel.STRONG)
        with pytest.raises(SyncError):
            session.write("phone", "doc", "v1")


class TestGuaranteeCost:
    def test_stronger_levels_cost_more_syncs(self, platform):
        def run(level):
            session = ConsistentSession(platform, level)
            for i in range(5):
                session.write("phone", f"k{i}", i)
                session.read("laptop", f"k{i}")
            return session.stats.syncs_triggered

        eventual = run(ConsistencyLevel.EVENTUAL)
        ryw = run(ConsistencyLevel.READ_YOUR_WRITES)
        assert eventual == 0
        assert ryw > 0
