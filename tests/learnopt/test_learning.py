"""Tests for the learning optimizer: plan store, capture policy, reuse.

Includes the Table I scenario: the exact query from the paper
(``select * from olap.t1, olap.t2 where olap.t1.a1=olap.t2.a2 and
olap.t1.b1 > 10``) over *correlated* data that defeats the classical
estimator, so the producer captures the scan and join steps and the next
planning run consumes them.
"""

import pytest

from repro.cluster import MppCluster
from repro.learnopt.feedback import CaptureSettings, FeedbackLoop
from repro.learnopt.store import PlanStore, step_key
from repro.sql.engine import SqlEngine


class TestPlanStore:
    def test_md5_key_is_32_hex_chars(self):
        key = step_key("SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))")
        assert len(key) == 32
        int(key, 16)  # valid hex

    def test_put_lookup(self):
        store = PlanStore()
        store.put("STEP", estimated_rows=50, actual_rows=100)
        assert store.lookup("STEP") == 100
        assert store.lookup("OTHER") is None
        assert store.hits == 1 and store.lookups == 2

    def test_update_overwrites(self):
        store = PlanStore()
        store.put("STEP", 50, 100)
        store.put("STEP", 60, 120)
        assert store.lookup("STEP") == 120
        assert store.get_record("STEP").updates == 1

    def test_lru_eviction(self):
        store = PlanStore(capacity=2)
        store.put("A", 1, 1)
        store.put("B", 1, 1)
        store.lookup("A")        # A becomes most recent
        store.put("C", 1, 1)     # evicts B
        assert store.lookup("B") is None
        assert store.lookup("A") == 1

    def test_render_table(self):
        store = PlanStore()
        store.put("SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))", 50, 100)
        text = store.render_table()
        assert "Estimate" in text and "Actual" in text
        assert "SCAN(OLAP.T1" in text


class TestCapturePolicy:
    def _engine(self, **settings):
        cluster = MppCluster(num_dns=2)
        engine = SqlEngine(cluster,
                           capture_settings=CaptureSettings(**settings))
        engine.execute("create table olap.t1 (a1 int primary key, b1 int)")
        engine.execute("create table olap.t2 (a2 int primary key, b2 int)")
        # Correlated data: b1 = 0 for the first 90% of rows, then b1 = a1,
        # so "b1 > 10" selects far fewer rows than a uniform model thinks.
        rows1 = ",".join(
            f"({i}, {0 if i < 180 else i})" for i in range(200))
        rows2 = ",".join(f"({i}, {i})" for i in range(200))
        engine.execute(f"insert into olap.t1 values {rows1}")
        engine.execute(f"insert into olap.t2 values {rows2}")
        return engine

    TABLE1_QUERY = ("select * from olap.t1, olap.t2 "
                    "where olap.t1.a1 = olap.t2.a2 and olap.t1.b1 > 10")

    def test_misestimated_steps_are_captured(self):
        engine = self._engine()
        # No ANALYZE: the optimizer plans with defaults and is badly wrong.
        result = engine.execute(self.TABLE1_QUERY)
        assert result.capture is not None and result.capture.captured >= 2
        steps = [r.step_text for r in engine.plan_store.records()]
        assert any(s.startswith("SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10")
                   for s in steps)
        assert any(s.startswith("JOIN(") for s in steps)

    def test_second_run_consumes_feedback(self):
        engine = self._engine()
        engine.execute(self.TABLE1_QUERY)
        engine.execute(self.TABLE1_QUERY)
        assert engine.plan_store.hits > 0

    def test_corrected_estimates_match_actuals(self):
        engine = self._engine()
        engine.execute(self.TABLE1_QUERY)
        result = engine.execute(self.TABLE1_QUERY)
        # find the scan on t1 in the second plan: estimate == observed actual
        lines = [l for l in result.plan_text.splitlines()
                 if "SeqScan olap.t1" in l]
        assert lines
        assert "est=19" in lines[0] or "est=20" in lines[0], lines[0]

    def test_capture_respects_threshold(self):
        engine = self._engine(error_threshold=1000.0)
        result = engine.execute(self.TABLE1_QUERY)
        assert result.capture.captured == 0

    def test_capture_disabled(self):
        engine = self._engine(enabled=False)
        result = engine.execute(self.TABLE1_QUERY)
        assert result.capture.captured == 0
        assert len(engine.plan_store) == 0

    def test_learning_can_be_disabled_engine_wide(self):
        cluster = MppCluster(num_dns=1)
        engine = SqlEngine(cluster, learning_enabled=False)
        engine.execute("create table t (a int primary key)")
        engine.execute("insert into t values (1), (2)")
        result = engine.execute("select * from t")
        assert result.capture is None

    def test_alias_does_not_fragment_store(self):
        """Canonical names use real table names, so aliased reruns hit."""
        engine = self._engine()
        engine.execute(self.TABLE1_QUERY)
        hits_before = engine.plan_store.hits
        engine.execute("select * from olap.t1 x, olap.t2 y "
                       "where x.a1 = y.a2 and x.b1 > 10")
        assert engine.plan_store.hits > hits_before

    def test_feedback_loop_direct_api(self):
        loop = FeedbackLoop(settings=CaptureSettings(error_threshold=0.5))
        assert loop.lookup("anything") is None
        loop.store.put("S", 10, 100)
        assert loop.lookup("S") == 100
