"""Plan-store key stability across the fragmented-execution refactor.

Fragmenting is purely physical: logical step texts — and therefore the
MD5 keys the plan store is keyed by — must be byte-identical whether a
query ran gather-all or fragmented, and the captured estimate/actual
cardinalities must agree (per-DN clones sum back into one observation).
"""

import pytest

from repro.cluster import MppCluster
from repro.learnopt.feedback import CaptureSettings
from repro.learnopt.store import step_key
from repro.sql.engine import SqlEngine

WORKLOAD = [
    "select count(*) from ledger where bucket = 3",
    "select bucket, sum(amount) from ledger group by bucket",
    "select l.bucket, count(*) from ledger l join refs r "
    "on l.bucket = r.id group by l.bucket",
    "select * from ledger where amount > 400 order by id limit 5",
]


def build_engine(fragmented):
    cluster = MppCluster(num_dns=2)
    eng = SqlEngine(cluster, fragmented=fragmented,
                    capture_settings=CaptureSettings(error_threshold=0.0))
    eng.execute("create table ledger (id int primary key, bucket int, "
                "amount double)")
    eng.execute("create table refs (id int primary key, tag text)")
    eng.execute("insert into ledger values " + ",".join(
        f"({i}, {i % 8}, {i * 1.25})" for i in range(400)))
    eng.execute("insert into refs values " + ",".join(
        f"({i}, 'r{i}')" for i in range(8)))
    # No ANALYZE: zero-stat estimates diverge from actuals, so every step
    # with a step_text is captured (threshold 0) — maximal key coverage.
    return eng


def captured_records(fragmented):
    eng = build_engine(fragmented)
    for sql in WORKLOAD:
        eng.execute(sql)
    return {r.step_text: (r.key, r.estimated_rows, r.actual_rows)
            for r in eng.plan_store.records()}


class TestKeyStability:
    def test_md5_keys_identical_with_and_without_fragmenting(self):
        frag = captured_records(fragmented=True)
        flat = captured_records(fragmented=False)
        assert set(frag) == set(flat)
        for text in flat:
            assert frag[text][0] == flat[text][0] == step_key(text)

    def test_captured_cardinalities_agree(self):
        frag = captured_records(fragmented=True)
        flat = captured_records(fragmented=False)
        for text, (_key, _est, actual) in flat.items():
            # Actual rows of a logical step are plan-independent; per-DN
            # clones were summed back into one observation.
            assert frag[text][2] == pytest.approx(actual), text

    def test_scan_actuals_sum_across_fragments(self):
        eng = build_engine(fragmented=True)
        eng.execute("select count(*) from ledger where bucket = 3")
        scans = [r for r in eng.plan_store.records()
                 if r.step_text.startswith("SCAN(LEDGER")]
        assert len(scans) == 1
        assert scans[0].actual_rows == 50.0  # 400 rows, 8 buckets
