"""Tests for the Figure 3 experiment harness itself."""

import pytest

from repro.cluster.txn import TxnMode
from repro.core.experiment import (
    FIGURE3_NODE_COUNTS,
    Figure3Cell,
    figure3,
    format_figure3,
    run_cell,
)


class TestRunCell:
    def test_produces_committed_work(self):
        result = run_cell(2, 0.0, TxnMode.GTM_LITE, warehouses_per_node=2,
                          clients_per_dn=2, txns_per_client=5)
        assert result.committed == 2 * 2 * 5
        assert result.makespan_us > 0
        assert result.throughput_tps > 0

    def test_gtm_lite_ss_sends_nothing_to_gtm_per_txn(self):
        result = run_cell(2, 0.0, TxnMode.GTM_LITE, warehouses_per_node=2,
                          clients_per_dn=2, txns_per_client=5)
        # Only the bulk load (one txn per warehouse + item load) used GXIDs.
        assert result.gtm_requests < 20

    def test_ms_fraction_forces_two_warehouses(self):
        result = run_cell(1, 0.1, TxnMode.GTM_LITE, warehouses_per_node=1,
                          clients_per_dn=2, txns_per_client=5)
        assert result.committed == 10

    def test_deterministic(self):
        a = run_cell(2, 0.1, TxnMode.GTM_LITE, txns_per_client=5,
                     clients_per_dn=2)
        b = run_cell(2, 0.1, TxnMode.GTM_LITE, txns_per_client=5,
                     clients_per_dn=2)
        assert a.throughput_tps == b.throughput_tps
        assert a.makespan_us == b.makespan_us


class TestGrid:
    def test_figure3_grid_shape(self):
        cells = figure3(node_counts=(1, 2), txns_per_client=5,
                        clients_per_dn=2)
        assert len(cells) == 2 * 2 * 2   # nodes x workloads x modes
        assert {c.workload for c in cells} == {"SS", "MS"}
        assert {c.mode for c in cells} == {TxnMode.GTM_LITE, TxnMode.CLASSICAL}

    def test_format_renders_all_series(self):
        cells = figure3(node_counts=(1,), txns_per_client=5,
                        clients_per_dn=2)
        text = format_figure3(cells)
        for series in ("SS/gtm_lite", "SS/classical",
                       "MS/gtm_lite", "MS/classical"):
            assert series in text

    def test_cell_as_row(self):
        cells = figure3(node_counts=(1,), workloads={"SS": 0.0},
                        modes=(TxnMode.GTM_LITE,), txns_per_client=5,
                        clients_per_dn=2)
        row = cells[0].as_row()
        assert row["nodes"] == 1 and row["workload"] == "SS"
        assert row["mode"] == "gtm_lite"
        assert row["throughput_tps"] > 0

    def test_default_node_counts_match_paper(self):
        assert FIGURE3_NODE_COUNTS == (1, 2, 4, 8)
