"""Protocol tests for the paper's Anomaly 1 and Anomaly 2 (Sec. II-A).

These reproduce the exact interleavings from the paper and assert that:
* the naive local-snapshot reader exhibits each anomaly,
* the ablated modes exhibit exactly the anomaly their missing fix covers,
* full GTM-lite (Algorithm 1) and the classical baseline are consistent.
"""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value


def make_cluster(mode: TxnMode, num_dns: int = 2) -> MppCluster:
    cluster = MppCluster(num_dns=num_dns, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k",
    ))
    return cluster


def keys_on_distinct_nodes(num_dns: int):
    """One integer key per data node."""
    found = {}
    k = 0
    while len(found) < num_dns:
        shard = shard_of_value(k, num_dns)
        found.setdefault(shard, k)
        k += 1
    return [found[i] for i in range(num_dns)]


def seeded(mode: TxnMode):
    cluster = make_cluster(mode)
    ka, kb = keys_on_distinct_nodes(2)
    session = cluster.session()
    init = session.begin(multi_shard=True)
    init.insert("t", {"k": ka, "v": 0})
    init.insert("t", {"k": kb, "v": 0})
    init.commit()
    return cluster, session, ka, kb


class TestAnomaly2:
    """Fig. 2: T1 multi-shard write; T3 single-shard dependent write;
    T2 reader with old global snapshot + new local snapshot."""

    def _run(self, mode: TxnMode):
        cluster, session, ka, kb = seeded(mode)
        t1 = session.begin(multi_shard=True)
        t1.update("t", ka, {"v": 1})
        t1.update("t", kb, {"v": 1})
        t2 = session.begin(multi_shard=True)   # global snapshot: T1 active
        b_early = t2.read("t", kb)["v"]        # local snapshot on kb's DN now
        t1.commit()
        t3 = session.begin(multi_shard=False)  # dependent single-shard write
        t3.update("t", ka, {"v": 2})
        t3.commit()
        a_late = t2.read("t", ka)["v"]         # local snapshot on ka's DN late
        t2.commit()
        return a_late, b_early

    def test_gtm_lite_downgrade_gives_consistent_view(self):
        # T1 was active in T2's global snapshot, so neither T1's write nor
        # the dependent T3 write may be visible: the view is (0, 0).
        assert self._run(TxnMode.GTM_LITE) == (0, 0)

    def test_naive_merge_exhibits_the_anomaly(self):
        # The naive reader sees T3's dependent update on one node but not
        # T1's write on the other: a torn, causally impossible view.
        assert self._run(TxnMode.GTM_LITE_NAIVE) == (2, 0)

    def test_disabling_downgrade_reintroduces_the_anomaly(self):
        assert self._run(TxnMode.GTM_LITE_NO_DOWNGRADE) == (2, 0)

    def test_classical_baseline_is_consistent(self):
        assert self._run(TxnMode.CLASSICAL) == (0, 0)

    def test_downgrade_is_recorded_in_stats(self):
        cluster, session, ka, kb = seeded(TxnMode.GTM_LITE)
        t1 = session.begin(multi_shard=True)
        t1.update("t", ka, {"v": 1})
        t1.update("t", kb, {"v": 1})
        t2 = session.begin(multi_shard=True)
        t1.commit()
        t3 = session.begin(multi_shard=False)
        t3.update("t", ka, {"v": 2})
        t3.commit()
        t2.read("t", ka)
        assert cluster.stats.downgrades >= 2  # T1's local commit and T3


class TestAnomaly1:
    """Writer committed at the GTM but not yet confirmed on one DN."""

    def _run(self, mode: TxnMode):
        cluster, session, ka, kb = seeded(mode)
        dn_b = shard_of_value(kb, 2)
        t1 = session.begin(multi_shard=True)
        t1.update("t", ka, {"v": 7})
        t1.update("t", kb, {"v": 7})
        steps = t1.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        # Deliver the commit confirmation to ka's node only.
        dn_a = shard_of_value(ka, 2)
        if mode is not TxnMode.CLASSICAL:
            steps.confirm_at(dn_a)
        t2 = session.begin(multi_shard=True)   # global snapshot: T1 committed
        a = t2.read("t", ka)["v"]
        b = t2.read("t", kb)["v"]
        steps.finish()
        t2.commit()
        return a, b

    def test_gtm_lite_upgrade_reveals_both_writes(self):
        assert self._run(TxnMode.GTM_LITE) == (7, 7)

    def test_disabling_upgrade_tears_the_write(self):
        assert self._run(TxnMode.GTM_LITE_NO_UPGRADE) == (7, 0)

    def test_naive_reader_tears_the_write(self):
        assert self._run(TxnMode.GTM_LITE_NAIVE) == (7, 0)

    def test_classical_baseline_is_consistent(self):
        # Classical confirms on the DNs before the GTM dequeues the writer,
        # so the reader sees either all or none; here, all.
        assert self._run(TxnMode.CLASSICAL) == (7, 7)

    def test_upgrade_is_recorded_in_stats(self):
        cluster, session, ka, kb = seeded(TxnMode.GTM_LITE)
        t1 = session.begin(multi_shard=True)
        t1.update("t", kb, {"v": 7})
        steps = t1.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        t2 = session.begin(multi_shard=True)
        t2.read("t", kb)
        assert cluster.stats.upgrades >= 1
        steps.finish()


class TestWaitForCommitSafety:
    def test_upgraded_writer_cannot_abort(self):
        """After prepare + GTM commit, the local commit is inevitable —
        the status log refuses to abort a GTM-committed transaction."""
        cluster, session, ka, kb = seeded(TxnMode.GTM_LITE)
        t1 = session.begin(multi_shard=True)
        t1.update("t", ka, {"v": 1})
        t1.update("t", kb, {"v": 1})
        steps = t1.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        with pytest.raises(Exception):
            t1.abort()  # gxid no longer active at the GTM
        steps.finish()
