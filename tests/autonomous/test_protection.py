"""Tests for self-protection: lockout, runaway queries, export quotas."""

import pytest

from repro.autonomous.protection import (
    AccessDenied,
    AccessGuard,
    AuditLog,
    ExfiltrationMonitor,
    ProtectionManager,
    QueryInspector,
)
from repro.cluster import MppCluster
from repro.sql.engine import SqlEngine

SECOND = 1_000_000.0


class TestAccessGuard:
    def make(self):
        audit = AuditLog()
        return audit, AccessGuard(audit, max_failures=3,
                                  window_us=10 * SECOND,
                                  lockout_us=60 * SECOND)

    def test_lockout_after_repeated_failures(self):
        audit, guard = self.make()
        for i in range(3):
            guard.note_failure("mallory", i * SECOND)
        assert guard.is_locked("mallory", 3 * SECOND)
        with pytest.raises(AccessDenied):
            guard.check("mallory", 3 * SECOND)
        assert audit.events("lockout")

    def test_failures_outside_window_ignored(self):
        _, guard = self.make()
        guard.note_failure("alice", 0.0)
        guard.note_failure("alice", 1 * SECOND)
        guard.note_failure("alice", 20 * SECOND)   # first two expired
        assert not guard.is_locked("alice", 21 * SECOND)

    def test_lockout_expires(self):
        audit, guard = self.make()
        for i in range(3):
            guard.note_failure("bob", i * SECOND)
        assert guard.is_locked("bob", 30 * SECOND)
        assert not guard.is_locked("bob", 100 * SECOND)
        assert audit.events("unlock")

    def test_success_resets_counter(self):
        _, guard = self.make()
        guard.note_failure("carol", 0.0)
        guard.note_failure("carol", 1 * SECOND)
        guard.note_success("carol", 2 * SECOND)
        guard.note_failure("carol", 3 * SECOND)
        assert not guard.is_locked("carol", 4 * SECOND)


class TestQueryInspector:
    def test_rejects_runaway(self):
        audit = AuditLog()
        inspector = QueryInspector(audit, max_estimated_rows=1000)
        inspector.admit("alice", 500, 0.0)
        with pytest.raises(AccessDenied):
            inspector.admit("alice", 5_000_000, 0.0, "select * from a, b")
        assert inspector.rejected == 1
        assert audit.events("query_rejected")


class TestExfiltrationMonitor:
    def test_quota_over_window(self):
        audit = AuditLog()
        monitor = ExfiltrationMonitor(audit, max_rows=100,
                                      window_us=10 * SECOND)
        monitor.note_result("dave", 60, 0.0)
        monitor.note_result("dave", 30, 1 * SECOND)
        with pytest.raises(AccessDenied):
            monitor.note_result("dave", 20, 2 * SECOND)
        # The window slides: old consumption expires.
        monitor.note_result("dave", 90, 20 * SECOND)
        assert audit.events("quota_exceeded")

    def test_quota_is_per_principal(self):
        monitor = ExfiltrationMonitor(AuditLog(), max_rows=100,
                                      window_us=10 * SECOND)
        monitor.note_result("a", 100, 0.0)
        monitor.note_result("b", 100, 0.0)   # independent quota


class TestProtectionManager:
    @pytest.fixture
    def engine(self):
        cluster = MppCluster(num_dns=1)
        engine = SqlEngine(cluster)
        engine.execute("create table big (id int primary key, v int)")
        engine.execute("insert into big values " + ",".join(
            f"({i}, {i})" for i in range(500)))
        engine.execute("analyze")
        return engine

    def test_normal_query_passes(self, engine):
        protection = ProtectionManager()
        result = protection.guarded_execute(
            engine, "alice", "select count(*) from big", now_us=0.0)
        assert result.scalar() == 500

    def test_cartesian_explosion_rejected(self, engine):
        protection = ProtectionManager(max_estimated_rows=10_000)
        with pytest.raises(AccessDenied):
            protection.guarded_execute(
                engine, "mallory",
                "select * from big a cross join big b cross join big c",
                now_us=0.0)
        assert protection.queries.rejected == 1

    def test_bulk_export_throttled(self, engine):
        protection = ProtectionManager(max_rows_per_window=600)
        protection.guarded_execute(engine, "eve", "select * from big", 0.0)
        with pytest.raises(AccessDenied):
            protection.guarded_execute(engine, "eve",
                                       "select * from big", 1 * SECOND)

    def test_locked_principal_cannot_query(self, engine):
        protection = ProtectionManager(max_failures=2)
        protection.access.note_failure("mallory", 0.0)
        protection.access.note_failure("mallory", 1.0)
        with pytest.raises(AccessDenied):
            protection.guarded_execute(engine, "mallory",
                                       "select 1", now_us=2.0)
