"""Direct unit tests for InformationStore summaries and percentile math."""

import math

import pytest

from repro.autonomous.infostore import InformationStore, _percentile


class TestWindowEdgeCases:
    def test_unknown_metric(self):
        assert InformationStore().window("nope", 0.0, 10.0) == []

    def test_inverted_range_is_empty(self):
        store = InformationStore()
        store.record("m", 5.0, 1.0)
        assert store.window("m", 10.0, 0.0) == []

    def test_no_samples_in_range(self):
        store = InformationStore()
        store.record("m", 5.0, 1.0)
        assert store.window("m", 6.0, 10.0) == []

    def test_bounds_inclusive(self):
        store = InformationStore()
        store.record("m", 5.0, 1.0)
        store.record("m", 10.0, 2.0)
        assert store.window("m", 5.0, 10.0) == [(5.0, 1.0), (10.0, 2.0)]


class TestValues:
    def test_last_n_zero_or_negative_is_empty(self):
        store = InformationStore()
        store.record("m", 0.0, 1.0)
        store.record("m", 1.0, 2.0)
        assert store.values("m", last_n=0) == []
        assert store.values("m", last_n=-3) == []

    def test_last_n_larger_than_series(self):
        store = InformationStore()
        store.record("m", 0.0, 1.0)
        assert store.values("m", last_n=100) == [1.0]


class TestSummary:
    def test_empty_series_returns_none(self):
        assert InformationStore().summary("m") is None
        store = InformationStore()
        store.record("m", 0.0, 1.0)
        assert store.summary("m", last_n=0) is None

    def test_single_sample(self):
        store = InformationStore()
        store.record("m", 0.0, 42.0)
        s = store.summary("m")
        assert s.count == 1
        assert s.mean == 42.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == 42.0
        assert s.p50 == s.p95 == s.p99 == 42.0

    def test_known_statistics(self):
        store = InformationStore()
        for i, v in enumerate([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]):
            store.record("m", float(i), v)
        s = store.summary("m")
        assert s.count == 8
        assert s.mean == 5.0
        assert s.std == pytest.approx(2.0)
        assert s.minimum == 2.0 and s.maximum == 9.0
        assert s.p50 == pytest.approx(4.5)

    def test_rate_per_second_zero_window(self):
        store = InformationStore()
        store.record("m", 0.0, 5.0)
        assert store.rate_per_second("m", window_us=0.0, now_us=0.0) == 0.0
        assert store.rate_per_second("m", window_us=-1.0, now_us=0.0) == 0.0


class TestPercentileMath:
    def test_empty_is_nan(self):
        assert math.isnan(_percentile([], 0.5))

    def test_single_element(self):
        assert _percentile([7.0], 0.0) == 7.0
        assert _percentile([7.0], 1.0) == 7.0

    def test_interpolation(self):
        assert _percentile([0.0, 10.0], 0.5) == 5.0
        assert _percentile([0.0, 10.0, 20.0], 0.25) == 5.0

    def test_q_clamped(self):
        ordered = [1.0, 2.0, 3.0]
        assert _percentile(ordered, -0.5) == 1.0
        assert _percentile(ordered, 1.5) == 3.0
