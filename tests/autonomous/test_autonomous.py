"""Tests for the autonomous-database components (Fig. 12)."""

import pytest

from repro.autonomous.anomaly import (
    AnomalyManager,
    EwmaDetector,
    HeartbeatDetector,
    Severity,
    ThresholdDetector,
)
from repro.autonomous.adbms import AutonomousManager
from repro.autonomous.change import ChangeManager, KnobDef
from repro.autonomous.infostore import InformationStore
from repro.autonomous.ml import KnnRegressor, KnobTuner, LinearRegression
from repro.autonomous.workload import Priority, Sla, WorkloadManager
from repro.cluster import MppCluster
from repro.common.errors import ConfigError, SlaViolation


class TestInformationStore:
    def test_record_and_summary(self):
        store = InformationStore()
        for i in range(100):
            store.record("lat", i, float(i))
        summary = store.summary("lat")
        assert summary.count == 100
        assert summary.p50 == pytest.approx(49.5)
        assert summary.p95 == pytest.approx(94.05)
        assert summary.minimum == 0 and summary.maximum == 99

    def test_window_and_rate(self):
        store = InformationStore()
        for i in range(10):
            store.record("done", i * 100_000, 1.0)
        assert len(store.window("done", 0, 500_000)) == 6
        assert store.rate_per_second("done", 1_000_000, 900_000) == pytest.approx(10.0)

    def test_bounded_history(self):
        store = InformationStore(max_samples_per_metric=5)
        for i in range(20):
            store.record("m", i, float(i))
        assert store.values("m") == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_missing_metric(self):
        store = InformationStore()
        assert store.latest("zz") is None
        assert store.summary("zz") is None


class TestDetectors:
    def test_threshold(self):
        store = InformationStore()
        manager = AnomalyManager(store)
        manager.add_detector(ThresholdDetector("mem", upper=0.9))
        store.record("mem", 0, 0.5)
        assert manager.evaluate(0) == []
        store.record("mem", 1, 0.95)
        found = manager.evaluate(1)
        assert len(found) == 1 and "above" in found[0].message

    def test_ewma_detects_spike_not_drift(self):
        store = InformationStore()
        manager = AnomalyManager(store)
        manager.add_detector(EwmaDetector("disk", alpha=0.3, k_sigma=4.0))
        # stable-ish baseline
        for i in range(50):
            store.record("disk", i, 100.0 + (i % 3))
        assert manager.evaluate(50) == []
        store.record("disk", 51, 400.0)   # spike
        assert len(manager.evaluate(51)) == 1

    def test_heartbeat(self):
        store = InformationStore()
        manager = AnomalyManager(store)
        manager.add_detector(HeartbeatDetector("hb.dn0", timeout_us=1000.0,
                                               action="failover dn0"))
        store.record("hb.dn0", 0, 1.0)
        assert manager.evaluate(500) == []
        found = manager.evaluate(5000)
        assert found and found[0].severity is Severity.CRITICAL
        assert found[0].suggested_action == "failover dn0"

    def test_handlers_invoked(self):
        store = InformationStore()
        manager = AnomalyManager(store)
        manager.add_detector(ThresholdDetector("m", upper=1.0))
        seen = []
        manager.on_anomaly(seen.append)
        store.record("m", 0, 2.0)
        manager.evaluate(0)
        assert len(seen) == 1
        assert manager.critical_count() == 0


class TestWorkloadManager:
    def make(self, limit=2):
        store = InformationStore()
        sla = Sla("gold", p95_latency_us=10_000.0)
        return store, WorkloadManager(store, sla, initial_concurrency=limit,
                                      max_queue=3)

    def test_admission_and_queueing(self):
        _, manager = self.make(limit=2)
        a = manager.submit(0)
        b = manager.submit(0)
        assert a is not None and b is not None
        c = manager.submit(0)
        assert c is None and manager.queued_count == 1
        admitted = manager.finish(a, now_us=100)
        assert len(admitted) == 1 and manager.queued_count == 0

    def test_queue_overflow_sheds_load(self):
        _, manager = self.make(limit=1)
        manager.submit(0)
        for _ in range(3):
            manager.submit(0)
        with pytest.raises(SlaViolation):
            manager.submit(0)
        assert manager.rejected == 1

    def test_priority_jumps_queue(self):
        _, manager = self.make(limit=1)
        running = manager.submit(0)
        manager.submit(1, Priority.LOW)
        manager.submit(2, Priority.HIGH)
        admitted = manager.finish(running, 10)
        assert admitted[0].priority is Priority.HIGH

    def test_aimd_adjustment(self):
        store, manager = self.make(limit=8)
        # healthy latencies -> additive increase
        for i in range(50):
            slot = manager.submit(i)
            manager.finish(slot, i + 100)   # 100us, far under SLA
        assert manager.adjust(1000) == 9
        # violating latencies -> multiplicative decrease
        for i in range(50):
            slot = manager.submit(i)
            manager.finish(slot, i + 50_000)
        assert manager.adjust(2000) <= 5
        assert manager.sla_violations >= 1


class TestChangeManager:
    def test_knob_lifecycle(self):
        manager = ChangeManager()
        manager.define_knob(KnobDef("mem", 100, 10, 1000))
        assert manager.get("mem") == 100
        manager.set("mem", 200, t_us=1)
        assert manager.get("mem") == 200
        manager.rollback("mem", t_us=2)
        assert manager.get("mem") == 100
        kinds = [e.kind for e in manager.history]
        assert kinds == ["knob", "rollback"]

    def test_validation(self):
        manager = ChangeManager()
        manager.define_knob(KnobDef("mem", 100, 10, 1000))
        with pytest.raises(ConfigError):
            manager.set("mem", 5000)
        with pytest.raises(ConfigError):
            manager.set("zz", 1)
        with pytest.raises(ConfigError):
            manager.rollback("mem")

    def test_membership(self):
        manager = ChangeManager()
        manager.node_added("dn0")
        manager.node_added("dn1")
        manager.node_removed("dn1", reason="failed")
        assert manager.online_nodes() == ["dn0"]

    def test_listeners(self):
        manager = ChangeManager()
        manager.define_knob(KnobDef("mem", 100, 10, 1000))
        events = []
        manager.on_change(events.append)
        manager.set("mem", 300)
        assert events and events[0].new_value == 300


class TestInDbMl:
    def test_linear_regression_recovers_coefficients(self):
        X = [[x, y] for x in range(10) for y in range(10)]
        y = [3.0 * a - 2.0 * b + 7.0 for a, b in X]
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0, abs=1e-6)
        assert model.coef_[1] == pytest.approx(-2.0, abs=1e-6)
        assert model.intercept_ == pytest.approx(7.0, abs=1e-6)
        assert model.r2(X, y) == pytest.approx(1.0)

    def test_knn(self):
        X = [[0.0], [1.0], [10.0], [11.0]]
        y = [0.0, 0.0, 100.0, 100.0]
        model = KnnRegressor(k=2).fit(X, y)
        assert model.predict([[0.5]])[0] == 0.0
        assert model.predict([[10.5]])[0] == 100.0

    def test_knob_tuner_finds_sweet_spot(self):
        knob = KnobDef("conc", 16, 1, 100)
        tuner = KnobTuner([knob], maximize=True, seed=7)
        # throughput peaks near conc = 40 (quadratic response)
        for c in range(1, 100, 3):
            tuner.observe({"conc": float(c)}, 1000 - (c - 40) ** 2)
        proposal = tuner.propose()
        assert proposal is not None
        assert abs(proposal.knobs["conc"] - 40) < 8
        assert proposal.model_r2 > 0.95

    def test_tuner_needs_samples(self):
        tuner = KnobTuner([KnobDef("k", 1, 0, 10)])
        assert tuner.propose() is None


class TestAutonomousManager:
    def test_collect_and_tick(self):
        cluster = MppCluster(num_dns=2)
        manager = AutonomousManager(cluster)
        manager.collect(0.0)
        report = manager.tick(0.0)
        assert report.anomalies == []
        assert report.concurrency_limit >= 1

    def test_self_healing_on_node_failure(self):
        cluster = MppCluster(num_dns=2)
        manager = AutonomousManager(cluster)
        # dn0 heartbeats, dn1 stops reporting
        for t in (0.0, 1_000_000.0, 6_000_000.0):
            manager.info.record("heartbeat.dn0", t, 1.0)
        manager.info.record("heartbeat.dn1", 0.0, 1.0)
        report = manager.tick(6_000_000.0)
        assert any("failover dn1" in a for a in report.healing_actions)
        assert manager.changes.online_nodes() == ["dn0"]

    def test_memory_pressure_shrinks_buffer_pool(self):
        cluster = MppCluster(num_dns=1)
        manager = AutonomousManager(cluster)
        before = manager.changes.get("buffer_pool_mb")
        manager.collect(0.0, extra_metrics={"memory_utilization": 0.97})
        manager.tick(0.0)
        assert manager.changes.get("buffer_pool_mb") == before / 2
