"""Tests for deterministic randomness helpers."""

import pytest

from repro.common.rng import ZipfGenerator, make_rng, random_string, weighted_choice


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(7), make_rng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestRandomString:
    def test_length_and_alphabet(self):
        s = random_string(make_rng(3), 32, alphabet="ab")
        assert len(s) == 32
        assert set(s) <= {"a", "b"}


class TestZipf:
    def test_range(self):
        gen = ZipfGenerator(make_rng(5), n=100, theta=0.99)
        draws = [gen.next() for _ in range(1000)]
        assert all(0 <= d < 100 for d in draws)

    def test_skew_favors_head(self):
        gen = ZipfGenerator(make_rng(5), n=100, theta=1.2)
        draws = [gen.next() for _ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 5 * max(tail, 1)

    def test_theta_zero_is_roughly_uniform(self):
        gen = ZipfGenerator(make_rng(5), n=10, theta=0.0)
        draws = [gen.next() for _ in range(10_000)]
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 700 and max(counts) < 1300

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(make_rng(1), n=0)
        with pytest.raises(ValueError):
            ZipfGenerator(make_rng(1), n=10, theta=-1.0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = make_rng(11)
        picks = [weighted_choice(rng, ["a", "b"], [0.95, 0.05]) for _ in range(1000)]
        assert picks.count("a") > 850

    def test_single_item(self):
        assert weighted_choice(make_rng(1), ["only"], [1.0]) == "only"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a"], [0.5, 0.5])
