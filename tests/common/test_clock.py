"""Tests for simulated, drifting and hybrid logical clocks."""

import pytest

from repro.common.clock import DriftingClock, HlcTimestamp, HybridLogicalClock, SimClock
from repro.common.errors import ConfigError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(150.0) == 150.0
        assert clock.now_us == 150.0

    def test_advance_accumulates(self):
        clock = SimClock(start_us=100.0)
        clock.advance(50.0)
        clock.advance(25.0)
        assert clock.now_us == 175.0

    def test_unit_conversions(self):
        clock = SimClock(start_us=2_500_000.0)
        assert clock.now_ms == 2500.0
        assert clock.now_s == 2.5

    def test_cannot_go_backwards(self):
        with pytest.raises(ConfigError):
            SimClock().advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = SimClock(start_us=100.0)
        clock.advance_to(50.0)  # no-op
        assert clock.now_us == 100.0
        clock.advance_to(200.0)
        assert clock.now_us == 200.0


class TestDriftingClock:
    def test_no_drift_tracks_truth(self):
        truth = SimClock()
        drifting = DriftingClock(truth)
        truth.advance(1000.0)
        assert drifting.read_us() == 1000.0

    def test_skew_offsets_reading(self):
        truth = SimClock()
        drifting = DriftingClock(truth, skew_us=500.0)
        truth.advance(1000.0)
        assert drifting.read_us() == 1500.0

    def test_drift_scales_with_time(self):
        truth = SimClock()
        drifting = DriftingClock(truth, drift_ppm=1000.0)  # 0.1% fast
        truth.advance(1_000_000.0)
        assert drifting.read_us() == pytest.approx(1_001_000.0)

    def test_two_devices_disagree(self):
        truth = SimClock()
        a = DriftingClock(truth, skew_us=-300.0)
        b = DriftingClock(truth, skew_us=+800.0)
        truth.advance(10_000.0)
        assert a.read_us() != b.read_us()


class TestHybridLogicalClock:
    def _make(self, skew_us=0.0):
        truth = SimClock()
        return truth, HybridLogicalClock("n1", DriftingClock(truth, skew_us=skew_us))

    def test_now_strictly_increases_without_physical_progress(self):
        _, hlc = self._make()
        stamps = [hlc.now() for _ in range(5)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5

    def test_physical_progress_resets_logical(self):
        truth, hlc = self._make()
        hlc.now()
        hlc.now()
        truth.advance(100.0)
        stamp = hlc.now()
        assert stamp.logical == 0

    def test_observe_dominates_remote(self):
        _, hlc = self._make()
        remote = HlcTimestamp(physical_us=1_000_000, logical=7, node_id="n2")
        local = hlc.observe(remote)
        assert local > remote

    def test_causality_survives_skew(self):
        # Device B's clock is far behind; a message from A must still order.
        truth = SimClock()
        a = HybridLogicalClock("a", DriftingClock(truth, skew_us=1_000_000.0))
        b = HybridLogicalClock("b", DriftingClock(truth, skew_us=0.0))
        truth.advance(10.0)
        sent = a.now()
        received = b.observe(sent)
        assert received > sent
        # And b's subsequent local events keep increasing.
        assert b.now() > received

    def test_observe_equal_physical_bumps_logical(self):
        _, hlc = self._make()
        first = hlc.now()
        remote = HlcTimestamp(first.physical_us, first.logical, "n2")
        merged = hlc.observe(remote)
        assert merged.logical > first.logical
