"""Cluster-level behavior: routing, promotion, replication, maintenance."""

import pytest

from repro.cluster import MppCluster, TransactionPromotionRequired, TxnMode
from repro.common.errors import (
    ConfigError,
    InvalidTransactionState,
    SerializationConflict,
)
from repro.storage import Column, DataType, Distribution, TableSchema
from repro.storage.table import shard_of_value


def make_cluster(num_dns=3, mode=TxnMode.GTM_LITE):
    cluster = MppCluster(num_dns=num_dns, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    cluster.create_table(TableSchema(
        "dim", [Column("k", DataType.INT), Column("label", DataType.TEXT)], "k",
        distribution=Distribution.REPLICATION))
    return cluster


class TestRouting:
    def test_rows_land_on_their_shard(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        for k in range(9):
            txn.insert("t", {"k": k, "v": k})
        txn.commit()
        for k in range(9):
            dn = cluster.dns[shard_of_value(k, 3)]
            snapshot = dn.local_snapshot()
            assert dn.read("t", k, snapshot) is not None

    def test_replicated_table_on_every_node(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("dim", {"k": 1, "label": "x"})
        txn.commit()
        for dn in cluster.dns:
            assert dn.read("dim", 1, dn.local_snapshot()) is not None

    def test_single_shard_can_read_replicated(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("dim", {"k": 1, "label": "x"})
        txn.insert("t", {"k": 0, "v": 0})
        txn.commit()
        local = session.begin(multi_shard=False)
        local.read("t", 0)
        assert local.read("dim", 1)["label"] == "x"
        local.commit()


class TestPromotion:
    def test_crossing_shards_raises(self):
        cluster = make_cluster()
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        seed.insert("t", {"k": 0, "v": 0})
        seed.insert("t", {"k": 1, "v": 0})
        seed.commit()
        txn = session.begin(multi_shard=False)
        txn.read("t", 0)
        with pytest.raises(TransactionPromotionRequired):
            txn.read("t", 1)
        txn.abort()

    def test_writing_replicated_from_local_raises(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        with pytest.raises(TransactionPromotionRequired):
            txn.insert("dim", {"k": 2, "label": "y"})
        txn.abort()

    def test_run_transaction_auto_promotes(self):
        cluster = make_cluster()
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        seed.insert("t", {"k": 0, "v": 0})
        seed.insert("t", {"k": 1, "v": 0})
        seed.commit()

        def body(txn):
            txn.update("t", 0, {"v": 1})
            txn.update("t", 1, {"v": 1})

        session.run_transaction(body, multi_shard=False)
        check = session.begin(multi_shard=True)
        assert check.read("t", 0)["v"] == 1
        assert check.read("t", 1)["v"] == 1
        check.commit()

    def test_scan_from_local_txn_requires_single_node(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        with pytest.raises(TransactionPromotionRequired):
            list(txn.scan("t"))
        txn.abort()


class TestRetries:
    def test_run_transaction_retries_conflicts(self):
        cluster = make_cluster(num_dns=1)
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        seed.insert("t", {"k": 0, "v": 0})
        seed.commit()
        attempts = []

        def body(txn):
            attempts.append(1)
            txn.read("t", 0)   # pins the snapshot on the data node
            if len(attempts) == 1:
                # Simulate a loser: another txn slips in and commits first.
                rival = session.begin(multi_shard=False)
                rival.update("t", 0, {"v": 100})
                rival.commit()
            txn.update("t", 0, {"v": 7})

        session.run_transaction(body, multi_shard=False)
        assert len(attempts) == 2
        check = session.begin(multi_shard=True)
        assert check.read("t", 0)["v"] == 7
        check.commit()


class TestLifecycleErrors:
    def test_commit_twice_rejected(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_ops_after_commit_rejected(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.read("t", 0)

    def test_abort_is_idempotent(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        txn.abort()
        txn.abort()

    def test_classical_mode_ignores_single_shard_flag(self):
        cluster = make_cluster(mode=TxnMode.CLASSICAL)
        session = cluster.session()
        txn = session.begin(multi_shard=False)
        assert txn.is_multi_shard
        txn.commit()
        assert cluster.gtm.stats.begins >= 1

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            MppCluster(num_dns=0)
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.session(cn_index=99)


class TestMaintenance:
    def test_vacuum_reclaims_versions(self):
        cluster = make_cluster(num_dns=1)
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        seed.insert("t", {"k": 0, "v": 0})
        seed.commit()
        for v in range(5):
            session.run_transaction(lambda t, v=v: t.update("t", 0, {"v": v}))
        assert len(cluster.dns[0].heap("t").version_chain(0)) == 6
        removed = cluster.vacuum()
        assert removed == 5

    def test_lco_pruning_under_load(self):
        cluster = make_cluster(num_dns=2)
        cluster.lco_prune_interval = 16
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        for k in range(4):
            seed.insert("t", {"k": k, "v": 0})
        seed.commit()
        for i in range(200):
            session.run_transaction(
                lambda t, i=i: t.update("t", i % 4, {"v": i}),
                multi_shard=(i % 10 == 0))
        total_lco = sum(len(dn.ltm.lco) for dn in cluster.dns)
        assert total_lco < 100  # pruned, not ~200+

    def test_gtm_horizon_tracks_active_readers(self):
        cluster = make_cluster()
        session = cluster.session()
        reader = session.begin(multi_shard=True)
        horizon_with_reader = cluster.gtm.snapshot_horizon()
        assert horizon_with_reader <= reader.gxid
        reader.commit()
        assert cluster.gtm.snapshot_horizon() > horizon_with_reader


class TestAbortClassification:
    """``txn.abort.*`` stats derive from what was actually written, mirroring
    how the commit side classifies — a global transaction that wrote one
    shard (or nothing) is not a multi-shard abort."""

    def test_global_abort_one_shard_counts_single(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 0, "v": 1})       # one shard touched
        txn.abort()
        assert cluster.stats.aborts_single_shard == 1
        assert cluster.stats.aborts_multi_shard == 0

    def test_global_abort_two_shards_counts_multi(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 0, "v": 1})
        txn.insert("t", {"k": 1, "v": 1})       # second shard
        txn.abort()
        assert cluster.stats.aborts_single_shard == 0
        assert cluster.stats.aborts_multi_shard == 1

    def test_read_only_global_abort_counts_single(self):
        cluster = make_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.read("t", 0)                        # no writes at all
        txn.abort()
        assert cluster.stats.aborts_single_shard == 1
        assert cluster.stats.aborts_multi_shard == 0
