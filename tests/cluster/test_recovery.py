"""Tests for 2PC in-doubt resolution after coordinator failure."""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.cluster.recovery import in_doubt_count, resolve_in_doubt
from repro.storage import Column, DataType, TableSchema


@pytest.fixture
def cluster():
    c = MppCluster(num_dns=2, mode=TxnMode.GTM_LITE)
    c.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    session = c.session()
    init = session.begin(multi_shard=True)
    for k in range(4):
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return c


def start_multi_shard_write(cluster, value):
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    txn.update("t", 0, {"v": value})   # DN0
    txn.update("t", 1, {"v": value})   # DN1
    return txn


def read_state(cluster):
    reader = cluster.session().begin(multi_shard=True)
    state = {k: reader.read("t", k)["v"] for k in range(4)}
    reader.commit()
    return state


class TestCrashBeforeGtmCommit:
    def test_presumed_abort(self, cluster):
        txn = start_multi_shard_write(cluster, 7)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        # coordinator dies here: prepared everywhere, no GTM decision
        assert in_doubt_count(cluster) == 2
        report = resolve_in_doubt(cluster)
        assert report.presumed_aborted_gxids == [txn.gxid]
        assert report.resolved == 2
        assert in_doubt_count(cluster) == 0
        assert read_state(cluster) == {0: 0, 1: 0, 2: 0, 3: 0}

    def test_late_coordinator_cannot_commit(self, cluster):
        txn = start_multi_shard_write(cluster, 7)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        resolve_in_doubt(cluster)
        # The zombie coordinator wakes up and tries to finish: refused.
        with pytest.raises(Exception):
            steps.commit_at_gtm()


class TestCrashAfterGtmCommit:
    def test_roll_forward(self, cluster):
        txn = start_multi_shard_write(cluster, 9)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        # coordinator dies before confirming either node
        report = resolve_in_doubt(cluster)
        assert sum(len(v) for v in report.rolled_forward.values()) == 2
        assert not report.presumed_aborted_gxids
        assert read_state(cluster)[0] == 9
        assert read_state(cluster)[1] == 9

    def test_partial_confirmation_completes(self, cluster):
        txn = start_multi_shard_write(cluster, 9)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        steps.confirm_at(steps.pending_nodes[0])
        # crash: one node confirmed, the other in doubt
        assert in_doubt_count(cluster) == 1
        report = resolve_in_doubt(cluster)
        assert report.resolved == 1
        state = read_state(cluster)
        assert state[0] == 9 and state[1] == 9


class TestMixedInDoubt:
    def test_each_transaction_resolved_by_its_own_outcome(self, cluster):
        # T1: prepared, GTM-committed (roll forward).
        t1 = start_multi_shard_write(cluster, 11)
        s1 = t1.commit_stepwise()
        s1.prepare_all()
        s1.commit_at_gtm()
        # T2: prepared on disjoint keys, never decided (presumed abort).
        session = cluster.session()
        t2 = session.begin(multi_shard=True)
        t2.update("t", 2, {"v": 22})
        t2.update("t", 3, {"v": 22})
        s2 = t2.commit_stepwise()
        s2.prepare_all()

        report = resolve_in_doubt(cluster)
        assert report.presumed_aborted_gxids == [t2.gxid]
        state = read_state(cluster)
        assert state == {0: 11, 1: 11, 2: 0, 3: 0}

    def test_recovery_is_idempotent(self, cluster):
        txn = start_multi_shard_write(cluster, 5)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        resolve_in_doubt(cluster)
        second = resolve_in_doubt(cluster)
        assert second.resolved == 0
        assert not second.presumed_aborted_gxids

    def test_traffic_continues_after_recovery(self, cluster):
        txn = start_multi_shard_write(cluster, 5)
        steps = txn.commit_stepwise()
        steps.prepare_all()
        resolve_in_doubt(cluster)
        session = cluster.session()
        session.run_transaction(lambda t: t.update("t", 0, {"v": 1}))
        assert read_state(cluster)[0] == 1


class TestMultipleInDoubtPerNode:
    def test_two_in_doubt_on_one_node_both_resolved(self, cluster):
        """Pass 2 mutates the prepared set while resolving; with two
        in-doubt transactions on the same node (one rolling forward, one
        rolling back) every one must still be visited exactly once."""
        t1 = start_multi_shard_write(cluster, 31)       # keys 0 (DN0), 1 (DN1)
        s1 = t1.commit_stepwise()
        s1.prepare_all()
        s1.commit_at_gtm()
        session = cluster.session()
        t2 = session.begin(multi_shard=True)
        t2.update("t", 2, {"v": 32})                    # DN0
        t2.update("t", 3, {"v": 32})                    # DN1
        s2 = t2.commit_stepwise()
        s2.prepare_all()
        # Both nodes hold two prepared transactions with opposite fates.
        assert in_doubt_count(cluster) == 4
        report = resolve_in_doubt(cluster)
        assert report.resolved == 4
        assert report.presumed_aborted_gxids == [t2.gxid]
        assert in_doubt_count(cluster) == 0
        assert read_state(cluster) == {0: 31, 1: 31, 2: 0, 3: 0}

    def test_three_in_doubt_same_node_all_resolved(self, cluster):
        """Single-node pile-up: several prepared transactions on one DN."""
        session = cluster.session()
        txns = []
        for n, key in enumerate((0, 2), start=1):       # both keys on DN0
            t = session.begin(multi_shard=True)
            t.update("t", key, {"v": 40 + n})
            s = t.commit_stepwise()
            s.prepare_all()
            if n == 1:
                s.commit_at_gtm()
            txns.append(t)
        assert in_doubt_count(cluster) == 2
        report = resolve_in_doubt(cluster)
        assert report.resolved == 2
        assert in_doubt_count(cluster) == 0
        state = read_state(cluster)
        assert state[0] == 41 and state[2] == 0
