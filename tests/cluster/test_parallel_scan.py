"""Parallel cross-DN scan accounting in ``GlobalTransaction.scan``.

The coordinator fans a scan out to every data node and waits for the
slowest one — the client's simulated cursor must advance by the *max*
across DNs, not the serial sum, while ``sys.wait_events`` still records
every node's individual service time.
"""

import pytest

from repro.cluster import MppCluster
from repro.obs.waits import WAIT_DN_SCAN
from repro.storage.table import Column, Distribution, TableSchema
from repro.storage.types import DataType

NUM_DNS = 4


def build_cluster():
    cluster = MppCluster(num_dns=NUM_DNS)
    schema = TableSchema(
        "t",
        [Column("id", DataType.INT), Column("v", DataType.INT)],
        primary_key="id",
        distribution=Distribution.HASH,
        distribution_column="id",
    )
    cluster.create_table(schema)
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for i in range(40):
        txn.insert("t", {"id": i, "v": i * 10})
    txn.commit()
    return cluster


class TestParallelScanAccounting:
    def test_cursor_advances_by_max_not_sum(self):
        cluster = build_cluster()
        model = cluster.profile.mpp
        session = cluster.session(track_costs=True)
        txn = session.begin(multi_shard=True)
        ctx = txn._ctx
        before = ctx.t_us
        rows = list(txn.scan("t"))
        after = ctx.t_us
        txn.commit()
        assert len(rows) == 40
        elapsed = after - before

        # Serial components the scan legitimately pays per DN: attach
        # (begin + merge-snapshot RPCs) happens once per node; the scan
        # statement itself runs on all nodes concurrently.
        attach_us = NUM_DNS * (
            2 * model.lan_hop_us + model.dn_begin_us
            + 2 * model.lan_hop_us + model.dn_merge_snapshot_us)
        cn_route = 2 * model.lan_hop_us + model.cn_route_us
        parallel_scan_us = 2 * model.lan_hop_us + model.dn_stmt_us
        expected = cn_route + attach_us + parallel_scan_us
        assert elapsed == pytest.approx(expected)
        # Strictly cheaper than the old serial accounting.
        serial = cn_route + attach_us + NUM_DNS * parallel_scan_us
        assert elapsed < serial

    def test_per_dn_service_still_attributed_in_wait_events(self):
        cluster = build_cluster()
        base = dict(
            (event, count) for event, count, *_ in cluster.obs.waits.rows())
        session = cluster.session(track_costs=True)
        txn = session.begin(multi_shard=True)
        list(txn.scan("t"))
        txn.commit()
        waits = {event: (count, total)
                 for event, count, total, _avg, _mx in cluster.obs.waits.rows()}
        count, total = waits[WAIT_DN_SCAN]
        new_events = count - base.get(WAIT_DN_SCAN, 0)
        assert new_events == NUM_DNS, "one wait record per data node"

    def test_replicated_scan_unchanged(self):
        cluster = MppCluster(num_dns=NUM_DNS)
        schema = TableSchema(
            "r", [Column("id", DataType.INT)], primary_key="id",
            distribution=Distribution.REPLICATION,
        )
        cluster.create_table(schema)
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        for i in range(5):
            txn.insert("r", {"id": i})
        txn.commit()
        txn = cluster.session().begin(multi_shard=True)
        assert len(list(txn.scan("r"))) == 5
        txn.commit()

    def test_scan_shard_reads_one_node_only(self):
        cluster = build_cluster()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        per_dn = [list(txn.scan_shard("t", dn)) for dn in range(NUM_DNS)]
        txn.commit()
        assert sum(len(rows) for rows in per_dn) == 40
        assert all(len(rows) < 40 for rows in per_dn)
        seen = {key for rows in per_dn for key, _values in rows}
        assert len(seen) == 40

    def test_shard_column_store_sees_mvcc_snapshot(self):
        cluster = MppCluster(num_dns=2)
        schema = TableSchema(
            "c",
            [Column("id", DataType.INT), Column("v", DataType.INT)],
            primary_key="id",
            distribution=Distribution.HASH,
            distribution_column="id",
        )
        cluster.create_table(schema)
        writer = cluster.session().begin(multi_shard=True)
        for i in range(10):
            writer.insert("c", {"id": i, "v": i})
        writer.commit()
        reader = cluster.session().begin(multi_shard=True)
        # Uncommitted concurrent write must be invisible to the snapshot.
        concurrent = cluster.session().begin(multi_shard=True)
        concurrent.insert("c", {"id": 100, "v": 100})
        stores = [reader.shard_column_store("c", dn) for dn in range(2)]
        total = sum(s.row_count for s in stores)
        concurrent.abort()
        reader.commit()
        assert total == 10
