"""Two MppClusters coexisting in one process: the geo groundwork.

The seed assumed one cluster per process.  The geo layer stands up N
regions — each a full CN+DN+GTM cluster — side by side, so nothing shared
may collide: telemetry namespaces, HA fabric endpoints, plan caches,
simulated clocks.  These tests pin that isolation down.
"""

from repro.cluster.ha import HaManager
from repro.cluster.mpp import MppCluster
from repro.net.fabric import Fabric
from repro.sql import SqlEngine
from repro.storage import Column, DataType, TableSchema
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


def run_workload(cluster, txns=20):
    load_tpcc(cluster, num_warehouses=2)
    workload = TpccLiteWorkload(num_warehouses=2, multi_shard_fraction=0.1,
                                seed=3)
    session = cluster.session(track_costs=True)
    stream = workload.stream(home_warehouse=0)
    for _ in range(txns):
        spec = next(stream)
        session.run_transaction(spec.body, multi_shard=spec.multi_shard)
    engine = SqlEngine(cluster)
    result = engine.execute(
        "SELECT name, kind, value FROM sys.metrics ORDER BY name")
    return list(result.rows)


class TestTelemetryIsolation:
    def test_interleaved_clusters_replay_solo_telemetry(self):
        solo = run_workload(MppCluster(num_dns=2))
        a = MppCluster(num_dns=2, name="ra")
        b = MppCluster(num_dns=2, name="rb")
        # Interleave construction and execution; each must match the solo run.
        rows_a = run_workload(a)
        rows_b = run_workload(b)
        assert rows_a == solo
        assert rows_b == solo

    def test_clusters_have_independent_clocks_and_gtm(self):
        a = MppCluster(num_dns=2)
        b = MppCluster(num_dns=2)
        schema = TableSchema(
            "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k")
        a.create_table(schema)
        session = a.session(track_costs=True)
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 1, "v": 1})
        txn.commit()
        assert a.gtm.stats.total_requests > 0
        assert b.gtm.stats.total_requests == 0
        assert b.obs.clock.now_us == 0.0
        assert a.obs.clock.now_us > 0.0


class TestSharedFabricNamespacing:
    def test_two_named_clusters_share_one_ha_fabric(self):
        fabric = Fabric()
        a = MppCluster(num_dns=2, name="east")
        b = MppCluster(num_dns=2, name="west")
        # Without namespacing both HaManagers would register "dn0" and the
        # second construction would explode at registration time.
        ha_a = HaManager(a, fabric=fabric)
        ha_b = HaManager(b, fabric=fabric)
        assert fabric.reachable("east:dn0", "east:dn0-standby")
        assert fabric.reachable("west:dn0", "west:dn0-standby")
        # Partitioning one cluster's standby leaves the other untouched.
        ha_a.partition_standby(0)
        assert ha_a.standby_partitioned(0)
        assert not ha_b.standby_partitioned(0)

    def test_failover_on_shared_fabric_stays_namespaced(self):
        fabric = Fabric()
        a = MppCluster(num_dns=2, name="east")
        b = MppCluster(num_dns=2, name="west")
        schema = TableSchema(
            "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k")
        a.create_table(schema)
        b.create_table(schema)
        ha_a = HaManager(a, fabric=fabric)
        HaManager(b, fabric=fabric)
        session = a.session()
        txn = session.begin(multi_shard=True)
        for k in range(8):
            txn.insert("t", {"k": k, "v": k})
        txn.commit()
        ha_a.fail_and_promote(0)
        # The promoted replacement re-registered under the namespaced name.
        assert fabric.reachable("east:dn0", "east:dn0-standby")
        assert fabric.reachable("west:dn0", "west:dn0-standby")
        reader = a.session().begin(multi_shard=True)
        assert all(reader.read("t", k)["v"] == k for k in range(8))
        reader.commit()

    def test_unnamed_cluster_keeps_seed_endpoint_names(self):
        cluster = MppCluster(num_dns=2)
        ha = HaManager(cluster)
        assert ha.fabric.reachable("dn0", "dn0-standby")
