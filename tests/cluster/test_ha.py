"""Tests for high availability: replication and failover."""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.cluster.ha import HaManager
from repro.common.errors import ConfigError
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value


@pytest.fixture
def ha_cluster():
    cluster = MppCluster(num_dns=2)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    ha = HaManager(cluster)
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for k in range(10):
        txn.insert("t", {"k": k, "v": k * 10})
    txn.commit()
    return cluster, ha, session


class TestReplication:
    def test_commits_ship_to_standby(self, ha_cluster):
        cluster, ha, _ = ha_cluster
        total = sum(ha.standby(i).row_count("t") for i in range(2))
        assert total == 10

    def test_aborts_do_not_ship(self, ha_cluster):
        cluster, ha, session = ha_cluster
        before = sum(ha.standby(i).transactions_applied for i in range(2))
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 100, "v": 1})
        txn.abort()
        after = sum(ha.standby(i).transactions_applied for i in range(2))
        assert after == before

    def test_updates_and_deletes_replicate(self, ha_cluster):
        cluster, ha, session = ha_cluster
        session.run_transaction(lambda t: t.update("t", 0, {"v": 999}))
        session.run_transaction(lambda t: t.delete("t", 1))
        dn0 = shard_of_value(0, 2)
        assert ha.standby(dn0).rows("t")[0]["v"] == 999
        dn1 = shard_of_value(1, 2)
        assert 1 not in ha.standby(dn1).rows("t")


class TestFailover:
    def test_committed_data_survives(self, ha_cluster):
        cluster, ha, session = ha_cluster
        report = ha.fail_and_promote(0)
        assert report.rows_restored == ha.standby(0).row_count("t")
        reader = session.begin(multi_shard=True)
        values = {k: reader.read("t", k)["v"] for k in range(10)}
        reader.commit()
        assert values == {k: k * 10 for k in range(10)}

    def test_inflight_transactions_are_lost(self, ha_cluster):
        cluster, ha, session = ha_cluster
        victim_key = next(k for k in range(10) if shard_of_value(k, 2) == 0)
        txn = session.begin(multi_shard=False)
        txn.read("t", victim_key)
        txn.update("t", victim_key, {"v": -1})
        report = ha.fail_and_promote(0)
        assert report.inflight_lost == 1
        # The uncommitted write is gone; committed state intact.
        reader = session.begin(multi_shard=True)
        assert reader.read("t", victim_key)["v"] == victim_key * 10
        reader.commit()

    def test_traffic_continues_after_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(1)
        session.run_transaction(lambda t: t.update("t", 0, {"v": 1}))
        session.run_transaction(lambda t: t.update("t", 3, {"v": 3}))
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 1
        assert reader.read("t", 3)["v"] == 3
        reader.commit()

    def test_replication_resumes_after_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(0)
        key_on_dn0 = next(k for k in range(10) if shard_of_value(k, 2) == 0)
        session.run_transaction(
            lambda t: t.update("t", key_on_dn0, {"v": 777}))
        assert ha.standby(0).rows("t")[key_on_dn0]["v"] == 777

    def test_double_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(0)
        session.run_transaction(lambda t: t.update("t", 0, {"v": 5}))
        ha.fail_and_promote(0)
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 5
        reader.commit()
        assert len(ha.failovers) == 2

    def test_bad_index_rejected(self, ha_cluster):
        cluster, ha, _ = ha_cluster
        with pytest.raises(ConfigError):
            ha.fail_and_promote(9)

    def test_multi_shard_commits_survive_failover_of_one_node(self, ha_cluster):
        cluster, ha, session = ha_cluster
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": 42})
        txn.update("t", 1, {"v": 43})
        txn.commit()
        ha.fail_and_promote(0)
        ha.fail_and_promote(1)
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 42
        assert reader.read("t", 1)["v"] == 43
        reader.commit()
