"""Tests for high availability: replication and failover."""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.cluster.ha import HaManager
from repro.common.errors import ConfigError
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value


@pytest.fixture
def ha_cluster():
    cluster = MppCluster(num_dns=2)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    ha = HaManager(cluster)
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for k in range(10):
        txn.insert("t", {"k": k, "v": k * 10})
    txn.commit()
    return cluster, ha, session


class TestReplication:
    def test_commits_ship_to_standby(self, ha_cluster):
        cluster, ha, _ = ha_cluster
        total = sum(ha.standby(i).row_count("t") for i in range(2))
        assert total == 10

    def test_aborts_do_not_ship(self, ha_cluster):
        cluster, ha, session = ha_cluster
        before = sum(ha.standby(i).transactions_applied for i in range(2))
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": 100, "v": 1})
        txn.abort()
        after = sum(ha.standby(i).transactions_applied for i in range(2))
        assert after == before

    def test_updates_and_deletes_replicate(self, ha_cluster):
        cluster, ha, session = ha_cluster
        session.run_transaction(lambda t: t.update("t", 0, {"v": 999}))
        session.run_transaction(lambda t: t.delete("t", 1))
        dn0 = shard_of_value(0, 2)
        assert ha.standby(dn0).rows("t")[0]["v"] == 999
        dn1 = shard_of_value(1, 2)
        assert 1 not in ha.standby(dn1).rows("t")


class TestFailover:
    def test_committed_data_survives(self, ha_cluster):
        cluster, ha, session = ha_cluster
        report = ha.fail_and_promote(0)
        assert report.rows_restored == ha.standby(0).row_count("t")
        reader = session.begin(multi_shard=True)
        values = {k: reader.read("t", k)["v"] for k in range(10)}
        reader.commit()
        assert values == {k: k * 10 for k in range(10)}

    def test_inflight_transactions_are_lost(self, ha_cluster):
        cluster, ha, session = ha_cluster
        victim_key = next(k for k in range(10) if shard_of_value(k, 2) == 0)
        txn = session.begin(multi_shard=False)
        txn.read("t", victim_key)
        txn.update("t", victim_key, {"v": -1})
        report = ha.fail_and_promote(0)
        assert report.inflight_lost == 1
        # The uncommitted write is gone; committed state intact.
        reader = session.begin(multi_shard=True)
        assert reader.read("t", victim_key)["v"] == victim_key * 10
        reader.commit()

    def test_traffic_continues_after_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(1)
        session.run_transaction(lambda t: t.update("t", 0, {"v": 1}))
        session.run_transaction(lambda t: t.update("t", 3, {"v": 3}))
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 1
        assert reader.read("t", 3)["v"] == 3
        reader.commit()

    def test_replication_resumes_after_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(0)
        key_on_dn0 = next(k for k in range(10) if shard_of_value(k, 2) == 0)
        session.run_transaction(
            lambda t: t.update("t", key_on_dn0, {"v": 777}))
        assert ha.standby(0).rows("t")[key_on_dn0]["v"] == 777

    def test_double_failover(self, ha_cluster):
        cluster, ha, session = ha_cluster
        ha.fail_and_promote(0)
        session.run_transaction(lambda t: t.update("t", 0, {"v": 5}))
        ha.fail_and_promote(0)
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 5
        reader.commit()
        assert len(ha.failovers) == 2

    def test_bad_index_rejected(self, ha_cluster):
        cluster, ha, _ = ha_cluster
        with pytest.raises(ConfigError):
            ha.fail_and_promote(9)

    def test_multi_shard_commits_survive_failover_of_one_node(self, ha_cluster):
        cluster, ha, session = ha_cluster
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": 42})
        txn.update("t", 1, {"v": 43})
        txn.commit()
        ha.fail_and_promote(0)
        ha.fail_and_promote(1)
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 42
        assert reader.read("t", 1)["v"] == 43
        reader.commit()


class TestFailoverCrashPaths:
    """Crash-path interactions between failover, 2PC and recovery."""

    def test_stranded_global_is_poisoned_not_zombied(self, ha_cluster):
        """A failover must not strand an in-flight global transaction: its
        handle is poisoned so commit fails cleanly instead of committing a
        write the replacement node never heard of."""
        from repro.common.errors import TransactionAborted

        cluster, ha, session = ha_cluster
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": -5})
        txn.update("t", 1, {"v": -5})
        report = ha.fail_and_promote(shard_of_value(0, 2))
        assert report.inflight_poisoned == 1
        with pytest.raises(TransactionAborted):
            txn.commit()
        from repro.cluster import in_doubt_count
        assert in_doubt_count(cluster) == 0
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 0
        assert reader.read("t", 1)["v"] == 10
        reader.commit()

    def test_gtm_committed_stage_survives_failover(self, ha_cluster):
        """Prepared redo staged on the standby carries a GTM-committed-but-
        unconfirmed write across the primary's crash (rolled forward during
        promotion)."""
        cluster, ha, session = ha_cluster
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": 700})
        txn.update("t", 1, {"v": 700})
        steps = txn.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        # The node holding key 0 dies before its confirmation arrives.
        report = ha.fail_and_promote(shard_of_value(0, 2))
        assert report.stages_rolled_forward == 1
        from repro.cluster import in_doubt_count, resolve_in_doubt
        resolve_in_doubt(cluster)
        assert in_doubt_count(cluster) == 0
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 700
        assert reader.read("t", 1)["v"] == 700
        reader.commit()

    def test_undecided_stage_is_presumed_aborted(self, ha_cluster):
        """Coordinator dead after prepare, no GTM decision, then the node
        fails: the stage re-instates as PREPARED and recovery presumes
        abort.  (With a *live* coordinator the handle is poisoned instead
        and the stage drops — see the poisoning test above.)"""
        from repro.faults import (
            ACT_CRASH_COORDINATOR, FP_COORD_AFTER_PREPARE,
            CoordinatorCrash, FaultInjector,
        )

        cluster, ha, session = ha_cluster
        injector = FaultInjector(seed=1).bind(cluster)
        injector.arm(FP_COORD_AFTER_PREPARE, ACT_CRASH_COORDINATOR)
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": 800})
        txn.update("t", 1, {"v": 800})
        with pytest.raises(CoordinatorCrash):
            txn.commit()
        report = ha.fail_and_promote(shard_of_value(0, 2))
        assert report.prepared_reinstated == 1
        from repro.cluster import in_doubt_count, resolve_in_doubt
        resolve_in_doubt(cluster)
        assert in_doubt_count(cluster) == 0
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 0
        assert reader.read("t", 1)["v"] == 10
        reader.commit()

    def test_late_stage_resolution_does_not_clobber_newer_commit(self, ha_cluster):
        """Standby write-order regression: T1 is GTM-committed but never
        confirmed; T2 builds on T1's version via UPGRADE and fully commits;
        recovery then rolls T1 forward.  The standby must keep T2's value —
        and a failover afterwards must promote T2's value, not T1's."""
        cluster, ha, session = ha_cluster
        t1 = session.begin(multi_shard=True)
        t1.update("t", 0, {"v": 111})
        t1.update("t", 1, {"v": 111})
        s1 = t1.commit_stepwise()
        s1.prepare_all()
        s1.commit_at_gtm()                       # decided, never confirmed
        t2 = session.begin(multi_shard=True)
        t2.update("t", 0, {"v": 222})            # builds on T1 via UPGRADE
        t2.update("t", 1, {"v": 222})
        t2.commit()
        from repro.cluster import resolve_in_doubt
        resolve_in_doubt(cluster)                # rolls T1 forward, late
        dn0 = shard_of_value(0, 2)
        assert ha.standby(dn0).rows("t")[0]["v"] == 222
        ha.fail_and_promote(dn0)
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 222
        reader.commit()

    def test_dependent_stages_both_roll_forward_in_order(self, ha_cluster):
        """Two GTM-committed stages on the same key (the second built on the
        first) replay in stage order during promotion: the later value wins."""
        cluster, ha, session = ha_cluster
        t1 = session.begin(multi_shard=True)
        t1.update("t", 0, {"v": 111})
        t1.update("t", 1, {"v": 111})
        s1 = t1.commit_stepwise()
        s1.prepare_all()
        s1.commit_at_gtm()
        t2 = session.begin(multi_shard=True)
        t2.update("t", 0, {"v": 222})
        t2.update("t", 1, {"v": 222})
        s2 = t2.commit_stepwise()
        s2.prepare_all()
        s2.commit_at_gtm()
        dn0 = shard_of_value(0, 2)
        report = ha.fail_and_promote(dn0)
        assert report.stages_rolled_forward == 2
        from repro.cluster import in_doubt_count, resolve_in_doubt
        resolve_in_doubt(cluster)
        assert in_doubt_count(cluster) == 0
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 222
        assert reader.read("t", 1)["v"] == 222
        reader.commit()

    def test_coordinator_death_plus_participant_failure(self, ha_cluster):
        """Composed failure: the coordinator dies between confirmations AND
        the unconfirmed participant then fails.  The GTM-committed write must
        survive both, and recovery must leave nothing in doubt."""
        from repro.faults import (
            ACT_CRASH_COORDINATOR, FP_COORD_BETWEEN_CONFIRMS,
            CoordinatorCrash, FaultInjector,
        )

        cluster, ha, session = ha_cluster
        injector = FaultInjector(seed=1).bind(cluster)
        injector.arm(FP_COORD_BETWEEN_CONFIRMS, ACT_CRASH_COORDINATOR)
        txn = session.begin(multi_shard=True)
        txn.update("t", 0, {"v": 901})
        txn.update("t", 1, {"v": 901})
        with pytest.raises(CoordinatorCrash):
            txn.commit()
        assert cluster.gtm.is_committed(txn.gxid)
        # One node confirmed, the other still PREPARED — and now it dies.
        from repro.cluster import in_doubt_count
        assert in_doubt_count(cluster) == 1
        pending_dn = next(i for i, dn in enumerate(cluster.dns)
                          if dn.ltm.prepared_xids())
        cluster.declare_node_dead(pending_dn, reason="composed failure")
        assert in_doubt_count(cluster) == 0
        reader = session.begin(multi_shard=True)
        assert reader.read("t", 0)["v"] == 901
        assert reader.read("t", 1)["v"] == 901
        reader.commit()
