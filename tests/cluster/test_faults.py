"""Fault injection through the 2PC hot paths: retry, escalation, degradation."""

import pytest

from repro.cluster import MppCluster, in_doubt_count
from repro.cluster.ha import HaManager
from repro.common.errors import (
    ConfigError,
    ShardReadOnly,
    TransactionAborted,
    TransactionError,
)
from repro.faults import (
    ACT_CRASH_COORDINATOR,
    ACT_CRASH_DN,
    ACT_DELAY,
    ACT_DROP,
    ACT_TIMEOUT,
    FP_CONFIRM_BEFORE,
    FP_COORD_AFTER_GTM_COMMIT,
    FP_GTM_COMMIT,
    FP_PREPARE_AFTER,
    FP_PREPARE_BEFORE,
    FP_REPLICATE,
    CoordinatorCrash,
    FaultInjector,
    InjectedTimeout,
)
from repro.obs.waits import WAIT_FAULT_RETRY
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value


def make_cluster(with_ha: bool = True):
    cluster = MppCluster(num_dns=2)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    ha = HaManager(cluster) if with_ha else None
    injector = FaultInjector(seed=7).bind(cluster)
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for k in range(8):
        txn.insert("t", {"k": k, "v": k})
    txn.commit()
    return cluster, ha, injector, session


def key_on(dn_index, num_dns=2, limit=8):
    return next(k for k in range(limit) if shard_of_value(k, num_dns) == dn_index)


def write_both_shards(session, marker):
    txn = session.begin(multi_shard=True)
    txn.update("t", key_on(0), {"v": marker})
    txn.update("t", key_on(1), {"v": marker})
    return txn


def read_all(session, keys=range(8)):
    reader = session.begin(multi_shard=True)
    out = {k: reader.read("t", k)["v"] for k in keys}
    reader.commit()
    return out


class TestInjectorSemantics:
    def test_unknown_failpoint_and_action_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ConfigError):
            injector.arm("no.such.failpoint", ACT_TIMEOUT)
        with pytest.raises(ConfigError):
            injector.arm(FP_PREPARE_BEFORE, "explode")

    def test_times_budget_is_consumed(self):
        injector = FaultInjector()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=2)
        for _ in range(2):
            with pytest.raises(InjectedTimeout):
                injector.fire(FP_PREPARE_BEFORE, dn=0)
        # Budget spent: the rule no longer fires.
        injector.fire(FP_PREPARE_BEFORE, dn=0)
        assert injector.injected_count == 2

    def test_match_filter_scopes_to_one_node(self):
        injector = FaultInjector()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=-1, match={"dn": 1})
        injector.fire(FP_PREPARE_BEFORE, dn=0)      # no match, no fault
        with pytest.raises(InjectedTimeout):
            injector.fire(FP_PREPARE_BEFORE, dn=1)

    def test_probability_gate_is_seed_deterministic(self):
        def firings(seed):
            injector = FaultInjector(seed=seed)
            injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=-1,
                         probability=0.5)
            hits = []
            for n in range(20):
                try:
                    injector.fire(FP_PREPARE_BEFORE, dn=0)
                    hits.append(False)
                except InjectedTimeout:
                    hits.append(True)
            return hits

        assert firings(3) == firings(3)
        assert firings(3) != firings(4)        # different schedule
        assert any(firings(3)) and not all(firings(3))

    def test_disabled_injector_never_fires(self):
        injector = FaultInjector(enabled=False)
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT)
        injector.fire(FP_PREPARE_BEFORE, dn=0)
        assert injector.injected_count == 0

    def test_history_feeds_sys_faults_rows(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, match={"dn": 0})
        txn = write_both_shards(session, 99)
        txn.commit()                       # retried through the timeout
        rows = injector.rows()
        assert len(rows) == 1
        _, failpoint, action, target, gxid, _ = rows[0]
        assert (failpoint, action, target) == (FP_PREPARE_BEFORE,
                                               ACT_TIMEOUT, "dn0")
        assert gxid == txn.gxid


class TestCoordinatorRetry:
    def test_transient_timeout_is_retried_to_success(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=1, match={"dn": 0})
        txn = write_both_shards(session, 50)
        txn.commit()
        assert read_all(session)[key_on(0)] == 50
        # The stall was accounted: timeout + backoff into wait.fault_retry.
        stats = cluster.obs.waits.stats(WAIT_FAULT_RETRY)
        assert stats.count == 1
        policy = cluster.retry_policy
        assert stats.total_us == policy.timeout_us + policy.backoff_us(0)

    def test_exhausted_retries_escalate_to_failover_and_abort(self):
        cluster, ha, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=-1, match={"dn": 1})
        txn = write_both_shards(session, 60)
        with pytest.raises(TransactionAborted):
            txn.commit()
        # The node was declared dead and failed over; nothing in doubt.
        assert len(ha.failovers) == 1
        assert in_doubt_count(cluster) == 0
        # No partial commit: both keys keep their old values.
        assert read_all(session) == {k: k for k in range(8)}

    def test_dn_crash_after_gtm_commit_rolls_forward(self):
        """Participant dies during confirm, after the commit decision:
        escalation promotes the standby, recovery rolls the staged prepare
        forward, and the transaction still commits everywhere."""
        cluster, ha, injector, session = make_cluster()
        injector.arm(FP_CONFIRM_BEFORE, ACT_CRASH_DN, match={"dn": 0})
        txn = write_both_shards(session, 70)
        txn.commit()
        assert cluster.gtm.is_committed(txn.gxid)
        assert len(ha.failovers) == 1
        assert in_doubt_count(cluster) == 0
        values = read_all(session)
        assert values[key_on(0)] == 70 and values[key_on(1)] == 70

    def test_dn_crash_before_prepare_aborts_globally(self):
        cluster, ha, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_CRASH_DN, match={"dn": 0})
        txn = write_both_shards(session, 80)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert not cluster.gtm.is_committed(txn.gxid)
        assert in_doubt_count(cluster) == 0
        assert read_all(session) == {k: k for k in range(8)}

    def test_crash_after_prepare_ack_lost_presumed_aborts(self):
        """The prepare landed but the node died before the ack: undecided
        at the GTM, so the re-instated stage is presumed aborted."""
        cluster, ha, injector, session = make_cluster()
        injector.arm(FP_PREPARE_AFTER, ACT_CRASH_DN, match={"dn": 1})
        txn = write_both_shards(session, 90)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert in_doubt_count(cluster) == 0
        assert read_all(session) == {k: k for k in range(8)}

    def test_poisoned_handle_refuses_further_use(self):
        cluster, ha, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_CRASH_DN, match={"dn": 0})
        txn = write_both_shards(session, 11)
        with pytest.raises(TransactionAborted):
            txn.commit()
        with pytest.raises(TransactionAborted):
            txn.read("t", 0)
        txn.abort()      # idempotent no-op on an already-poisoned handle


class TestGtmFaults:
    def test_gtm_log_write_loss_is_retried(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_GTM_COMMIT, ACT_TIMEOUT, times=1)
        txn = write_both_shards(session, 21)
        txn.commit()
        assert cluster.gtm.is_committed(txn.gxid)
        assert read_all(session)[key_on(0)] == 21

    def test_gtm_unreachable_abandons_the_coordinator(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_GTM_COMMIT, ACT_TIMEOUT, times=-1)
        txn = write_both_shards(session, 22)
        with pytest.raises(CoordinatorCrash):
            txn.commit()
        # Abandoned mid-sequence: both participants sit PREPARED until
        # recovery presumes abort.
        assert in_doubt_count(cluster) == 2
        from repro.cluster import resolve_in_doubt
        report = resolve_in_doubt(cluster)
        assert txn.gxid in report.presumed_aborted_gxids
        assert in_doubt_count(cluster) == 0
        injector.disarm_all()        # the GTM is back; verify nothing leaked
        assert read_all(session) == {k: k for k in range(8)}


class TestCoordinatorDeath:
    def test_death_after_gtm_commit_leaves_anomaly1_window(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_COORD_AFTER_GTM_COMMIT, ACT_CRASH_COORDINATOR)
        txn = write_both_shards(session, 31)
        with pytest.raises(CoordinatorCrash):
            txn.commit()
        # GTM says committed, both nodes still PREPARED: Anomaly 1, held open.
        assert cluster.gtm.is_committed(txn.gxid)
        assert in_doubt_count(cluster) == 2
        # UPGRADE makes the write visible to merged-snapshot readers even
        # before recovery closes the window.
        assert read_all(session)[key_on(0)] == 31
        from repro.cluster import resolve_in_doubt
        resolve_in_doubt(cluster)
        assert in_doubt_count(cluster) == 0
        assert read_all(session)[key_on(1)] == 31

    def test_dropped_confirm_holds_window_until_recovery(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_CONFIRM_BEFORE, ACT_DROP, match={"dn": 1})
        txn = write_both_shards(session, 41)
        txn.commit()                       # coordinator believes it delivered
        assert cluster.gtm.is_committed(txn.gxid)
        assert in_doubt_count(cluster) == 1
        assert cluster.obs.metrics.counter("faults.dropped_confirms").value == 1
        from repro.cluster import resolve_in_doubt
        report = resolve_in_doubt(cluster)
        assert sum(len(v) for v in report.rolled_forward.values()) == 1
        assert read_all(session)[key_on(1)] == 41


class TestGracefulDegradation:
    def test_no_standby_degrades_shard_to_read_only(self):
        cluster, _, injector, session = make_cluster(with_ha=False)
        injector.arm(FP_PREPARE_BEFORE, ACT_CRASH_DN, match={"dn": 0})
        txn = write_both_shards(session, 51)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert cluster.read_only_shards().keys() == {0}
        # Reads still work; writes are refused.
        assert read_all(session) == {k: k for k in range(8)}
        bad = session.begin(multi_shard=True)
        with pytest.raises(ShardReadOnly):
            bad.update("t", key_on(0), {"v": 1})
        bad.abort()
        # The healthy shard still accepts writes.
        ok = session.begin(multi_shard=True)
        ok.update("t", key_on(1), {"v": 52})
        ok.commit()
        assert read_all(session)[key_on(1)] == 52

    def test_degraded_shard_raises_critical_alert(self):
        cluster, _, injector, session = make_cluster(with_ha=False)
        injector.arm(FP_PREPARE_BEFORE, ACT_CRASH_DN, match={"dn": 0})
        txn = write_both_shards(session, 53)
        with pytest.raises(TransactionError):
            txn.commit()
        messages = [a for a in cluster.obs.alerts.alerts()
                    if a.severity == "critical" and "read-only" in a.message]
        assert messages


class TestDelays:
    def test_injected_delay_is_charged_not_fatal(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_CONFIRM_BEFORE, ACT_DELAY, times=-1, delay_us=1234.0)
        txn = write_both_shards(session, 61)
        txn.commit()
        assert read_all(session)[key_on(0)] == 61
        from repro.obs.waits import WAIT_FAULT_DELAY
        stats = cluster.obs.waits.stats(WAIT_FAULT_DELAY)
        assert stats.count == 2 and stats.total_us == pytest.approx(2468.0)


class TestReplicationFaults:
    def test_partition_queues_lag_and_heal_drains_it(self):
        cluster, ha, injector, session = make_cluster()
        ha.partition_standby(0)
        applied_before = ha.standby(0).transactions_applied
        k = key_on(0)
        # Single-shard: the local commit ships redo to the partitioned
        # standby, which queues as replication lag instead of blocking.
        session.run_transaction(lambda t: t.update("t", k, {"v": 71}))
        assert ha.replication_lag(0) >= 1
        assert ha.standby(0).transactions_applied == applied_before
        ha.heal_standby(0)
        assert ha.replication_lag(0) == 0
        assert ha.standby(0).rows("t")[k]["v"] == 71

    def test_partitioned_standby_refuses_prepare(self):
        """A node that cannot stage its prepare redo votes no."""
        cluster, ha, injector, session = make_cluster()
        ha.partition_standby(1)
        txn = write_both_shards(session, 72)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert in_doubt_count(cluster) == 0
        ha.heal_standby(1)
        assert read_all(session) == {k: k for k in range(8)}

    def test_partition_fault_action_cuts_the_link(self):
        cluster, ha, injector, session = make_cluster()
        from repro.faults import ACT_PARTITION
        injector.arm(FP_REPLICATE, ACT_PARTITION, match={"dn": 0})
        k = key_on(0)
        # A *local* commit on dn0 trips the replicate failpoint, which cuts
        # the link; the shipment itself then queues as lag.
        session.run_transaction(lambda t: t.update("t", k, {"v": 73}))
        assert ha.standby_partitioned(0)
        assert ha.replication_lag(0) == 1

    def test_lagging_partitioned_standby_cannot_promote(self):
        cluster, ha, injector, session = make_cluster()
        ha.partition_standby(0)
        k = key_on(0)
        session.run_transaction(lambda t: t.update("t", k, {"v": 74}))
        from repro.common.errors import NetworkError
        with pytest.raises(NetworkError):
            ha.fail_and_promote(0)
        # declare_node_dead falls back to read-only degradation instead.
        cluster.declare_node_dead(0, reason="test")
        assert 0 in cluster.read_only_shards()
        assert read_all(session)[k] == 74       # acknowledged commit kept


class TestTelemetryWiring:
    def test_each_fault_raises_a_deduplicated_alert(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=2, match={"dn": 0})
        txn = write_both_shards(session, 81)
        txn.commit()
        fault_alerts = [a for a in cluster.obs.alerts.alerts()
                        if a.source == "faults"]
        assert len(fault_alerts) == 1
        assert fault_alerts[0].count == 2       # two firings, one alert
        assert cluster.obs.metrics.counter("faults.injected").value == 2

    def test_reset_telemetry_clears_fault_history(self):
        cluster, _, injector, session = make_cluster()
        injector.arm(FP_PREPARE_BEFORE, ACT_TIMEOUT, times=1, match={"dn": 0})
        txn = write_both_shards(session, 91)
        txn.commit()
        assert injector.injected_count == 1
        cluster.reset_telemetry()
        assert injector.injected_count == 0
        assert injector.rows() == []
