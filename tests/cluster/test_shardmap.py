"""ShardMap unit tests: placement identity, versioning, the move machine.

The load-bearing property is *placement compatibility*: a freshly built
map (no moves yet) must place every value on exactly the DN the seed's
direct ``shard_of_value(v, num_dns)`` chose, because the placement-
sensitive suites and replay traces predict DN indices that way.
"""

import pytest

from repro.cluster.shardmap import SLOTS_PER_DN, ShardMap, ShardMapError
from repro.storage.table import shard_of_value


class TestPlacementIdentity:
    @pytest.mark.parametrize("num_dns", [2, 3, 4, 8])
    def test_fresh_map_matches_seed_placement_for_ints(self, num_dns):
        shard_map = ShardMap(num_dns)
        for k in range(-50, 500):
            assert shard_map.owner_of_value(k) == shard_of_value(k, num_dns)

    @pytest.mark.parametrize("num_dns", [2, 3, 4, 8])
    def test_fresh_map_matches_seed_placement_for_text(self, num_dns):
        shard_map = ShardMap(num_dns)
        for k in ["w1", "item-42", "", "日本語", "a" * 100]:
            assert shard_map.owner_of_value(k) == shard_of_value(k, num_dns)

    def test_shard_of_value_accepts_the_map_as_router(self):
        # The storage-layer hash function dispatches to the map when handed
        # one instead of an int — the single hook every layer routes through.
        shard_map = ShardMap(4)
        for k in range(40):
            assert shard_of_value(k, shard_map) == shard_map.owner_of_value(k)

    def test_default_slot_count(self):
        assert ShardMap(4).num_slots == 4 * SLOTS_PER_DN

    def test_slot_count_must_divide(self):
        with pytest.raises(ShardMapError):
            ShardMap(3, num_slots=256)
        with pytest.raises(ShardMapError):
            ShardMap(0)


class TestMembership:
    def test_members_and_add(self):
        shard_map = ShardMap(4)
        assert shard_map.members() == (0, 1, 2, 3)
        v = shard_map.version
        shard_map.add_member(4)
        assert shard_map.members() == (0, 1, 2, 3, 4)
        assert shard_map.version == v + 1
        assert shard_map.slot_counts()[4] == 0    # owns nothing yet

    def test_add_existing_member_raises(self):
        shard_map = ShardMap(2)
        with pytest.raises(ShardMapError):
            shard_map.add_member(1)

    def test_remove_requires_drained(self):
        shard_map = ShardMap(2)
        with pytest.raises(ShardMapError):
            shard_map.remove_member(1)      # still owns slots

    def test_remove_drained_member(self):
        shard_map = ShardMap(2)
        for slot in shard_map.slots_owned_by(1):
            shard_map.begin_move(slot, 0)
        shard_map.flip(shard_map.slots_owned_by(1))
        v = shard_map.version
        shard_map.remove_member(1)
        assert shard_map.members() == (0,)
        assert shard_map.version == v + 1
        with pytest.raises(ShardMapError):
            shard_map.remove_member(0)      # never retire the last DN


class TestMoveMachine:
    def test_begin_excludes_target_and_keeps_owner(self):
        shard_map = ShardMap(2)
        source = shard_map.begin_move(3, 0)
        assert source == 1
        assert shard_map.owner_of_slot(3) == 1          # not flipped yet
        assert shard_map.moving_target(3) == 0
        assert 3 in shard_map.excluded_slots(0)          # partial copy hidden
        assert shard_map.excluded_slots(1) == frozenset()

    def test_begin_twice_raises(self):
        shard_map = ShardMap(2)
        shard_map.begin_move(3, 0)
        with pytest.raises(ShardMapError):
            shard_map.begin_move(3, 0)

    def test_flip_is_one_version_bump_and_swaps_exclusion(self):
        shard_map = ShardMap(2)
        slots = shard_map.slots_owned_by(1)[:4]
        for slot in slots:
            shard_map.begin_move(slot, 0)
        v = shard_map.version
        shard_map.flip(slots)
        assert shard_map.version == v + 1               # batch = one bump
        assert shard_map.flips == len(slots)
        for slot in slots:
            assert shard_map.owner_of_slot(slot) == 0
            assert shard_map.moving_target(slot) is None
            assert slot in shard_map.excluded_slots(1)   # stale source copy
            assert slot not in shard_map.excluded_slots(0)
        for slot in slots:
            shard_map.clear_excluded(1, slot)
        assert shard_map.excluded_slots(1) == frozenset()

    def test_flip_unmoving_slot_raises(self):
        shard_map = ShardMap(2)
        with pytest.raises(ShardMapError):
            shard_map.flip([0])

    def test_abort_move_restores_steady_state(self):
        shard_map = ShardMap(2)
        v = shard_map.version
        shard_map.begin_move(3, 0)
        assert shard_map.abort_move(3) == 0
        assert shard_map.owner_of_slot(3) == 1
        assert not shard_map.has_moves()
        assert shard_map.excluded_slots(0) == frozenset()
        assert shard_map.version == v                   # nothing flipped

    def test_move_to_non_member_raises(self):
        shard_map = ShardMap(2)
        with pytest.raises(ShardMapError):
            shard_map.begin_move(0, 7)


class TestBalanceAccounting:
    def test_balanced_assignment_spreads_remainder_low_first(self):
        shard_map = ShardMap(4)
        shard_map.add_member(4)      # 256 slots over 5 members
        desired = shard_map.balanced_assignment()
        assert sum(desired.values()) == shard_map.num_slots
        assert desired[0] == 52 and desired[4] == 51

    def test_skew_flags_fresh_member(self):
        shard_map = ShardMap(4)
        assert shard_map.skew() == 1.0
        shard_map.add_member(4)
        assert shard_map.skew() > 1.2

    def test_rows_shape(self):
        shard_map = ShardMap(2)
        shard_map.begin_move(5, 0)
        rows = shard_map.rows()
        assert len(rows) == shard_map.num_slots
        slot, owner, moving_to, excluded_on = rows[5]
        assert (slot, owner, moving_to, excluded_on) == (5, 1, 0, "dn0")
        assert rows[4][2] == -1 and rows[4][3] == ""
