"""Online resharding: add/remove DNs under load, no reads blocked.

The acceptance bar from the issue: a 4-DN cluster gains a 5th DN (and
later loses one) fully online — writes keep committing through the move
windows, post-move scans are byte-identical to a never-moved control
cluster, and a flip invalidates cached fragment plans.
"""

import pytest

from repro.autonomous.adbms import AutonomousManager
from repro.cluster import MppCluster, TransactionPromotionRequired, TxnMode
from repro.cluster.ha import HaManager
from repro.cluster.rebalance import (
    ST_DONE,
    RebalanceCoordinator,
    RebalanceError,
)
from repro.common.errors import ConfigError
from repro.sql.engine import SqlEngine
from repro.storage import Column, DataType, Distribution, TableSchema

SEED_ROWS = 96


def key_of(i):
    """Spread logical row ``i`` across the whole slot space (13 is odd, so
    ``13 * i mod 256`` walks every residue class — sequential ids would pile
    into the low slots and leave the donors' high slots empty)."""
    return i * 13


def make_cluster(num_dns=4):
    cluster = MppCluster(num_dns=num_dns, mode=TxnMode.GTM_LITE)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    cluster.create_table(TableSchema(
        "dim", [Column("k", DataType.INT), Column("label", DataType.TEXT)],
        "k", distribution=Distribution.REPLICATION))
    return cluster


def fill(cluster, start=0, count=SEED_ROWS):
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for i in range(start, start + count):
        txn.insert("t", {"k": key_of(i), "v": i * 7})
    txn.insert("dim", {"k": start, "label": f"batch-{start}"})
    txn.commit()


def mutate(cluster, n):
    """Round ``n`` of the mid-move workload: inserts, updates, a delete.

    Each round touches a distinct key range, so the callback can fire once
    per move batch and the control cluster can replay the same rounds.
    """
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    base = SEED_ROWS + n * 16
    for i in range(base, base + 16):
        txn.insert("t", {"k": key_of(i), "v": -i})
    for i in range(n * 3, n * 3 + 3):
        txn.update("t", key_of(i), {"v": 999_000 + i})
    if n == 0:
        txn.delete("t", key_of(13))
    txn.commit()


def catchup_driver(cluster):
    """(callback, rounds) pair: the callback runs one fresh round per call."""
    rounds = []

    def callback():
        n = len(rounds)
        rounds.append(n)
        mutate(cluster, n)
    return callback, rounds


def table_state(cluster, table="t"):
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    state = sorted((k, tuple(sorted(values.items())))
                   for k, values in txn.scan(table))
    txn.commit()
    return state


class TestAddDn:
    def test_add_fifth_dn_online_matches_never_moved_control(self):
        cluster = make_cluster()
        fill(cluster)
        coordinator = RebalanceCoordinator(cluster)
        callback, rounds = catchup_driver(cluster)
        index = coordinator.add_dn(on_catchup=callback)
        assert index == 4
        assert cluster.dn_indices() == (0, 1, 2, 3, 4)
        assert cluster.num_active_dns == 5
        assert rounds   # writes really did land inside the move windows

        # Oracle: the identical workload on a cluster that never moved.
        control = make_cluster()
        fill(control)
        for n in rounds:
            mutate(control, n)
        assert table_state(cluster) == table_state(control)
        assert table_state(cluster, "dim") == table_state(control, "dim")

        # The new DN actually carries data, and the map is flat again.
        shard_map = cluster.catalog.shard_map
        assert shard_map.slot_counts()[4] > 0
        assert shard_map.skew() <= 1.05
        assert not shard_map.has_moves()
        for dn in cluster.active_dns():
            assert shard_map.excluded_slots(dn.index) == frozenset()
        dn4_rows = sum(1 for _ in cluster.dns[4].scan(
            "t", cluster.dns[4].local_snapshot()))
        assert dn4_rows > 0

    def test_writes_after_expansion_route_by_new_map(self):
        cluster = make_cluster()
        fill(cluster, count=32)
        RebalanceCoordinator(cluster).add_dn()
        shard_map = cluster.catalog.shard_map
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        for k in range(1000, 1064):
            txn.insert("t", {"k": k, "v": k})
        txn.commit()
        for k in range(1000, 1064):
            owner = cluster.dns[shard_map.owner_of_value(k)]
            assert owner.read("t", k, owner.local_snapshot()) is not None

    def test_new_dn_gets_replicated_tables_and_standby(self):
        cluster = make_cluster()
        fill(cluster, count=16)
        HaManager(cluster)
        coordinator = RebalanceCoordinator(cluster)
        coordinator.add_dn()
        dn4 = cluster.dns[4]
        assert dn4.read("dim", 0, dn4.local_snapshot()) is not None
        # Post-expansion writes ship to the new DN's standby like any other.
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        for k in range(500, 540):
            txn.insert("t", {"k": k, "v": 1})
        txn.commit()
        standby = cluster.ha.standby(4)
        assert standby.row_count("t") == sum(
            1 for _ in dn4.scan("t", dn4.local_snapshot()))


class TestRemoveDn:
    def test_drain_and_retire_preserves_data(self):
        cluster = make_cluster()
        fill(cluster)
        coordinator = RebalanceCoordinator(cluster)
        callback, rounds = catchup_driver(cluster)
        moved = coordinator.remove_dn(2, on_catchup=callback)
        assert moved > 0
        assert rounds
        assert cluster.dn_indices() == (0, 1, 3)
        assert cluster.catalog.shard_map.skew() <= 1.05

        control = make_cluster()
        fill(control)
        for n in rounds:
            mutate(control, n)
        assert table_state(cluster) == table_state(control)
        # The retired node is empty and out of every maintenance loop.
        dn2 = cluster.dns[2]
        assert dn2.retired
        assert not list(dn2.scan("t", dn2.local_snapshot()))
        with pytest.raises(ConfigError):
            cluster.declare_node_dead(2, reason="should refuse")

    def test_remove_then_readd_cycle(self):
        cluster = make_cluster()
        fill(cluster, count=48)
        coordinator = RebalanceCoordinator(cluster)
        coordinator.add_dn()
        coordinator.remove_dn(1)
        assert cluster.dn_indices() == (0, 2, 3, 4)
        control = make_cluster()
        fill(control, count=48)
        assert table_state(cluster) == table_state(control)

    def test_remove_unknown_member_raises(self):
        cluster = make_cluster()
        coordinator = RebalanceCoordinator(cluster)
        with pytest.raises(RebalanceError):
            coordinator.remove_dn(9)


class TestDoubleWriteWindow:
    def _open_window(self):
        cluster = make_cluster(num_dns=2)
        fill(cluster, count=32)
        coordinator = RebalanceCoordinator(cluster)
        shard_map = cluster.catalog.shard_map
        slot = shard_map.slots_owned_by(1)[0]
        move = coordinator.begin([slot], target=0)
        coordinator.copy(move)
        # A key that hashes into the moving slot (slot s holds k where
        # k % num_slots == s, for non-negative ints).
        key = slot + shard_map.num_slots
        return cluster, coordinator, move, slot, key

    def test_write_in_window_lands_once_after_flip(self):
        cluster, coordinator, move, slot, key = self._open_window()
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t", {"k": key, "v": 4242})
        txn.commit()
        coordinator.flip(move)
        coordinator.truncate(move)
        assert move.state == ST_DONE
        state = table_state(cluster)
        assert sum(1 for k, _ in state if k == key) == 1
        dn0 = cluster.dns[0]
        assert dn0.read("t", key, dn0.local_snapshot())["v"] == 4242
        dn1 = cluster.dns[1]
        assert dn1.read("t", key, dn1.local_snapshot()) is None

    def test_local_write_to_moving_slot_promotes(self):
        cluster, coordinator, move, slot, key = self._open_window()
        session = cluster.session()
        local = session.begin(multi_shard=False)
        with pytest.raises(TransactionPromotionRequired):
            local.insert("t", {"k": key, "v": 1})
        local.abort()
        coordinator.flip(move)
        coordinator.truncate(move)

    def test_scans_never_see_double(self):
        cluster, coordinator, move, slot, key = self._open_window()
        # Mid-window: the slot's rows exist on both DNs, but the target's
        # partial copy is excluded, so the scan sees each key once.
        state = table_state(cluster)
        assert len(state) == len({k for k, _ in state})
        coordinator.flip(move)
        # Post-flip, pre-truncate: the stale source copy is excluded now.
        state = table_state(cluster)
        assert len(state) == len({k for k, _ in state})
        coordinator.truncate(move)


class TestPlanCacheStaleness:
    def test_flip_invalidates_cached_fragment_plan(self):
        engine = SqlEngine(MppCluster(num_dns=2), learning_enabled=False)
        engine.execute("create table t (id int primary key, v int)")
        engine.execute("insert into t values " + ", ".join(
            f"({i}, {i * 3})" for i in range(40)))
        engine.analyze()
        sql = "select count(*), sum(v) from t"
        first = engine.execute(sql)
        engine.execute(sql)
        assert engine.plan_cache.hits == 1

        RebalanceCoordinator(engine.cluster).add_dn()
        after = engine.execute(sql)
        # The expansion flipped slot owners (shard-map version moved), so
        # the cached two-DN fragment plan must not be reused ...
        assert engine.plan_cache.hits == 1
        # ... and the replanned query fans over all three DNs and still
        # sees every row exactly once.
        assert after.rows == first.rows

    def test_steady_state_still_hits_with_coordinator_attached(self):
        engine = SqlEngine(MppCluster(num_dns=2), learning_enabled=False)
        RebalanceCoordinator(engine.cluster)
        engine.execute("create table t (id int primary key, v int)")
        engine.execute("insert into t values (1, 1), (2, 2)")
        engine.analyze()
        sql = "select sum(v) from t"
        engine.execute(sql)
        engine.execute(sql)
        assert engine.plan_cache.hits == 1


class TestObservability:
    def test_sys_views_serve_map_and_moves(self):
        engine = SqlEngine(MppCluster(num_dns=2))
        engine.execute("create table t (id int primary key, v int)")
        engine.execute("insert into t values " + ", ".join(
            f"({i}, {i})" for i in range(24)))
        coordinator = RebalanceCoordinator(engine.cluster)
        coordinator.add_dn()
        slots = engine.execute("select count(*) from sys.shard_map")
        assert slots.rows[0][0] == engine.cluster.catalog.shard_map.num_slots
        owners = engine.execute(
            "select count(*) from sys.shard_map where owner = 2")
        assert owners.rows[0][0] > 0
        moves = engine.execute(
            "select state, count(*) from sys.rebalance group by state")
        assert dict(moves.rows).get("done", 0) >= 1

    def test_reset_telemetry_clears_move_history(self):
        cluster = make_cluster()
        fill(cluster, count=32)
        coordinator = RebalanceCoordinator(cluster)
        coordinator.add_dn()
        assert coordinator.moves and coordinator.slots_moved > 0
        cluster.reset_telemetry()
        assert coordinator.moves == []
        assert coordinator.slots_moved == 0
        assert coordinator.moves_completed == 0
        assert cluster.obs.rebalance.rows() == []
        # Replay identity: the same expansion telemetry can be re-recorded.
        coordinator.remove_dn(4)
        assert coordinator.moves_completed > 0

    def test_wait_events_attributed(self):
        cluster = make_cluster()
        fill(cluster)
        RebalanceCoordinator(cluster).add_dn()
        events = dict((row[0], row[1])
                      for row in cluster.obs.waits.rows())
        assert events.get("rebalance_copy", 0) > 0
        assert events.get("rebalance_truncate", 0) > 0


class TestAutonomousTrigger:
    def test_skew_above_threshold_triggers_rebalance(self):
        cluster = make_cluster()
        fill(cluster, count=48)
        RebalanceCoordinator(cluster)
        manager = AutonomousManager(cluster)
        manager.collect(0.0)
        # Provision the DN without rebalancing: skew jumps, the next tick
        # must flatten it autonomously.
        cluster.add_data_node()
        report = manager.tick(1_000_000.0)
        assert report.shard_skew > AutonomousManager.REBALANCE_SKEW_THRESHOLD
        assert report.rebalance_slots_moved > 0
        assert any("rebalance" in a for a in report.healing_actions)
        assert cluster.catalog.shard_map.skew() <= 1.05
        follow_up = manager.tick(2_000_000.0)
        assert follow_up.rebalance_slots_moved == 0
