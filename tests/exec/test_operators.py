"""Direct unit tests for the physical operators."""

import pytest

from repro.common.errors import ExecutionError
from repro.exec.operators import (
    PDistinct,
    PExchange,
    PFilter,
    PHashAggregate,
    PHashJoin,
    PLimit,
    PNestedLoopJoin,
    PProject,
    PSort,
    PValues,
)
from repro.optimizer.expr import BoundBinary, BoundColumn, BoundConst
from repro.optimizer.logical import AggSpec, ColumnInfo
from repro.storage.types import DataType


def schema(*names):
    return [ColumnInfo(n, None, DataType.BIGINT) for n in names]


def values(rows, *names):
    return PValues([tuple(r) for r in rows], schema(*names))


def col(i, name="c"):
    return BoundColumn(i, name, DataType.BIGINT)


class TestScanFilterProject:
    def test_filter_counts_rows(self):
        op = PFilter(values([(1,), (5,), (9,)], "a"),
                     BoundBinary(">", col(0), BoundConst(3)))
        assert list(op.execute()) == [(5,), (9,)]
        assert op.actual_rows == 2

    def test_project_computes_expressions(self):
        op = PProject(values([(2,), (3,)], "a"),
                      [BoundBinary("*", col(0), BoundConst(10))],
                      schema("a10"))
        assert list(op.execute()) == [(20,), (30,)]

    def test_reset_counters(self):
        op = PFilter(values([(1,)], "a"), BoundConst(True))
        list(op.execute())
        op.reset_counters()
        assert op.actual_rows == 0
        assert op.children()[0].actual_rows == 0


class TestJoins:
    def left_right(self):
        left = values([(1, 10), (2, 20), (3, 30)], "k", "lv")
        right = values([(2, 200), (3, 300), (3, 301)], "k", "rv")
        return left, right

    def test_hash_join_inner(self):
        left, right = self.left_right()
        op = PHashJoin("inner", left, right,
                       [col(0)], [col(0)], None,
                       schema("k", "lv", "k2", "rv"))
        rows = sorted(op.execute())
        assert rows == [(2, 20, 2, 200), (3, 30, 3, 300), (3, 30, 3, 301)]

    def test_hash_join_left_pads(self):
        left, right = self.left_right()
        op = PHashJoin("left", left, right, [col(0)], [col(0)], None,
                       schema("k", "lv", "k2", "rv"))
        rows = sorted(op.execute(), key=lambda r: (r[0], r[3] or 0))
        assert rows[0] == (1, 10, None, None)

    def test_hash_join_null_keys_never_match(self):
        left = values([(None, 1)], "k", "v")
        right = values([(None, 2)], "k", "v")
        op = PHashJoin("inner", left, right, [col(0)], [col(0)], None,
                       schema("k", "v", "k2", "v2"))
        assert list(op.execute()) == []

    def test_hash_join_residual_predicate(self):
        left, right = self.left_right()
        residual = BoundBinary(">", col(3), BoundConst(300))
        op = PHashJoin("inner", left, right, [col(0)], [col(0)], residual,
                       schema("k", "lv", "k2", "rv"))
        assert list(op.execute()) == [(3, 30, 3, 301)]

    def test_hash_join_rejects_bad_kind(self):
        left, right = self.left_right()
        with pytest.raises(ExecutionError):
            PHashJoin("full", left, right, [], [], None, schema())

    def test_nested_loop_non_equi(self):
        left = values([(1,), (5,)], "a")
        right = values([(3,), (7,)], "b")
        cond = BoundBinary("<", col(0), col(1))
        op = PNestedLoopJoin("inner", left, right, cond, schema("a", "b"))
        assert sorted(op.execute()) == [(1, 3), (1, 7), (5, 7)]

    def test_nested_loop_cross(self):
        op = PNestedLoopJoin("cross", values([(1,), (2,)], "a"),
                             values([(9,)], "b"), None, schema("a", "b"))
        assert sorted(op.execute()) == [(1, 9), (2, 9)]


class TestAggregateSortLimit:
    def test_aggregate_groups(self):
        child = values([(1, 10), (1, 20), (2, 5)], "g", "v")
        op = PHashAggregate(child, [col(0)],
                            [AggSpec("sum", col(1)), AggSpec("count", None)],
                            schema("g", "s", "n"))
        assert sorted(op.execute()) == [(1, 30.0, 2), (2, 5.0, 1)]

    def test_aggregate_nulls_skipped_except_count_star(self):
        child = values([(1, None), (1, 4)], "g", "v")
        op = PHashAggregate(child, [col(0)],
                            [AggSpec("count", col(1)), AggSpec("count", None),
                             AggSpec("avg", col(1))],
                            schema("g", "cv", "cs", "av"))
        assert list(op.execute()) == [(1, 1, 2, 4.0)]

    def test_aggregate_empty_input_global(self):
        op = PHashAggregate(values([], "v"), [],
                            [AggSpec("count", None), AggSpec("max", col(0))],
                            schema("n", "m"))
        assert list(op.execute()) == [(0, None)]

    def test_distinct_aggregate(self):
        child = values([(1, 5), (1, 5), (1, 7)], "g", "v")
        op = PHashAggregate(child, [col(0)],
                            [AggSpec("count", col(1), distinct=True)],
                            schema("g", "n"))
        assert list(op.execute()) == [(1, 2)]

    def test_sort_multi_key_mixed_direction(self):
        child = values([(1, "b"), (2, "a"), (1, "a")], "n", "s")
        op = PSort(child, [(col(0), True), (col(1, "s"), False)])
        assert list(op.execute()) == [(2, "a"), (1, "a"), (1, "b")]

    def test_sort_nulls_last_ascending(self):
        child = values([(None,), (2,), (1,)], "n")
        op = PSort(child, [(col(0), False)])
        assert list(op.execute()) == [(1,), (2,), (None,)]

    def test_limit_is_lazy(self):
        produced = []

        def gen():
            for i in range(1000):
                produced.append(i)
                yield (i,)

        class Lazy(PValues):
            def execute(self):
                return self._count(gen())

        op = PLimit(Lazy([], schema("a")), 3)
        assert list(op.execute()) == [(0,), (1,), (2,)]
        assert len(produced) == 3

    def test_distinct_preserves_first_occurrence_order(self):
        child = values([(2,), (1,), (2,), (3,), (1,)], "a")
        op = PDistinct(child)
        assert list(op.execute()) == [(2,), (1,), (3,)]

    def test_exchange_passthrough_and_kinds(self):
        op = PExchange("gather", values([(1,)], "a"))
        assert list(op.execute()) == [(1,)]
        with pytest.raises(ExecutionError):
            PExchange("teleport", values([], "a"))

    def test_pretty_includes_estimates(self):
        op = PLimit(values([(1,)], "a"), 1, estimated_rows=42)
        assert "est=42" in op.pretty()
