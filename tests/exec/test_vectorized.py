"""Tests for the vectorized execution kernels."""

import numpy as np
import pytest

from repro.common.errors import ExecutionError
from repro.exec.vectorized import (
    aggregate,
    group_aggregate,
    row_aggregate,
    scan_filter,
    selection_mask,
)
from repro.storage.colstore import ColumnStore
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType


@pytest.fixture
def store():
    schema = TableSchema(
        "m",
        [Column("id", DataType.INT), Column("g", DataType.TEXT),
         Column("v", DataType.DOUBLE)],
        "id",
    )
    cs = ColumnStore(schema, chunk_rows=64)
    cs.append_rows([
        {"id": i, "g": f"g{i % 4}", "v": float(i)} for i in range(300)
    ])
    return cs


class TestScanFilter:
    def test_filtering(self, store):
        total = sum(len(b["id"]) for b in scan_filter(store, ["id"],
                                                      [("v", ">", 249.0)]))
        assert total == 50

    def test_multiple_predicates_anded(self, store):
        batches = list(scan_filter(store, ["id"],
                                   [("v", ">=", 100.0), ("v", "<", 110.0),
                                    ("g", "=", "g0")]))
        ids = np.concatenate([b["id"] for b in batches])
        assert sorted(ids.tolist()) == [100, 104, 108]

    def test_unknown_predicate_column(self, store):
        with pytest.raises(Exception):
            list(scan_filter(store, ["id"], [("zz", "=", 1)]))

    def test_bad_operator(self, store):
        with pytest.raises(ExecutionError):
            list(scan_filter(store, ["id"], [("v", "~", 1)]))


class TestAggregates:
    def test_whole_table(self, store):
        assert aggregate(store, "v", "sum") == sum(range(300))
        assert aggregate(store, "v", "min") == 0.0
        assert aggregate(store, "v", "max") == 299.0
        assert aggregate(store, "v", "count") == 300.0
        assert aggregate(store, "v", "avg") == pytest.approx(149.5)

    def test_filtered(self, store):
        assert aggregate(store, "v", "count", [("g", "=", "g1")]) == 75.0

    def test_empty_result(self, store):
        assert aggregate(store, "v", "sum", [("v", ">", 10_000.0)]) is None

    def test_group_aggregate(self, store):
        groups = group_aggregate(store, "g", "v", "count")
        assert groups == {"g0": 75.0, "g1": 75.0, "g2": 75.0, "g3": 75.0}
        sums = group_aggregate(store, "g", "v", "sum", [("v", "<", 8.0)])
        assert sums == {"g0": 0.0 + 4.0, "g1": 1.0 + 5.0,
                        "g2": 2.0 + 6.0, "g3": 3.0 + 7.0}


class TestRowFallbackEquivalence:
    @pytest.mark.parametrize("func", ["sum", "min", "max", "count", "avg"])
    def test_same_answers(self, store, func):
        predicates = [("v", ">=", 50.0), ("v", "<", 250.0)]
        vector = aggregate(store, "v", func, predicates)
        rows = row_aggregate(store.scan_rows(), "v", func, predicates)
        assert vector == pytest.approx(rows)

    def test_selection_mask_respects_validity(self):
        schema = TableSchema("t", [Column("id", DataType.INT),
                                   Column("v", DataType.DOUBLE)], "id")
        cs = ColumnStore(schema, chunk_rows=8)
        cs.append_rows([{"id": 1, "v": None}, {"id": 2, "v": 5.0}])
        chunk = next(cs.scan_chunks(["v"]))
        mask = selection_mask(chunk, [("v", ">=", 0.0)])
        assert mask.tolist() == [False, True]   # NULL never matches
