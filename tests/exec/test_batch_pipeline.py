"""Batch execution pipeline: kernels, NULL semantics, activation rules.

Covers the two bugfix satellites directly:

* the many-groups regression — ``group_aggregate`` must bucket groups with
  one ``np.unique(..., return_inverse=True)`` pass instead of re-scanning
  the chunk per group (the old path was O(groups x rows));
* NULL semantics — the vectorized/batch kernels and the row executor must
  agree on SQL three-valued logic; the parametrized suite runs the same
  query through both executors and requires identical rows.
"""

import time

import numpy as np
import pytest

from repro.cluster.mpp import MppCluster
from repro.exec.batch import (
    Batch,
    batches_from_rows,
    concat_batches,
    rows_from_batches,
    sort_indices,
)
from repro.exec.operators import walk_physical
from repro.exec.vectorized import group_aggregate, group_bounds, row_aggregate
from repro.sql.engine import SqlEngine
from repro.storage.colstore import ColumnStore, ColumnVector
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType


# -- satellite: many-groups regression -------------------------------------

class TestManyGroups:
    def _store(self, rows: int, groups: int) -> ColumnStore:
        schema = TableSchema(
            "m", [Column("id", DataType.INT), Column("g", DataType.INT),
                  Column("v", DataType.DOUBLE)], "id")
        cs = ColumnStore(schema, chunk_rows=65536)
        cs.append_rows([
            {"id": i, "g": i % groups, "v": float(i % 97)}
            for i in range(rows)
        ])
        return cs

    def test_many_groups_matches_row_path(self):
        cs = self._store(rows=5000, groups=701)
        vector = group_aggregate(cs, "g", "v", "sum")
        # row-at-a-time reference, computed directly
        expected = {}
        for row in cs.scan_rows():
            g, v = row["g"], row["v"]
            expected[g] = expected.get(g, 0.0) + v
        assert set(vector) == set(expected)
        for key in expected:
            assert vector[key] == pytest.approx(expected[key])

    def test_many_groups_is_not_quadratic(self):
        # 200k rows x 20k groups: the old per-group boolean-mask rescan
        # performs ~4e9 element comparisons (tens of seconds); the bucketed
        # path is one argsort.  A generous wall-clock ceiling catches the
        # regression without being timing-flaky.
        cs = self._store(rows=200_000, groups=20_000)
        start = time.perf_counter()
        result = group_aggregate(cs, "g", "v", "count")
        elapsed = time.perf_counter() - start
        assert len(result) == 20_000
        assert sum(result.values()) == 200_000
        assert elapsed < 5.0, f"group_aggregate took {elapsed:.1f}s"

    def test_group_bounds_partitions_exactly(self):
        keys = np.array([3, 1, 3, 2, 1, 1, 3], dtype=np.int64)
        uniq, order, bounds = group_bounds(keys)
        assert uniq.tolist() == [1, 2, 3]
        seen = []
        for i in range(len(uniq)):
            member = order[bounds[i]:bounds[i + 1]]
            assert (keys[member] == uniq[i]).all()
            # members come back in ascending row order (stable argsort)
            assert member.tolist() == sorted(member.tolist())
            seen.extend(member.tolist())
        assert sorted(seen) == list(range(len(keys)))


# -- satellite: NULL semantics, both executors ------------------------------

NULL_PREDICATES = [
    "v > 25",
    "v >= 30 and v <= 90",
    "v <> 30",
    "g = 'a'",
    "v > 25 and g <> 'b'",
    "v > 25 or g = 'b'",
    "not (v > 25)",
    "not (g = 'a' and v > 10)",
    "v is null",
    "v is not null",
    "v is null or g is null",
    "g in ('a', 'b')",
    "v in (10, 30, 90)",
    "v not in (10, 30)",
    "v + 10 > 35",
    "v * 2 <= 60",
    "-v < -25",
    "v - w > 0",
    "(v > 10 and v < 90) or g = 'c'",
    "v > 25 and w is null",
]


def _engine(batch_enabled: bool) -> SqlEngine:
    cluster = MppCluster(num_dns=2)
    engine = SqlEngine(cluster, batch_enabled=batch_enabled,
                       plan_cache_size=0)
    engine.execute(
        "create table t (id int primary key, g text, v int, w int) "
        "with (orientation = column)")
    values = []
    for i in range(60):
        g = "null" if i % 7 == 0 else f"'{'abc'[i % 3]}'"
        v = "null" if i % 5 == 0 else str(i * 2)
        w = "null" if i % 4 == 0 else str(i)
        values.append(f"({i}, {g}, {v}, {w})")
    engine.execute("insert into t values " + ", ".join(values))
    engine.analyze()
    return engine


@pytest.fixture(scope="module")
def engines():
    return _engine(batch_enabled=True), _engine(batch_enabled=False)


class TestNullSemanticsSharedByBothPaths:
    @pytest.mark.parametrize("predicate", NULL_PREDICATES)
    def test_filter_agreement(self, engines, predicate):
        batch, row = engines
        sql = f"select id, g, v, w from t where {predicate} order by id"
        assert batch.execute(sql).rows == row.execute(sql).rows

    @pytest.mark.parametrize("predicate", NULL_PREDICATES[:6])
    def test_aggregate_agreement(self, engines, predicate):
        batch, row = engines
        sql = (f"select g, count(*), sum(v) from t where {predicate} "
               "group by g order by g")
        assert batch.execute(sql).rows == row.execute(sql).rows

    def test_null_sort_keys_agree(self, engines):
        batch, row = engines
        for direction in ("asc", "desc"):
            sql = f"select id, v from t order by v {direction}, id"
            assert batch.execute(sql).rows == row.execute(sql).rows

    def test_row_aggregate_skips_null_like_vector(self):
        schema = TableSchema("n", [Column("id", DataType.INT),
                                   Column("v", DataType.DOUBLE)], "id")
        cs = ColumnStore(schema, chunk_rows=8)
        cs.append_rows([{"id": 1, "v": None}, {"id": 2, "v": 4.0},
                        {"id": 3, "v": None}, {"id": 4, "v": 6.0}])
        from repro.exec.vectorized import aggregate
        preds = [("v", ">=", 0.0)]
        assert aggregate(cs, "v", "count", preds) == \
            row_aggregate(cs.scan_rows(), "v", "count", preds)
        assert aggregate(cs, "v", "sum", preds) == \
            row_aggregate(cs.scan_rows(), "v", "sum", preds)


# -- batch bridges and kernels ---------------------------------------------

class TestBatchBridges:
    def test_row_round_trip_preserves_nones(self):
        rows = [(1, "a", None), (None, "b", 2.5), (3, None, 0.0)]
        batches = list(batches_from_rows(iter(rows), width=3, batch_size=2))
        assert [b.n for b in batches] == [2, 1]
        assert list(rows_from_batches(batches)) == rows

    def test_take_and_select(self):
        data = np.array([10, 20, 30, 40], dtype=np.int64)
        validity = np.array([True, False, True, True])
        batch = Batch([ColumnVector(data, validity)], 4)
        taken = batch.take(np.array([3, 0]))
        assert taken.columns[0].data.tolist() == [40, 10]
        picked = batch.select(np.array([False, True, True, False]))
        assert picked.n == 2
        assert picked.columns[0].validity.tolist() == [False, True]

    def test_concat(self):
        def one(values):
            arr = np.array(values, dtype=np.int64)
            return Batch([ColumnVector(arr, np.ones(len(values), bool))],
                         len(values))
        merged = concat_batches([one([1, 2]), one([3])], width=1)
        assert merged.n == 3
        assert merged.columns[0].data.tolist() == [1, 2, 3]

    def test_sort_indices_matches_python_composite(self):
        values = [5, None, 2, 5, None, 1, 2]
        data = np.array([0 if v is None else v for v in values],
                        dtype=np.int64)
        validity = np.array([v is not None for v in values])
        vec = ColumnVector(data, validity)
        from repro.exec.operators import _sort_key
        for descending in (False, True):
            order = sort_indices([(vec, descending)], len(values))
            reference = sorted(
                range(len(values)),
                key=lambda i: _sort_key(values[i], descending),
                reverse=descending,
            )
            # index-exact: ties must keep input order in both paths
            assert order.tolist() == reference


# -- activation rules -------------------------------------------------------

class TestActivation:
    def _plan(self, engine, sql):
        from repro.sql.parser import parse
        from repro.exec.batch import enable_batches
        txn = engine.cluster.session().begin(multi_shard=True)
        try:
            physical = engine.plan_select(parse(sql), txn)
        finally:
            txn.commit()
        enable_batches(physical)
        return physical

    def test_limit_subtree_stays_row_mode(self, engines):
        batch, _ = engines
        physical = self._plan(
            batch, "select id from t where v > 4 order by v limit 3")
        from repro.exec import operators as ops
        for op in walk_physical(physical):
            if isinstance(op, (ops.PScan, ops.PSort)):
                assert not op.batch_mode

    def test_scan_batches_complex_predicates(self, engines):
        batch, _ = engines
        physical = self._plan(
            batch, "select id from t where v > 4 or g = 'a'")
        from repro.exec import operators as ops
        scans = [op for op in walk_physical(physical)
                 if isinstance(op, ops.PScan)]
        assert scans and all(op.batch_mode for op in scans)
