"""Replay identity: batch execution + plan cache vs the seed row path.

Mirrors tests/htap/test_replay_identity.py: the same TPC-C-lite + reporting
workload runs once with the fast path on (columnar batches, plan cache) and
once with both disabled (the seed executor), and every query-visible
surface must match byte for byte — result rows, per-operator profile row
counts, simulated elapsed time, wait accounting, metric counters, the
slow-query log, and the learning optimizer's plan-store contents (captured
step keys and observed cardinalities).

Batching only changes *wall-clock*; every simulated quantity is a pure
function of row counts, which the batch pipeline reproduces exactly.
"""

from repro.cluster.mpp import MppCluster
from repro.exec.operators import walk_physical
from repro.sql.engine import SqlEngine
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


REPORTING = [
    # simple vector-spec predicate (seed already vectorizes the scan)
    "select count(*) from order_line where ol_quantity >= 5",
    # complex predicate: only the batch path vectorizes this scan
    "select w_id, sum(ol_amount), count(*) from order_line "
    "where ol_quantity > 2 or ol_amount > 50 group by w_id order by w_id",
    # join + aggregation over the replicated dimension
    "select i.i_name, sum(ol.ol_quantity) from order_line ol, item i "
    "where ol.i_id = i.i_id and ol.ol_amount > 20 "
    "group by i.i_name order by i.i_name limit 5",
    # full sort, no limit (batch sort kernel)
    "select o_key, o_ol_cnt from orders where o_ol_cnt > 0 order by "
    "o_entry_ts desc, o_key",
    # arithmetic projection + filter
    "select ol_key, ol_amount * 2 from order_line "
    "where ol_amount - ol_quantity > 10 order by ol_key",
    "explain analyze select d_id, sum(d_ytd) from district group by d_id "
    "order by d_id",
]

MUTATIONS = [
    "update district set d_ytd = d_ytd + 1 where d_id = 3",
    "insert into item values (990, 'late-item', 9.99)",
    "delete from orders where o_ol_cnt = 0",
]


def _run(fast: bool):
    cluster = MppCluster(num_dns=2)
    engine = SqlEngine(
        cluster,
        batch_enabled=fast,
        plan_cache_size=64 if fast else 0,
    )
    cluster.obs.slowlog.threshold_us = 0.0
    load_tpcc(cluster, num_warehouses=2,
              column_oriented=("orders", "order_line"))
    # drive some TPC-C-lite transactions so orders/order_line have data
    workload = TpccLiteWorkload(num_warehouses=2, multi_shard_fraction=0.1)
    session = cluster.session()
    for spec in (s for s, _ in zip(workload.stream(), range(40))):
        txn = session.begin(multi_shard=spec.multi_shard)
        spec.body(txn)
        txn.commit()
    engine.analyze()
    results = []
    # two passes: the second pass is where the plan cache serves hits, and
    # identity must hold there too
    for _ in range(2):
        for sql in REPORTING:
            results.append(engine.execute(sql))
        for sql in MUTATIONS[:1]:
            results.append(engine.execute(sql))
    for sql in MUTATIONS[1:]:
        results.append(engine.execute(sql))
    for sql in REPORTING:
        results.append(engine.execute(sql))
    return cluster, engine, results


def _query_metrics(cluster):
    """Metric snapshot minus access-path bookkeeping.

    ``htap.scans_*`` counts which storage path served a scan; the batch
    executor deliberately routes *more* scans through the column store
    (complex predicates included), so that counter legitimately grows.
    Everything query-visible — rows, times, waits — must still match.
    """
    _, flat = cluster.obs.metrics.snapshot()
    return {name: value for name, value in flat.items()
            if not name.startswith("htap.scans_")}


def _store_rows(engine):
    return [(r.key, r.step_text, r.estimated_rows, r.actual_rows, r.updates)
            for r in engine.plan_store.records()]


class TestBatchReplayIdentity:
    def test_fast_path_matches_seed_byte_for_byte(self):
        fast_cluster, fast_engine, fast_results = _run(fast=True)
        seed_cluster, seed_engine, seed_results = _run(fast=False)
        assert len(fast_results) == len(seed_results)
        for fast, seed in zip(fast_results, seed_results):
            assert fast.columns == seed.columns
            assert fast.rows == seed.rows
            if fast.profile is not None:
                assert (fast.profile.rows_table()
                        == seed.profile.rows_table())
                assert (fast.profile.elapsed_time_us
                        == seed.profile.elapsed_time_us)
        assert (fast_cluster.obs.waits.rows()
                == seed_cluster.obs.waits.rows())
        assert _query_metrics(fast_cluster) == _query_metrics(seed_cluster)
        # the batch path must have used the column store at least as much
        fast_flat = dict(fast_cluster.obs.metrics.snapshot()[1])
        seed_flat = dict(seed_cluster.obs.metrics.snapshot()[1])
        assert (fast_flat.get("htap.scans_composed", 0.0)
                + fast_flat.get("htap.scans_frozen", 0.0)
                >= seed_flat.get("htap.scans_composed", 0.0)
                + seed_flat.get("htap.scans_frozen", 0.0))
        assert ([e.as_row() for e in fast_cluster.obs.slowlog.entries()]
                == [e.as_row() for e in seed_cluster.obs.slowlog.entries()])
        # the learning loop saw identical plans and actuals: same captured
        # step keys, same observed cardinalities, same update counts
        assert _store_rows(fast_engine) == _store_rows(seed_engine)

    def test_fast_run_actually_batched_and_cached(self):
        # Guard the guard: the identity test is vacuous if the fast run
        # never exercised the fast path.
        cluster, engine, _ = _run(fast=True)
        assert engine.plan_cache.hits > 0
        assert engine.plan_cache.hit_rate > 0.3
        # a representative reporting plan activates batch mode on its scans
        from repro.exec import operators as ops
        from repro.exec.batch import enable_batches
        from repro.sql.parser import parse
        txn = cluster.session().begin(multi_shard=True)
        try:
            physical = engine.plan_select(parse(REPORTING[1]), txn)
        finally:
            txn.commit()
        enable_batches(physical)
        scans = [op for op in walk_physical(physical)
                 if isinstance(op, ops.PScan)]
        assert scans and all(op.batch_mode for op in scans)

    def test_seed_engine_never_builds_batches(self):
        _, engine, results = _run(fast=False)
        assert engine.plan_cache.probes == 0
        assert all(r.rows is not None for r in results)
