"""Fragmented execution end-to-end: the ISSUE's acceptance criteria.

A filtered aggregate over a hash-distributed, column-oriented table on a
multi-DN cluster must plan into per-DN fragments (filter + partial
aggregate below the gather), move only group-grain rows through the
exchange, and report a simulated elapsed time of max-across-DNs fragment
time plus the exchange's network cost.
"""

import pytest

import repro.exec.fragments as fragments_mod
from repro.cluster import MppCluster
from repro.exec.operators import (
    PExchange,
    PFragment,
    PPartialAgg,
    PScan,
    walk_physical,
)
from repro.net.costing import exchange_cost_us, row_width_bytes
from repro.sql.engine import SqlEngine

NUM_DNS = 3
AGG_SQL = ("select grp, count(*), sum(val) from m.sales "
           "where id >= 10 group by grp")


def build_engine(fragmented=True, orientation="column"):
    cluster = MppCluster(num_dns=NUM_DNS)
    eng = SqlEngine(cluster, fragmented=fragmented)
    eng.execute(
        "create table m.sales (id int primary key, grp int not null, "
        f"val double not null) distribute by hash(id) "
        f"with (orientation = {orientation})")
    eng.execute("insert into m.sales values " + ",".join(
        f"({i}, {i % 4}, {i * 1.5})" for i in range(100)))
    eng.execute("analyze")
    return eng


@pytest.fixture
def engine():
    return build_engine()


def expected_groups():
    exp = {}
    for i in range(10, 100):
        count, total = exp.get(i % 4, (0, 0.0))
        exp[i % 4] = (count + 1, total + i * 1.5)
    return sorted((g, c, pytest.approx(s)) for g, (c, s) in exp.items())


class TestAcceptance:
    def test_results_are_correct(self, engine):
        result = engine.execute(AGG_SQL)
        assert sorted(result.rows) == expected_groups()

    def test_explain_analyze_shows_fragments(self, engine):
        profile = engine.execute(AGG_SQL).profile
        frag_rows = [op for op in profile.operators if op.fragment is not None]
        dns = {op.fragment[1] for op in frag_rows}
        assert len(dns) >= 2, "at least two per-DN fragments"
        text = profile.pretty()
        assert "Fragment dn0" in text and "Fragment dn1" in text

    def test_filter_and_partial_agg_below_exchange(self, engine):
        profile = engine.execute(AGG_SQL).profile
        for dn in range(NUM_DNS):
            inside = [op.operator for op in profile.operators
                      if op.fragment is not None and op.fragment[1] == dn]
            assert any(op.startswith("PartialAggregate") for op in inside)
            # The filter was pushed into the scan: its predicate shows in
            # the scan's describe(), below the exchange.
            assert any("SeqScan" in op and "ID>=10" in op for op in inside)
        above = [op.operator for op in profile.operators if op.fragment is None]
        assert any(op.startswith("FinalAggregate") for op in above)
        assert any(op.startswith("Exchange gather") for op in above)

    def test_gather_rows_equal_partial_groups(self, engine):
        plan_profile = engine.execute(AGG_SQL).profile
        gather = [op for op in plan_profile.operators
                  if op.operator.startswith("Exchange gather")][0]
        partial_rows = sum(op.rows for op in plan_profile.operators
                           if op.operator.lstrip().startswith("PartialAggregate"))
        # Only group-grain rows cross the CN/DN boundary: 4 groups per DN.
        assert gather.rows == partial_rows == 4 * NUM_DNS

    def test_elapsed_is_max_fragment_plus_exchange(self, engine):
        profile = engine.execute(AGG_SQL).profile
        serial = sum(op.time_us for op in profile.operators
                     if op.fragment is None)
        per_dn = {}
        for op in profile.operators:
            if op.fragment is not None:
                per_dn[op.fragment] = per_dn.get(op.fragment, 0.0) + op.time_us
        assert len(per_dn) == NUM_DNS
        assert profile.elapsed_time_us == pytest.approx(
            serial + max(per_dn.values()))
        # Parallelism is real: the serial sum across all operators is
        # strictly larger than the elapsed wall-clock.
        assert profile.total_time_us > profile.elapsed_time_us

    def test_exchange_charges_network_cost(self, engine):
        session = engine.cluster.session()
        txn = session.begin(multi_shard=True)
        from repro.sql.parser import parse
        plan = engine.plan_select(parse(AGG_SQL), txn)
        list(plan.execute())
        txn.commit()
        gather = [op for op in walk_physical(plan)
                  if isinstance(op, PExchange)][0]
        width = row_width_bytes(c.data_type for c in gather.schema)
        expected = exchange_cost_us(engine.cluster.profile.mpp,
                                    gather.actual_rows, width, edges=NUM_DNS)
        assert gather.sim_self_time_us(0, gather.actual_rows, 1) == pytest.approx(
            expected)


class TestVectorizedPath:
    def test_partial_agg_uses_vector_kernels(self, engine, monkeypatch):
        calls = []
        real = fragments_mod.scan_filter

        def spy(store, columns, predicates, obs=None):
            calls.append(columns)
            return real(store, columns, predicates, obs=obs)

        monkeypatch.setattr(fragments_mod, "scan_filter", spy)
        result = engine.execute(AGG_SQL)
        assert sorted(result.rows) == expected_groups()
        assert len(calls) == NUM_DNS, "one vectorized scan per fragment"

    def test_row_oriented_table_matches(self):
        row_eng = build_engine(orientation="row")
        col_eng = build_engine(orientation="column")
        got = sorted(col_eng.execute(AGG_SQL).rows)
        want = sorted(row_eng.execute(AGG_SQL).rows)
        for g, w in zip(got, want):
            assert g == pytest.approx(w)

    def test_vector_scan_preserves_nulls(self):
        eng = build_engine()
        eng.execute("create table m.n (id int primary key, x int) "
                    "distribute by hash(id) with (orientation = column)")
        eng.execute("insert into m.n values (1, 10), (2, null), (3, 30), "
                    "(4, null), (5, 50)")
        rows = eng.execute("select id, x from m.n where id >= 2 order by id").rows
        assert rows == [(2, None), (3, 30), (4, None), (5, 50)]

    def test_nullable_agg_column_falls_back_correctly(self):
        eng = build_engine()
        eng.execute("create table m.n (id int primary key, x int) "
                    "distribute by hash(id) with (orientation = column)")
        eng.execute("insert into m.n values (1, 10), (2, null), (3, 30), "
                    "(4, null), (5, 50)")
        # SQL semantics: NULLs are ignored by COUNT(x)/SUM(x)/AVG(x).
        rows = eng.execute(
            "select count(x), sum(x), avg(x), count(*) from m.n").rows
        assert rows == [(3, 90, 30.0, 5)]


class TestTwoPhaseSemantics:
    def test_avg_min_max_merge_across_dns(self, engine):
        rows = engine.execute(
            "select avg(val), min(val), max(val), min(id), max(id) "
            "from m.sales where id >= 10").rows
        vals = [i * 1.5 for i in range(10, 100)]
        assert rows[0][0] == pytest.approx(sum(vals) / len(vals))
        assert rows[0][1:] == (pytest.approx(15.0), pytest.approx(148.5), 10, 99)

    def test_global_agg_over_zero_rows(self, engine):
        rows = engine.execute(
            "select count(*), sum(val), min(val) from m.sales "
            "where id >= 1000").rows
        assert rows == [(0, None, None)]

    def test_distinct_agg_single_phase(self, engine):
        result = engine.execute("select count(distinct grp) from m.sales")
        assert result.rows == [(4,)]
        assert "PartialAggregate" not in result.plan_text

    def test_group_by_distribution_key_still_correct(self, engine):
        rows = engine.execute(
            "select id, count(*) from m.sales where id < 6 "
            "group by id order by id").rows
        assert rows == [(i, 1) for i in range(6)]


class TestFragmentIsolation:
    def test_each_fragment_scans_only_its_shard(self, engine):
        session = engine.cluster.session()
        txn = session.begin(multi_shard=True)
        from repro.sql.parser import parse
        plan = engine.plan_select(parse("select * from m.sales"), txn)
        list(plan.execute())
        txn.commit()
        frags = [op for op in walk_physical(plan) if isinstance(op, PFragment)]
        assert len(frags) == NUM_DNS
        scan_rows = [
            [s.actual_rows for s in walk_physical(f) if isinstance(s, PScan)][0]
            for f in frags
        ]
        assert sum(scan_rows) == 100
        assert all(rows < 100 for rows in scan_rows), \
            "no fragment saw the whole table"

    def test_partial_states_not_leaked_to_client(self, engine):
        result = engine.execute(AGG_SQL)
        # Client rows are finalized values, never (count,total,min,max)
        # state tuples.
        for row in result.rows:
            assert len(row) == 3
            assert not any(isinstance(v, tuple) for v in row)
