"""Tests for the serial-resource accounting model."""

import pytest

from repro.net.resource import Resource, ResourcePool


class TestResourceAcquire:
    def test_idle_resource_serves_immediately(self):
        res = Resource("dn0")
        start, end = res.acquire(ready_us=100.0, service_us=30.0)
        assert (start, end) == (100.0, 130.0)

    def test_busy_resource_queues(self):
        res = Resource("gtm")
        res.acquire(0.0, 50.0)
        start, end = res.acquire(10.0, 20.0)  # arrives while busy
        assert start == 50.0 and end == 70.0

    def test_speedup_scales_service(self):
        res = Resource("fast", speedup=2.0)
        _, end = res.acquire(0.0, 100.0)
        assert end == 50.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Resource("x").acquire(0.0, -1.0)

    def test_zero_speedup_rejected(self):
        with pytest.raises(ValueError):
            Resource("x", speedup=0.0)


class TestResourceOccupy:
    def test_accumulates_busy_time(self):
        res = Resource("dn")
        res.occupy(30.0)
        res.occupy(70.0)
        assert res.total_busy_us == 100.0
        assert res.requests == 2

    def test_utilization(self):
        res = Resource("dn")
        res.occupy(50.0)
        assert res.utilization(200.0) == 0.25
        assert res.utilization(25.0) == 1.0  # capped

    def test_reset(self):
        res = Resource("dn")
        res.occupy(50.0)
        res.reset()
        assert res.total_busy_us == 0.0 and res.requests == 0


class TestResourcePool:
    def test_add_and_get(self):
        pool = ResourcePool()
        pool.add("gtm")
        assert pool.get("gtm").name == "gtm"

    def test_duplicate_add_rejected(self):
        pool = ResourcePool()
        pool.add("gtm")
        with pytest.raises(ValueError):
            pool.add("gtm")

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            ResourcePool().get("nope")

    def test_busiest_identifies_bottleneck(self):
        pool = ResourcePool()
        pool.add("gtm").occupy(500.0)
        pool.add("dn0").occupy(100.0)
        assert pool.busiest().name == "gtm"

    def test_max_busy(self):
        pool = ResourcePool()
        pool.add("a").occupy(10.0)
        pool.add("b").occupy(90.0)
        assert pool.max_busy_us() == 90.0

    def test_report_normalizes_by_horizon(self):
        pool = ResourcePool()
        pool.add("a").occupy(50.0)
        pool.add("b").occupy(100.0)
        report = pool.report(horizon_us=200.0)
        assert report == {"a": 0.25, "b": 0.5}

    def test_empty_pool_edge_cases(self):
        pool = ResourcePool()
        assert pool.makespan_us() == 0.0
        assert pool.max_busy_us() == 0.0
        assert pool.busiest() is None
