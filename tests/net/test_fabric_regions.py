"""Direction-aware partitions and region-tagged latency on the Fabric.

Satellites of the geo-replication issue: asymmetric WAN partitions
(cutting A→B must not implicitly drop B→A) and a fabric-owned WAN/LAN
latency lookup so callers stop passing the right RTT ratio by hand.
"""

import pytest

from repro.common.errors import NetworkError
from repro.net.costing import exchange_cost_us
from repro.net.fabric import Fabric
from repro.net.latency import MppCostModel


def build_pair():
    fabric = Fabric()
    fabric.register("a", lambda src, payload: ("ack", payload))
    fabric.register("b", lambda src, payload: ("ack", payload))
    fabric.connect("a", "b", 10.0)
    return fabric


class TestDirectionalPartitions:
    def test_default_disconnect_cuts_both_directions(self):
        fabric = build_pair()
        fabric.disconnect("a", "b")
        assert not fabric.reachable("a", "b")
        assert not fabric.reachable("b", "a")

    def test_one_way_partition_leaves_reverse_path_up(self):
        fabric = build_pair()
        fabric.disconnect("a", "b", bidirectional=False)
        assert not fabric.reachable("a", "b")
        assert fabric.reachable("b", "a")
        # The live direction still delivers.
        assert fabric.send("b", "a", "ping") == ("ack", "ping")
        with pytest.raises(NetworkError):
            fabric.send("a", "b", "ping")

    def test_one_way_reconnect_heals_only_that_direction(self):
        fabric = build_pair()
        fabric.disconnect("a", "b")          # both down
        fabric.reconnect("a", "b", bidirectional=False)
        assert fabric.reachable("a", "b")
        assert not fabric.reachable("b", "a")
        fabric.reconnect("b", "a", bidirectional=False)
        assert fabric.reachable("b", "a")

    def test_two_opposite_one_way_cuts_equal_full_partition(self):
        fabric = build_pair()
        fabric.disconnect("a", "b", bidirectional=False)
        fabric.disconnect("b", "a", bidirectional=False)
        assert not fabric.reachable("a", "b")
        assert not fabric.reachable("b", "a")
        fabric.reconnect("a", "b")           # default heals both
        assert fabric.reachable("a", "b")
        assert fabric.reachable("b", "a")

    def test_neighbors_respects_direction(self):
        fabric = build_pair()
        fabric.disconnect("a", "b", bidirectional=False)
        assert fabric.neighbors("a") == set()
        assert fabric.neighbors("b") == {"a"}

    def test_unregister_clears_directional_cuts(self):
        fabric = build_pair()
        fabric.disconnect("a", "b", bidirectional=False)
        fabric.unregister("b")
        fabric.register("b", lambda src, payload: None)
        fabric.connect("a", "b", 10.0)
        # The resurrected endpoint must not inherit the old cut.
        assert fabric.reachable("a", "b")


class TestRegionTagging:
    def test_region_of_round_trip(self):
        fabric = Fabric()
        fabric.register("cn0", lambda s, p: None)
        fabric.set_region("cn0", "eu")
        assert fabric.region_of("cn0") == "eu"
        assert fabric.region_of("unknown") is None

    def test_hop_us_lan_within_region_wan_across(self):
        fabric = Fabric(intra_region_hop_us=25.0, inter_region_hop_us=30_000.0)
        for name, region in (("a", "eu"), ("b", "eu"), ("c", "us")):
            fabric.set_region(name, region)
        assert fabric.hop_us("a", "b") == 25.0
        assert fabric.hop_us("a", "c") == 30_000.0
        assert fabric.same_region("a", "b")
        assert not fabric.same_region("a", "c")

    def test_untagged_endpoints_default_to_wan(self):
        # Unknown topology is priced pessimistically, never optimistically.
        fabric = Fabric(inter_region_hop_us=5_000.0)
        assert fabric.hop_us("x", "y") == 5_000.0

    def test_explicit_link_latency_wins_over_region_default(self):
        fabric = Fabric(intra_region_hop_us=25.0)
        fabric.register("a", lambda s, p: None)
        fabric.register("b", lambda s, p: None)
        fabric.set_region("a", "eu")
        fabric.set_region("b", "eu")
        fabric.connect("a", "b", 7.5)
        assert fabric.hop_us("a", "b") == 7.5

    def test_unregister_clears_region_tag(self):
        fabric = Fabric()
        fabric.register("a", lambda s, p: None)
        fabric.set_region("a", "eu")
        fabric.unregister("a")
        assert fabric.region_of("a") is None


class TestExchangeCostHop:
    def test_default_hop_matches_lan_model(self):
        model = MppCostModel()
        assert exchange_cost_us(model, 100, 8) == \
            exchange_cost_us(model, 100, 8, hop_us=model.lan_hop_us)

    def test_wan_hop_raises_cost(self):
        model = MppCostModel()
        lan = exchange_cost_us(model, 100, 8, edges=2)
        wan = exchange_cost_us(model, 100, 8, edges=2, hop_us=30_000.0)
        assert wan > lan
        # Only the per-edge hop pairs changed, not the wire-byte term.
        assert wan - lan == pytest.approx(
            2 * 2 * (30_000.0 - model.lan_hop_us))
