"""Tests for the message fabric and cost contexts."""

import pytest

from repro.common.errors import NetworkError
from repro.net.costing import CostContext
from repro.net.fabric import Fabric
from repro.net.latency import MppCostModel
from repro.net.resource import ResourcePool


class TestFabric:
    def make(self):
        fabric = Fabric()
        received = []
        fabric.register("a", lambda src, msg: ("a-saw", src, msg))
        fabric.register("b", lambda src, msg: received.append((src, msg)))
        fabric.connect("a", "b", latency_us=100.0)
        return fabric, received

    def test_send_returns_reply(self):
        fabric, _ = self.make()
        assert fabric.send("b", "a", "hello") == ("a-saw", "b", "hello")

    def test_send_advances_clock(self):
        fabric, _ = self.make()
        fabric.send("a", "b", "x", size_bytes=100)
        assert fabric.clock.now_us == pytest.approx(2 * 100.0 + 1.0)

    def test_unreachable_raises(self):
        fabric, _ = self.make()
        fabric.register("c", lambda s, m: None)
        with pytest.raises(NetworkError):
            fabric.send("a", "c", "x")

    def test_partition_and_heal(self):
        fabric, _ = self.make()
        fabric.disconnect("a", "b")
        with pytest.raises(NetworkError):
            fabric.send("a", "b", "x")
        fabric.reconnect("a", "b")
        fabric.send("a", "b", "x")

    def test_neighbors(self):
        fabric, _ = self.make()
        assert fabric.neighbors("a") == {"b"}
        fabric.disconnect("a", "b")
        assert fabric.neighbors("a") == set()

    def test_duplicate_register_rejected(self):
        fabric, _ = self.make()
        with pytest.raises(NetworkError):
            fabric.register("a", lambda s, m: None)

    def test_counters(self):
        fabric, _ = self.make()
        fabric.send("a", "b", "x", size_bytes=42)
        assert fabric.messages_sent == 1
        assert fabric.bytes_sent == 42


class TestCostContext:
    def test_charge_advances_cursor_and_resource(self):
        pool = ResourcePool()
        dn = pool.add("dn0")
        ctx = CostContext(pool, MppCostModel(lan_hop_us=10.0))
        ctx.charge(dn, 30.0)
        assert ctx.t_us == pytest.approx(10.0 + 30.0 + 10.0)
        assert dn.total_busy_us == 30.0

    def test_charge_local(self):
        ctx = CostContext(ResourcePool(), MppCostModel())
        ctx.charge_local(5.0)
        ctx.charge_local(7.0)
        assert ctx.t_us == 12.0

    def test_wait_until_is_monotone(self):
        ctx = CostContext(ResourcePool(), MppCostModel(), start_us=100.0)
        ctx.wait_until(50.0)
        assert ctx.t_us == 100.0
        ctx.wait_until(200.0)
        assert ctx.t_us == 200.0

    def test_speedup_scales_demand(self):
        pool = ResourcePool()
        fast = pool.add("fast", speedup=2.0)
        ctx = CostContext(pool, MppCostModel(lan_hop_us=0.0))
        ctx.charge(fast, 100.0)
        assert ctx.t_us == 50.0
        assert fast.total_busy_us == 50.0


class TestCostModels:
    def test_scaled_copy(self):
        model = MppCostModel()
        doubled = model.scaled(2.0)
        assert doubled.dn_stmt_us == model.dn_stmt_us * 2
        assert doubled.gtm_snapshot_us == model.gtm_snapshot_us * 2
        # original unchanged (frozen dataclass semantics)
        assert model.dn_stmt_us != doubled.dn_stmt_us

    def test_collab_ratio_matches_paper(self):
        from repro.net.latency import CollabCostModel

        cost = CollabCostModel()
        assert cost.internet_rtt_us / cost.d2d_rtt_us >= 10.0


class TestUnregisterCleanup:
    def test_unregister_drops_links_and_cuts(self):
        fabric = Fabric()
        fabric.register("a", lambda s, m: None)
        fabric.register("b", lambda s, m: ("pong", s, m))
        fabric.connect("a", "b", latency_us=50.0)
        fabric.disconnect("a", "b")
        fabric.unregister("a")
        # No stale latency entries or cut state survive the endpoint.
        assert not any("a" in pair for pair in fabric._latency_us)
        assert not any("a" in pair for pair in fabric._cut)

    def test_reregistered_name_does_not_inherit_old_links(self):
        """A replacement endpoint under a recycled name starts from scratch:
        neither the old link nor the old partition leaks through."""
        fabric = Fabric()
        fabric.register("a", lambda s, m: None)
        fabric.register("b", lambda s, m: ("pong", s, m))
        fabric.connect("a", "b", latency_us=50.0)
        fabric.unregister("a")
        fabric.register("a", lambda s, m: None)
        with pytest.raises(NetworkError):
            fabric.send("a", "b", "x")      # old link must not resurrect
        fabric.connect("a", "b", latency_us=10.0)
        assert fabric.send("a", "b", "x") == ("pong", "a", "x")

    def test_reregistered_name_does_not_inherit_old_cut(self):
        fabric = Fabric()
        fabric.register("a", lambda s, m: None)
        fabric.register("b", lambda s, m: ("pong", s, m))
        fabric.connect("a", "b", latency_us=50.0)
        fabric.disconnect("a", "b")
        fabric.unregister("a")
        fabric.register("a", lambda s, m: None)
        fabric.connect("a", "b", latency_us=10.0)
        # The old cut is gone: the fresh link works immediately.
        assert fabric.send("a", "b", "x") == ("pong", "a", "x")
