"""Tests for bound expressions, canonical texts and statistics."""

import pytest

from repro.common.errors import ExecutionError
from repro.optimizer.expr import (
    BoundBinary,
    BoundColumn,
    BoundConst,
    BoundInList,
    BoundIsNull,
    BoundScalarCall,
    BoundUnary,
    combine_conjuncts,
    conjuncts,
)
from repro.optimizer.stats import analyze_rows
from repro.storage.types import DataType


def col(i, name="t.a"):
    return BoundColumn(i, name, DataType.INT)


class TestEvaluation:
    def test_arithmetic_and_comparison(self):
        expr = BoundBinary(">", BoundBinary("+", col(0), BoundConst(1)),
                           BoundConst(10))
        assert expr.eval((10,)) is True
        assert expr.eval((5,)) is False

    def test_null_propagates(self):
        expr = BoundBinary("+", col(0), BoundConst(1))
        assert expr.eval((None,)) is None

    def test_and_short_circuit_with_null(self):
        expr = BoundBinary("and", BoundConst(False), BoundConst(None))
        assert expr.eval(()) is False
        expr = BoundBinary("and", BoundConst(True), BoundConst(None))
        assert expr.eval(()) is None

    def test_or_with_null(self):
        assert BoundBinary("or", BoundConst(None), BoundConst(True)).eval(()) is True
        assert BoundBinary("or", BoundConst(None), BoundConst(False)).eval(()) is None

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            BoundBinary("/", BoundConst(1), BoundConst(0)).eval(())

    def test_like(self):
        expr = BoundBinary("like", col(0, "t.s"), BoundConst("a%c"))
        assert expr.eval(("abc",)) is True
        assert expr.eval(("abd",)) is False
        under = BoundBinary("like", col(0, "t.s"), BoundConst("a_c"))
        assert under.eval(("axc",)) is True

    def test_in_list_and_negation(self):
        expr = BoundInList(col(0), (BoundConst(1), BoundConst(2)))
        assert expr.eval((1,)) is True
        assert expr.eval((3,)) is False
        assert BoundInList(col(0), (BoundConst(1),), negated=True).eval((3,)) is True

    def test_is_null(self):
        assert BoundIsNull(col(0)).eval((None,)) is True
        assert BoundIsNull(col(0), negated=True).eval((1,)) is True

    def test_coalesce(self):
        expr = BoundScalarCall("coalesce", (col(0), BoundConst(9)))
        assert expr.eval((None,)) == 9
        assert expr.eval((4,)) == 4


class TestCanonicalText:
    def test_predicate_matches_table1_format(self):
        # The paper's Table I: SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))
        expr = BoundBinary(">", col(0, "olap.t1.b1"), BoundConst(10))
        assert expr.text() == "OLAP.T1.B1>10"

    def test_constant_on_left_normalized(self):
        a = BoundBinary("<", BoundConst(10), col(0, "t.a"))
        b = BoundBinary(">", col(0, "t.a"), BoundConst(10))
        assert a.text() == b.text()

    def test_equality_operands_sorted(self):
        a = BoundBinary("=", col(0, "olap.t2.a2"), col(1, "olap.t1.a1"))
        b = BoundBinary("=", col(1, "olap.t1.a1"), col(0, "olap.t2.a2"))
        assert a.text() == b.text() == "OLAP.T1.A1=OLAP.T2.A2"

    def test_conjunct_order_normalized(self):
        p = BoundBinary(">", col(0, "t.b"), BoundConst(1))
        q = BoundBinary("=", col(1, "t.c"), BoundConst("x"))
        ab = BoundBinary("and", p, q)
        ba = BoundBinary("and", q, p)
        assert ab.text() == ba.text()

    def test_in_list_items_sorted(self):
        a = BoundInList(col(0), (BoundConst(2), BoundConst(1)))
        b = BoundInList(col(0), (BoundConst(1), BoundConst(2)))
        assert a.text() == b.text()

    def test_conjuncts_split_and_combine(self):
        p = BoundBinary(">", col(0), BoundConst(1))
        q = BoundBinary("<", col(0), BoundConst(9))
        both = combine_conjuncts([p, q])
        assert [c.text() for c in conjuncts(both)] == [p.text(), q.text()]
        assert combine_conjuncts([]) is None
        assert conjuncts(None) == []


class TestStatistics:
    def rows(self):
        return [{"a": i, "b": i % 10, "s": f"x{i % 4}",
                 "n": None if i % 5 == 0 else i} for i in range(100)]

    def test_analyze_basics(self):
        stats = analyze_rows(self.rows(), ["a", "b", "s", "n"])
        assert stats.row_count == 100
        assert stats.columns["a"].ndv == 100
        assert stats.columns["b"].ndv == 10
        assert stats.columns["s"].ndv == 4
        assert stats.columns["n"].null_frac == pytest.approx(0.2)
        assert stats.columns["a"].min_value == 0
        assert stats.columns["a"].max_value == 99

    def test_equality_selectivity(self):
        stats = analyze_rows(self.rows(), ["b"])
        sel = stats.columns["b"].selectivity_eq(3, 100)
        assert sel == pytest.approx(0.1)
        assert stats.columns["b"].selectivity_eq(42, 100) == 0.0

    def test_range_selectivity_from_histogram(self):
        stats = analyze_rows(self.rows(), ["a"])
        col_stats = stats.columns["a"]
        half = col_stats.selectivity_range(None, 49)
        assert 0.4 < half < 0.6
        assert col_stats.selectivity_range(90, None) < 0.2
        assert col_stats.selectivity_range(None, None) == pytest.approx(1.0)

    def test_empty_table(self):
        stats = analyze_rows([], ["a"])
        assert stats.row_count == 0
        assert stats.columns["a"].ndv == 0
