"""Tests for constant folding and trivial-predicate elimination."""

import pytest

from repro.cluster import MppCluster
from repro.optimizer.expr import (
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundConst,
    BoundInList,
    BoundIsNull,
    BoundUnary,
)
from repro.optimizer.folding import fold_expr, fold_plan
from repro.optimizer.logical import LogicalValues, walk
from repro.sql.engine import SqlEngine
from repro.storage.types import DataType


def col(i=0, name="t.a"):
    return BoundColumn(i, name, DataType.INT)


class TestExprFolding:
    def test_arithmetic(self):
        expr = BoundBinary("+", BoundConst(1), BoundBinary(
            "*", BoundConst(2), BoundConst(3)))
        assert fold_expr(expr) == BoundConst(7)

    def test_division_by_zero_left_for_runtime(self):
        expr = BoundBinary("/", BoundConst(1), BoundConst(0))
        folded = fold_expr(expr)
        assert not isinstance(folded, BoundConst)

    def test_and_true_elided(self):
        expr = BoundBinary("and", BoundConst(True),
                           BoundBinary(">", col(), BoundConst(1)))
        folded = fold_expr(expr)
        assert isinstance(folded, BoundBinary) and folded.op == ">"

    def test_and_false_short_circuits(self):
        expr = BoundBinary("and", BoundBinary(">", col(), BoundConst(1)),
                           BoundConst(False))
        assert fold_expr(expr) == BoundConst(False)

    def test_or_true_short_circuits(self):
        expr = BoundBinary("or", BoundConst(True),
                           BoundBinary(">", col(), BoundConst(1)))
        assert fold_expr(expr) == BoundConst(True)

    def test_double_negation(self):
        expr = BoundUnary("not", BoundUnary("not",
                                            BoundIsNull(col())))
        assert isinstance(fold_expr(expr), BoundIsNull)

    def test_constant_comparison(self):
        assert fold_expr(BoundBinary("<", BoundConst(1),
                                     BoundConst(2))) == BoundConst(True)

    def test_in_list_of_constants(self):
        expr = BoundInList(BoundConst(2), (BoundConst(1), BoundConst(2)))
        folded = fold_expr(expr)
        assert isinstance(folded, BoundConst) and folded.value is True

    def test_case_constant_condition_collapses(self):
        expr = BoundCase(((BoundConst(True), BoundConst("yes")),),
                         BoundConst("no"))
        assert fold_expr(expr) == BoundConst("yes")

    def test_case_false_arms_dropped(self):
        live = BoundBinary(">", col(), BoundConst(1))
        expr = BoundCase(((BoundConst(False), BoundConst("dead")),
                          (live, BoundConst("live"))), BoundConst("dflt"))
        folded = fold_expr(expr)
        assert isinstance(folded, BoundCase)
        assert len(folded.whens) == 1

    def test_pure_function_folds(self):
        from repro.optimizer.expr import SCALAR_FUNCTIONS, BoundScalarCall

        fn, dtype = SCALAR_FUNCTIONS["upper"]
        expr = BoundScalarCall("upper", (BoundConst("abc"),), fn, dtype)
        assert fold_expr(expr) == BoundConst("ABC", dtype)

    def test_non_constant_untouched(self):
        expr = BoundBinary(">", col(), BoundConst(1))
        assert fold_expr(expr) is not expr  # rebuilt
        assert fold_expr(expr).text() == expr.text()


class TestPlanFolding:
    @pytest.fixture
    def engine(self):
        cluster = MppCluster(num_dns=1)
        eng = SqlEngine(cluster)
        eng.execute("create table t (a int primary key, b int)")
        eng.execute("insert into t values " + ",".join(
            f"({i}, {i % 5})" for i in range(50)))
        eng.execute("analyze")
        return eng

    def test_where_true_is_free(self, engine):
        plan = engine.execute("explain select * from t where 1 = 1").plan_text
        assert "Filter" not in plan
        assert engine.execute("select count(*) from t where 1 = 1").scalar() == 50

    def test_where_false_short_circuits_to_empty(self, engine):
        result = engine.execute("select count(*) from t where 1 = 2")
        assert result.scalar() == 0
        plan = engine.execute("explain select * from t where 1 = 2").plan_text
        assert "SeqScan" not in plan   # the scan was eliminated entirely

    def test_constant_arithmetic_in_predicate(self, engine):
        # 1 + 1 folds so the canonical predicate is b > 2.
        result = engine.execute("select count(*) from t where b > 1 + 1")
        assert result.scalar() == 20   # b in {3, 4}, 10 rows each
        plan = engine.execute("explain select * from t where b > 1 + 1").plan_text
        assert "T.B>2" in plan

    def test_join_on_false_is_empty(self, engine):
        result = engine.execute(
            "select count(*) from t x join t y on 1 = 0")
        assert result.scalar() == 0

    def test_fold_plan_produces_empty_values_node(self, engine):
        from repro.sql.binder import Binder
        from repro.sql.parser import parse

        binder = Binder(engine.cluster.catalog)
        logical = binder.bind_select(parse("select a from t where false"))
        folded = fold_plan(logical)
        assert any(isinstance(n, LogicalValues) and not n.rows
                   for n in walk(folded))
