"""Tests for pushdown, join ordering, cardinality and physical planning."""

import pytest

from repro.cluster import MppCluster
from repro.exec.operators import (
    PExchange,
    PFilter,
    PHashJoin,
    PNestedLoopJoin,
    PScan,
    walk_physical,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.logical import LogicalFilter, LogicalJoin, LogicalScan, walk
from repro.optimizer.rules import push_down_filters
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.engine import SqlEngine
from repro.sql.parser import parse


@pytest.fixture
def engine():
    cluster = MppCluster(num_dns=2)
    eng = SqlEngine(cluster)
    eng.execute("create table big (id int primary key, k int, pad text)")
    eng.execute("create table mid (id int primary key, k int)")
    eng.execute("create table small (id int primary key, tag text)")
    eng.execute("insert into big values " + ",".join(
        f"({i}, {i % 50}, 'p')" for i in range(1000)))
    eng.execute("insert into mid values " + ",".join(
        f"({i}, {i % 50})" for i in range(100)))
    eng.execute("insert into small values " + ",".join(
        f"({i}, 't{i}')" for i in range(5)))
    eng.execute("analyze")
    return eng


def logical_for(engine, sql):
    stmt = parse(sql)
    binder = Binder(engine.cluster.catalog, engine.table_functions)
    return binder.bind_select(stmt)


def physical_for(engine, sql):
    stmt = parse(sql)
    session = engine.cluster.session()
    txn = session.begin(multi_shard=True)
    plan = engine.plan_select(stmt, txn)
    txn.commit()
    return plan


class TestPushdown:
    def test_filter_merges_into_scan(self, engine):
        plan = logical_for(engine, "select * from big where k > 10")
        optimized = push_down_filters(plan)
        scans = [n for n in walk(optimized) if isinstance(n, LogicalScan)]
        assert scans[0].predicate is not None
        assert "BIG.K>10" in scans[0].predicate.text()
        assert not any(isinstance(n, LogicalFilter) for n in walk(optimized))

    def test_join_splits_conjuncts_by_side(self, engine):
        plan = logical_for(
            engine,
            "select * from big join mid on big.k = mid.k "
            "where big.id < 100 and mid.id > 5")
        optimized = push_down_filters(plan)
        scans = {n.table: n for n in walk(optimized)
                 if isinstance(n, LogicalScan)}
        assert scans["big"].predicate is not None
        assert scans["mid"].predicate is not None

    def test_cross_join_with_condition_becomes_inner(self, engine):
        plan = logical_for(
            engine, "select * from big, mid where big.k = mid.k")
        optimized = push_down_filters(plan)
        joins = [n for n in walk(optimized) if isinstance(n, LogicalJoin)]
        assert joins and joins[0].kind == "inner"
        assert joins[0].condition is not None

    def test_left_join_right_filter_stays_above(self, engine):
        plan = logical_for(
            engine,
            "select * from big left join mid on big.k = mid.k "
            "where mid.id > 5")
        optimized = push_down_filters(plan)
        scans = {n.table: n for n in walk(optimized)
                 if isinstance(n, LogicalScan)}
        assert scans["mid"].predicate is None  # must not move below outer join
        assert any(isinstance(n, LogicalFilter) for n in walk(optimized))


class TestCardinality:
    def test_scan_estimate_uses_stats(self, engine):
        estimator = CardinalityEstimator(engine.stats)
        plan = push_down_filters(
            logical_for(engine, "select * from big where k = 7"))
        scan = [n for n in walk(plan) if isinstance(n, LogicalScan)][0]
        estimate = estimator.estimate(scan)
        assert estimate == pytest.approx(1000 / 50, rel=0.3)

    def test_join_estimate(self, engine):
        estimator = CardinalityEstimator(engine.stats)
        plan = push_down_filters(
            logical_for(engine, "select * from big, mid where big.k = mid.k"))
        join = [n for n in walk(plan) if isinstance(n, LogicalJoin)][0]
        # |big| * |mid| / max(ndv) = 1000 * 100 / 50
        assert estimator.estimate(join) == pytest.approx(2000, rel=0.3)

    def test_limit_caps_estimate(self, engine):
        estimator = CardinalityEstimator(engine.stats)
        plan = logical_for(engine, "select * from big limit 5")
        assert estimator.estimate(plan) == 5.0


class TestPhysicalChoices:
    def test_equi_join_uses_hash_join(self, engine):
        plan = physical_for(
            engine, "select * from big join mid on big.k = mid.k")
        kinds = [type(op) for op in walk_physical(plan)]
        assert PHashJoin in kinds
        assert PNestedLoopJoin not in kinds

    def test_non_equi_join_uses_nested_loop(self, engine):
        plan = physical_for(
            engine, "select * from small s1 join small s2 on s1.id < s2.id")
        kinds = [type(op) for op in walk_physical(plan)]
        assert PNestedLoopJoin in kinds

    def test_small_side_broadcast(self, engine):
        plan = physical_for(
            engine, "select * from big join small on big.k = small.id")
        exchanges = [op for op in walk_physical(plan)
                     if isinstance(op, PExchange)]
        broadcast = [e for e in exchanges if e.kind == "broadcast"]
        assert broadcast, "the 5-row table should be broadcast"
        scan = broadcast[0]
        tables = [op.table for op in walk_physical(scan)
                  if isinstance(op, PScan)]
        assert tables == ["small"]

    def test_balanced_join_redistributes(self, engine):
        plan = physical_for(
            engine, "select * from big b1 join big b2 on b1.k = b2.k")
        kinds = [op.kind for op in walk_physical(plan)
                 if isinstance(op, PExchange)]
        assert kinds.count("redistribute") == 2

    def test_join_order_puts_filtered_side_first(self, engine):
        # A highly selective filter on big should make it cheaper than mid.
        result = engine.execute(
            "select count(*) from big, mid where big.k = mid.k and big.id = 3")
        assert result.scalar() == 2  # id=3 -> k=3; mid has 2 rows with k=3

    def test_estimates_annotated(self, engine):
        plan = physical_for(engine, "select * from big where k > 25")
        scan = [op for op in walk_physical(plan) if isinstance(op, PScan)][0]
        assert scan.estimated_rows > 0
