"""Exchange placement in fragmented plans.

Satellite coverage for the distributed lowering: broadcast-vs-redistribute
thresholds, equi-key orientation, co-located elision, and top-level gather
elision for replicated/single-DN plans.
"""

import pytest

from repro.cluster import MppCluster
from repro.exec.operators import (
    PExchange,
    PFragment,
    PHashJoin,
    PScan,
    walk_physical,
)
from repro.sql import ast  # noqa: F401 - parity with test_planner imports
from repro.sql.engine import SqlEngine
from repro.sql.parser import parse


def build_engine(num_dns=2, fragmented=True):
    cluster = MppCluster(num_dns=num_dns)
    eng = SqlEngine(cluster, fragmented=fragmented)
    eng.execute("create table facts (id int primary key, k int, v double)")
    eng.execute("create table dims (k int primary key, name text)")
    eng.execute("create table tiny (id int primary key, tag text)")
    eng.execute("create table lookup (id int primary key, label text) "
                "distribute by replication")
    eng.execute("insert into facts values " + ",".join(
        f"({i}, {i % 40}, {i * 0.5})" for i in range(800)))
    eng.execute("insert into dims values " + ",".join(
        f"({i}, 'd{i}')" for i in range(40)))
    eng.execute("insert into tiny values " + ",".join(
        f"({i}, 't{i}')" for i in range(4)))
    eng.execute("insert into lookup values " + ",".join(
        f"({i}, 'l{i}')" for i in range(10)))
    eng.execute("analyze")
    return eng


@pytest.fixture
def engine():
    return build_engine()


def physical_for(engine, sql):
    stmt = parse(sql)
    session = engine.cluster.session()
    txn = session.begin(multi_shard=True)
    plan = engine.plan_select(stmt, txn)
    txn.commit()
    return plan


def exchanges(plan):
    return [op for op in walk_physical(plan) if isinstance(op, PExchange)]


def fragments(plan):
    return [op for op in walk_physical(plan) if isinstance(op, PFragment)]


class TestThresholds:
    def test_small_side_broadcast_into_fragments(self, engine):
        plan = physical_for(
            engine, "select * from facts join tiny on facts.k = tiny.id")
        kinds = [e.kind for e in exchanges(plan)]
        assert "broadcast" in kinds
        assert "redistribute" not in kinds
        # The broadcast lives inside the probe side's fragments: the join
        # runs per-DN, below the top gather.
        for frag in fragments(plan):
            joins = [op for op in walk_physical(frag)
                     if isinstance(op, PHashJoin)]
            assert joins, "each fragment should hold its own join"

    def test_comparable_sides_redistribute_both(self, engine):
        plan = physical_for(
            engine, "select * from facts f1 join facts f2 on f1.k = f2.k")
        kinds = [e.kind for e in exchanges(plan)]
        assert kinds.count("redistribute") == 2
        assert "broadcast" not in kinds

    def test_reversed_equi_key_orientation(self, engine):
        # tiny.id = facts.k (small side written on the left) must still
        # broadcast tiny, not redistribute.
        plan = physical_for(
            engine, "select * from tiny join facts on tiny.id = facts.k")
        kinds = [e.kind for e in exchanges(plan)]
        assert "broadcast" in kinds
        assert "redistribute" not in kinds
        broadcast = [e for e in exchanges(plan) if e.kind == "broadcast"][0]
        tables = [op.table for op in walk_physical(broadcast)
                  if isinstance(op, PScan)]
        assert tables == ["tiny"]


class TestColocation:
    def test_colocated_join_elides_exchanges(self, engine):
        # Both tables hash-distributed on their primary key = the join key:
        # matching rows share a node, so no redistribute and no broadcast —
        # just per-fragment joins under the single top gather.
        plan = physical_for(
            engine, "select * from facts join dims on facts.id = dims.k")
        kinds = [e.kind for e in exchanges(plan)]
        assert kinds == ["gather"]
        for frag in fragments(plan):
            joins = [op for op in walk_physical(frag)
                     if isinstance(op, PHashJoin)]
            assert joins

    def test_non_distribution_key_join_is_not_colocated(self, engine):
        # facts is distributed on id, joined on k: co-location must NOT be
        # assumed.
        plan = physical_for(
            engine, "select * from facts join dims on facts.k = dims.k")
        kinds = [e.kind for e in exchanges(plan)]
        assert kinds != ["gather"]


class TestGatherElision:
    def test_replicated_scan_needs_no_gather(self, engine):
        plan = physical_for(engine, "select * from lookup")
        assert exchanges(plan) == []
        assert fragments(plan) == []

    def test_replicated_join_runs_beside_fragments(self, engine):
        # Hash x replicated joins per-DN with no broadcast of the
        # replicated side (each node already holds a full copy).
        plan = physical_for(
            engine,
            "select * from facts join lookup on facts.k = lookup.id")
        kinds = [e.kind for e in exchanges(plan)]
        assert kinds == ["gather"]

    def test_single_dn_cluster_has_no_exchanges(self):
        eng = build_engine(num_dns=1)
        plan = physical_for(eng, "select * from facts where k < 5")
        assert exchanges(plan) == []
        assert fragments(plan) == []

    def test_hash_scan_gathers_once_at_top(self, engine):
        plan = physical_for(engine, "select * from facts where k < 5")
        exch = exchanges(plan)
        assert [e.kind for e in exch] == ["gather"]
        assert len(fragments(plan)) == engine.cluster.num_dns

    def test_unfragmented_engine_keeps_legacy_shape(self):
        eng = build_engine(fragmented=False)
        plan = physical_for(eng, "select * from facts where k < 5")
        assert [e.kind for e in exchanges(plan)] == ["gather"]
        assert fragments(plan) == []


class TestCorrectnessParity:
    QUERIES = [
        "select count(*), sum(v) from facts where k < 10",
        "select k, count(*) from facts group by k order by k",
        "select d.name, count(*) c from facts f join dims d on f.k = d.k "
        "group by d.name order by d.name",
        "select * from facts join tiny on facts.k = tiny.id order by facts.id",
        "select f.id from facts f join lookup l on f.k = l.id "
        "where l.id = 3 order by f.id",
        "select id from facts where k = 1 union all select id from tiny "
        "order by id limit 7",
        "select max(v), min(id) from facts",
        "select count(*) from facts f1 join facts f2 on f1.k = f2.k",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_fragmented_matches_gather_all(self, sql):
        frag = build_engine(fragmented=True)
        flat = build_engine(fragmented=False)
        got = frag.execute(sql)
        want = flat.execute(sql)
        assert got.columns == want.columns
        assert len(got.rows) == len(want.rows)
        for g, w in zip(got.rows, want.rows):
            assert g == pytest.approx(w), sql
