"""Tests for workload generators and the OLTP simulation driver."""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.core.experiment import FIGURE3_WORKLOADS, run_cell
from repro.gmdb.delta import object_wire_size
from repro.storage.table import shard_of_value
from repro.workloads.driver import run_oltp
from repro.workloads.mme import MmeSessionGenerator, mme_schema
from repro.workloads.tpcc_lite import (
    TpccLiteWorkload,
    customer_key,
    district_key,
    load_tpcc,
    stock_key,
    tpcc_schemas,
)


class TestTpccSchemas:
    def test_key_encoding_routes_by_warehouse(self):
        schemas = {s.name: s for s in tpcc_schemas()}
        for num_dns in (2, 4, 8):
            w = 5
            home = shard_of_value(w, num_dns)
            assert schemas["district"].shard_of_key(
                district_key(w, 3), num_dns) == home
            assert schemas["customer"].shard_of_key(
                customer_key(w, 3, 7), num_dns) == home
            assert schemas["stock"].shard_of_key(
                stock_key(w, 42), num_dns) == home

    def test_item_is_replicated(self):
        schemas = {s.name: s for s in tpcc_schemas()}
        from repro.storage.table import Distribution

        assert schemas["item"].distribution is Distribution.REPLICATION


class TestWorkloadGeneration:
    def test_ss_stream_never_remote(self):
        workload = TpccLiteWorkload(num_warehouses=4, multi_shard_fraction=0.0)
        stream = workload.stream(home_warehouse=1, seed_offset=0)
        specs = [next(stream) for _ in range(50)]
        assert all(not s.multi_shard for s in specs)
        assert all(s.home_warehouse == 1 for s in specs)

    def test_ms_fraction_approximate(self):
        workload = TpccLiteWorkload(num_warehouses=8, multi_shard_fraction=0.3,
                                    seed=5)
        stream = workload.stream(home_warehouse=0, seed_offset=0)
        specs = [next(stream) for _ in range(500)]
        remote = sum(1 for s in specs if s.multi_shard)
        assert 100 < remote < 200

    def test_deterministic_streams(self):
        a = TpccLiteWorkload(4, 0.1, seed=9).stream(0, 3)
        b = TpccLiteWorkload(4, 0.1, seed=9).stream(0, 3)
        for _ in range(20):
            sa, sb = next(a), next(b)
            assert (sa.kind, sa.multi_shard) == (sb.kind, sb.multi_shard)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TpccLiteWorkload(0)
        with pytest.raises(ValueError):
            TpccLiteWorkload(4, multi_shard_fraction=1.5)
        with pytest.raises(ValueError):
            TpccLiteWorkload(1, multi_shard_fraction=0.5)


class TestDriver:
    def test_workload_executes_cleanly(self):
        cluster = MppCluster(num_dns=2, mode=TxnMode.GTM_LITE)
        load_tpcc(cluster, num_warehouses=4, seed=3)
        workload = TpccLiteWorkload(4, multi_shard_fraction=0.1, seed=3)
        result = run_oltp(cluster, workload, clients_per_dn=4,
                          txns_per_client=10)
        assert result.committed == 2 * 4 * 10
        assert result.throughput_tps > 0
        assert result.merges > 0           # multi-shard readers merged
        # money conservation: sum of ytd equals sum of payments
        session = cluster.session()
        txn = session.begin(multi_shard=True)
        w_ytd = sum(row["w_ytd"] for _, row in txn.scan("warehouse"))
        c_paid = sum(row["c_ytd_payment"] for _, row in txn.scan("customer"))
        txn.commit()
        assert w_ytd == pytest.approx(c_paid)

    def test_gtm_lite_has_fewer_gtm_requests(self):
        results = {}
        for mode in (TxnMode.GTM_LITE, TxnMode.CLASSICAL):
            cluster = MppCluster(num_dns=2, mode=mode)
            load_tpcc(cluster, 4, seed=3)
            workload = TpccLiteWorkload(4, multi_shard_fraction=0.1, seed=3)
            results[mode] = run_oltp(cluster, workload, clients_per_dn=4,
                                     txns_per_client=10)
        assert results[TxnMode.GTM_LITE].gtm_requests < \
            results[TxnMode.CLASSICAL].gtm_requests / 3


class TestFigure3Cells:
    def test_gtm_lite_beats_classical_at_scale(self):
        lite = run_cell(4, 0.0, TxnMode.GTM_LITE, warehouses_per_node=2,
                        clients_per_dn=4, txns_per_client=10)
        classical = run_cell(4, 0.0, TxnMode.CLASSICAL, warehouses_per_node=2,
                             clients_per_dn=4, txns_per_client=10)
        assert lite.throughput_tps > classical.throughput_tps

    def test_classical_bottleneck_is_gtm_at_scale(self):
        classical = run_cell(8, 0.0, TxnMode.CLASSICAL, warehouses_per_node=2,
                             clients_per_dn=4, txns_per_client=10)
        assert classical.bottleneck == "gtm"

    def test_workload_labels(self):
        assert FIGURE3_WORKLOADS == {"SS": 0.0, "MS": 0.1}


class TestMmeGenerator:
    def test_sessions_in_size_band(self):
        gen = MmeSessionGenerator(3)
        sizes = [object_wire_size(gen.session(i)) for i in range(10)]
        assert all(4_500 <= s <= 12_000 for s in sizes)

    def test_sessions_validate_against_their_schema(self):
        for version in (3, 5, 8):
            gen = MmeSessionGenerator(version)
            mme_schema(version).validate(gen.session(0))

    def test_unique_imsis(self):
        gen = MmeSessionGenerator(3)
        assert gen.imsi(1) != gen.imsi(2)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            mme_schema(4)
