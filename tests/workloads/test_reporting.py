"""Tests for the canned reporting workload and its learning behavior."""

import pytest

from repro.cluster import MppCluster
from repro.learnopt.feedback import CaptureSettings
from repro.sql.engine import SqlEngine
from repro.workloads.reporting import (
    ReportingConfig,
    ReportingWorkload,
    load_reporting_schema,
    run_reporting,
)


@pytest.fixture
def engine():
    cluster = MppCluster(num_dns=2)
    eng = SqlEngine(cluster,
                    capture_settings=CaptureSettings(error_threshold=0.3))
    load_reporting_schema(eng, ReportingConfig(sales_rows=2000,
                                               customers=200))
    return eng


class TestSchema:
    def test_row_counts(self, engine):
        assert engine.execute("select count(*) from sales").scalar() == 2000
        assert engine.execute("select count(*) from customers").scalar() == 200

    def test_correlation_is_present(self, engine):
        north_gold = engine.execute(
            "select count(*) from sales "
            "where region = 'north' and status = 'gold'").scalar()
        south_gold = engine.execute(
            "select count(*) from sales "
            "where region = 'south' and status = 'gold'").scalar()
        assert north_gold > 10 * max(south_gold, 1)


class TestWorkload:
    def test_catalog_is_finite_and_distinct(self):
        catalog = ReportingWorkload().instances()
        assert len(catalog) == len(set(catalog))
        assert len(catalog) > 10

    def test_stream_repeats_catalog_members(self):
        workload = ReportingWorkload(seed=3)
        catalog = set(workload.instances())
        stream = list(workload.stream(50))
        assert all(q in catalog for q in stream)
        assert len(set(stream)) < len(stream)   # recurrence

    def test_stream_deterministic(self):
        a = list(ReportingWorkload(seed=5).stream(20))
        b = list(ReportingWorkload(seed=5).stream(20))
        assert a == b


class TestLearningOnCannedQueries:
    def test_store_converges_and_hits(self, engine):
        summary = run_reporting(engine, queries=60, seed=9)
        assert summary["steps_captured"] > 0
        assert summary["store_hits"] > 0
        # The store stays bounded by the catalog, not the stream length.
        assert summary["store_entries"] < 60

    def test_every_query_still_correct_under_learning(self, engine):
        baseline = SqlEngine(engine.cluster, learning_enabled=False)
        workload = ReportingWorkload(seed=11)
        for sql in workload.instances()[:12]:
            learned = engine.execute(sql)
            plain = baseline.execute(sql)
            # Learning may pick a different (equally correct) plan; float
            # aggregates then accumulate in a different order, so compare
            # SUM columns to within rounding instead of bit-for-bit.
            assert len(learned.rows) == len(plain.rows), sql
            for got, want in zip(learned.rows, plain.rows):
                assert got == pytest.approx(want, rel=1e-9), sql
