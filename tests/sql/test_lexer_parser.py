"""Tests for the SQL lexer and parser."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse, parse_expression


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("select foo")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75")
        assert [t.value for t in tokens[:3]] == ["1", "2.5", ".75"]

    def test_comments_skipped(self):
        tokens = tokenize("select 1 -- trailing comment\n+ 2")
        values = [t.value for t in tokens if t.type is not TokenType.EOF]
        assert values == ["select", "1", "+", "2"]

    def test_two_char_ops(self):
        tokens = tokenize("a <= b <> c >= d != e")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == ["<=", "<>", ">=", "!="]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @foo")

    def test_case_insensitivity(self):
        tokens = tokenize("SELECT Foo")
        assert tokens[0].value == "select"
        assert tokens[1].value == "foo"


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_qualified_columns(self):
        expr = parse_expression("olap.t1.b1 > 10")
        assert expr.left == ast.ColumnRef(("olap", "t1", "b1"))

    def test_in_between_like_isnull(self):
        assert isinstance(parse_expression("a in (1,2)"), ast.InList)
        assert isinstance(parse_expression("a between 1 and 2"), ast.Between)
        assert isinstance(parse_expression("a not in (1)"), ast.InList)
        assert isinstance(parse_expression("a is null"), ast.IsNull)
        assert parse_expression("a is not null").negated

    def test_case_when(self):
        expr = parse_expression("case when a > 1 then 'big' else 'small' end")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.default == ast.Literal("small")

    def test_function_call_with_distinct(self):
        expr = parse_expression("count(distinct a)")
        assert isinstance(expr, ast.FuncCall) and expr.distinct

    def test_unary_minus(self):
        expr = parse_expression("-a * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)


class TestStatementParsing:
    def test_simple_select(self):
        stmt = parse("select a, b as bee from t where a > 1 "
                     "group by a, b having count(*) > 2 "
                     "order by a desc limit 10")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[1].alias == "bee"
        assert stmt.limit == 10
        assert stmt.order_by[0].descending
        assert len(stmt.group_by) == 2

    def test_joins(self):
        stmt = parse("select * from a join b on a.x = b.y left join c on b.z = c.z")
        join = stmt.from_clause
        assert isinstance(join, ast.Join) and join.kind == "left"
        assert isinstance(join.left, ast.Join) and join.left.kind == "inner"

    def test_comma_join(self):
        stmt = parse("select * from a, b where a.x = b.y")
        assert isinstance(stmt.from_clause, ast.Join)
        assert stmt.from_clause.kind == "cross"

    def test_cte(self):
        stmt = parse("with c (x) as (select a from t) select x from c")
        assert stmt.ctes[0].name == "c"
        assert stmt.ctes[0].columns == ("x",)

    def test_derived_table(self):
        stmt = parse("select * from (select a from t) sub")
        assert isinstance(stmt.from_clause, ast.DerivedTable)
        assert stmt.from_clause.alias == "sub"

    def test_table_function(self):
        stmt = parse("select * from gtimeseries('speeding', 30) ts")
        fn = stmt.from_clause
        assert isinstance(fn, ast.TableFunction)
        assert fn.name == "gtimeseries"
        assert fn.args == (ast.Literal("speeding"), ast.Literal(30))
        assert fn.alias == "ts"

    def test_insert_values(self):
        stmt = parse("insert into t (a, b) values (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("insert into t select * from s")
        assert stmt.query is not None

    def test_update_delete(self):
        stmt = parse("update t set a = a + 1, b = 2 where a < 5")
        assert isinstance(stmt, ast.Update) and len(stmt.assignments) == 2
        stmt = parse("delete from t where a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_create_table_with_distribution(self):
        stmt = parse("create table t (a int primary key, b text not null) "
                     "distribute by hash(a) with (orientation = column)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.primary_key == "a"
        assert stmt.distribute_by == "a"
        assert stmt.orientation == "column"
        assert stmt.columns[1].not_null

    def test_create_replicated(self):
        stmt = parse("create table t (a int) distribute by replication")
        assert stmt.replicated

    def test_drop_if_exists(self):
        stmt = parse("drop table if exists t")
        assert stmt.if_exists

    def test_qualified_table_names(self):
        stmt = parse("select olap.t1.b1 from olap.t1")
        assert stmt.from_clause.name == "olap.t1"

    def test_syntax_error_reports_position(self):
        with pytest.raises(SqlSyntaxError):
            parse("select from")
        with pytest.raises(SqlSyntaxError):
            parse("select 1 extra garbage ,")

    def test_explain_and_analyze(self):
        assert isinstance(parse("explain select 1"), ast.Explain)
        assert isinstance(parse("analyze t"), ast.Analyze)
        assert parse("analyze").table is None
