"""Tests for UNION / UNION ALL."""

import pytest

from repro.cluster import MppCluster
from repro.common.errors import SqlAnalysisError, SqlSyntaxError
from repro.sql.engine import SqlEngine


@pytest.fixture
def engine():
    eng = SqlEngine(MppCluster(num_dns=2))
    eng.execute("create table hot (id int primary key, v int)")
    eng.execute("create table cold (id int primary key, v int)")
    eng.execute("insert into hot values (1, 10), (2, 20), (3, 30)")
    eng.execute("insert into cold values (4, 40), (5, 10), (6, 20)")
    return eng


class TestUnionAll:
    def test_concatenates(self, engine):
        result = engine.execute(
            "select v from hot union all select v from cold")
        assert sorted(result.rows) == [(10,), (10,), (20,), (20,), (30,), (40,)]

    def test_order_and_limit_apply_to_whole_union(self, engine):
        result = engine.execute(
            "select id, v from hot union all select id, v from cold "
            "order by id desc limit 2")
        assert result.rows == [(6, 20), (5, 10)]

    def test_three_branches(self, engine):
        result = engine.execute(
            "select id from hot union all select id from cold "
            "union all select id from hot where id = 1")
        assert result.rowcount == 7

    def test_branches_optimize_independently(self, engine):
        plan = engine.execute(
            "explain select v from hot where id = 1 "
            "union all select v from cold where id = 4").plan_text
        # Each branch keeps its own pushed-down predicate on its scans
        # (fragmented execution clones each scan once per data node).
        assert plan.count("[HOT.ID=1]") == plan.count("SeqScan hot")
        assert plan.count("[COLD.ID=4]") == plan.count("SeqScan cold")
        assert plan.count("SeqScan hot") >= 1
        assert plan.count("SeqScan cold") >= 1
        assert "UnionAll" in plan

    def test_union_inside_cte(self, engine):
        result = engine.execute(
            "with merged (v) as (select v from hot union all "
            "select v from cold) "
            "select count(*), sum(v) from merged")
        assert result.rows == [(6, 130.0)]


class TestUnionDistinct:
    def test_plain_union_dedupes(self, engine):
        result = engine.execute(
            "select v from hot union select v from cold order by v")
        assert result.rows == [(10,), (20,), (30,), (40,)]

    def test_mixed_all_and_distinct(self, engine):
        # Any plain UNION in the chain dedupes the whole result (documented
        # simplification of SQL's left-associative semantics).
        result = engine.execute(
            "select v from hot union all select v from hot "
            "union select v from cold order by v")
        assert result.rows == [(10,), (20,), (30,), (40,)]


class TestUnionErrors:
    def test_width_mismatch_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.execute("select id, v from hot union all select id from cold")

    def test_order_by_before_union_rejected(self, engine):
        with pytest.raises(SqlSyntaxError):
            engine.execute("select v from hot order by v "
                           "union all select v from cold")

    def test_aggregates_per_branch(self, engine):
        result = engine.execute(
            "select max(v) from hot union all select max(v) from cold")
        assert sorted(result.rows) == [(30,), (40,)]
