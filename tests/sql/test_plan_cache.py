"""Prepared-statement plan cache: hits, staleness, learning interplay.

The staleness satellite's core claim: a cached plan is never reused after
the table it reads is redefined (DDL bumps the catalog version), after
ANALYZE refreshes statistics, or after the learning producer captures a
mis-estimate for one of its steps.
"""

import pytest

from repro.cluster.mpp import MppCluster
from repro.sql.engine import SqlEngine
from repro.sql.plancache import PlanCache


def _engine(**kwargs) -> SqlEngine:
    return SqlEngine(MppCluster(num_dns=2), **kwargs)


def _load(engine: SqlEngine, rows: int = 40) -> None:
    engine.execute("create table t (id int primary key, g text, v int) "
                   "with (orientation = column)")
    engine.execute("insert into t values " + ", ".join(
        f"({i}, '{'ab'[i % 2]}', {i * 3})" for i in range(rows)))
    engine.analyze()


class TestCacheHits:
    def test_repeat_statement_hits_and_matches(self):
        engine = _engine()
        _load(engine)
        sql = "select g, count(*) from t where v > 30 group by g order by g"
        first = engine.execute(sql)
        assert engine.plan_cache.hits == 0
        second = engine.execute(sql)
        assert engine.plan_cache.hits == 1
        assert second.rows == first.rows
        assert second.plan_text == first.plan_text

    def test_whitespace_normalized_key(self):
        engine = _engine()
        _load(engine)
        engine.execute("select count(*) from t")
        engine.execute("select   count(*)\n from    t")
        assert engine.plan_cache.hits == 1

    def test_cached_plan_sees_new_rows(self):
        # The cached physical plan re-executes under the *current*
        # statement's snapshot, not the one it was planned under.
        engine = _engine()
        _load(engine, rows=10)
        sql = "select count(*) from t"
        assert engine.execute(sql).scalar() == 10
        engine.execute("insert into t values (100, 'c', 300)")
        assert engine.execute(sql).scalar() == 11
        assert engine.plan_cache.hits == 1

    def test_dml_statements_not_cached(self):
        engine = _engine()
        _load(engine)
        engine.execute("update t set v = v + 1 where id = 1")
        engine.execute("update t set v = v + 1 where id = 1")
        assert engine.plan_cache.probes == 0
        assert len(engine.plan_cache) == 0

    def test_capacity_zero_disables(self):
        engine = _engine(plan_cache_size=0)
        _load(engine)
        sql = "select count(*) from t"
        engine.execute(sql)
        engine.execute(sql)
        assert engine.plan_cache.probes == 0
        assert len(engine.plan_cache) == 0

    def test_lru_eviction_bounds_size(self):
        engine = _engine(plan_cache_size=2)
        _load(engine)
        for v in range(5):
            engine.execute(f"select count(*) from t where v > {v}")
        assert len(engine.plan_cache) == 2


class TestStaleness:
    def test_redefined_table_is_not_served_stale(self):
        # The staleness bug this PR guards against: redefine a table with a
        # different column order and re-issue the same SQL text.  A stale
        # cached plan would read columns at their old positions.
        engine = _engine()
        _load(engine)
        sql = "select id, g, v from t order by id limit 2"
        before = engine.execute(sql)
        assert before.rows[0] == (0, "a", 0)
        engine.execute("drop table t")
        engine.execute("create table t (id int primary key, v int, g text) "
                       "with (orientation = column)")
        engine.execute("insert into t values (0, 7, 'z'), (1, 8, 'y')")
        after = engine.execute(sql)
        assert after.columns == ["id", "g", "v"]
        assert after.rows[0] == (0, "z", 7)
        assert engine.plan_cache.hits == 0

    def test_drop_alone_invalidates(self):
        engine = _engine()
        _load(engine)
        sql = "select count(*) from t"
        engine.execute(sql)
        version = engine.cluster.catalog.version
        engine.execute("drop table t")
        assert engine.cluster.catalog.version > version
        entry = engine.plan_cache.lookup(
            PlanCache.key_for(sql), engine.cluster.catalog.version,
            engine.stats.version)
        assert entry is None

    def test_analyze_invalidates(self):
        engine = _engine(learning_enabled=False)
        _load(engine)
        sql = "select count(*) from t where v > 30"
        engine.execute(sql)
        engine.execute("analyze t")
        engine.execute(sql)
        # both executions were misses: the ANALYZE bumped stats.version
        assert engine.plan_cache.hits == 0
        assert engine.plan_cache.probes == 2

    def test_capture_evicts_so_corrected_estimates_land(self):
        # Learning loop interplay: run a query whose estimate is wrong, the
        # producer captures the step, and the *next* run must replan with
        # the corrected cardinality instead of reusing the cached plan.
        engine = _engine()
        _load(engine, rows=60)
        # skew v so the uniform estimator is off for this predicate
        engine.execute("update t set v = 0 where id > 5")
        sql = "select count(*) from t where v > 3"
        first = engine.execute(sql)
        assert first.capture is not None and first.capture.captured > 0
        second = engine.execute(sql)
        # not a cache hit: the capture evicted the entry and replanning
        # consulted the corrected actuals
        assert engine.plan_cache.hits == 0
        assert second.rows == first.rows
        assert second.plan_text != first.plan_text  # estimates moved

    def test_steady_state_pins_and_hits(self):
        engine = _engine()
        _load(engine)
        sql = "select g, sum(v) from t group by g order by g"
        results = [engine.execute(sql) for _ in range(4)]
        assert all(r.rows == results[0].rows for r in results)
        # once captures stop, the plan pins in the cache and later runs hit
        assert engine.plan_cache.hits >= 1
        assert engine.plan_cache.hit_rate > 0.0


class TestPlanCacheUnit:
    def test_version_mismatch_evicts(self):
        cache = PlanCache(capacity=4)

        class Entry:
            catalog_version = 1
            stats_version = 1
            shard_map_version = 0
            step_keys = frozenset()
        key = PlanCache.key_for("select 1")
        cache.put(key, Entry())
        assert cache.lookup(key, 1, 1) is not None
        assert cache.lookup(key, 2, 1) is None
        assert len(cache) == 0

    def test_shard_map_version_mismatch_evicts(self):
        cache = PlanCache(capacity=4)

        class Entry:
            catalog_version = 1
            stats_version = 1
            shard_map_version = 3
            step_keys = frozenset()
        key = PlanCache.key_for("select 1")
        cache.put(key, Entry())
        assert cache.lookup(key, 1, 1, 3) is not None
        assert cache.lookup(key, 1, 1, 4) is None
        assert len(cache) == 0

    def test_invalidate_steps_intersects(self):
        cache = PlanCache(capacity=4)
        from repro.learnopt.store import step_key

        class Entry:
            catalog_version = 0
            stats_version = 0
            step_keys = frozenset({step_key("SCAN t"), step_key("AGG t")})
        cache.put("k", Entry())
        assert cache.invalidate_steps(["JOIN x"]) == 0
        assert cache.invalidate_steps(["SCAN t"]) == 1
        assert len(cache) == 0
