"""End-to-end SQL engine tests over the MPP cluster."""

import pytest

from repro.cluster import MppCluster
from repro.common.errors import CatalogError, SqlAnalysisError
from repro.sql.engine import SqlEngine


@pytest.fixture
def engine():
    cluster = MppCluster(num_dns=3)
    eng = SqlEngine(cluster)
    eng.execute("create table t1 (a int primary key, b int, c text)")
    eng.execute("create table t2 (x int primary key, y int)")
    values1 = ",".join(f"({i}, {i % 10}, 'g{i % 3}')" for i in range(100))
    values2 = ",".join(f"({i}, {i * 2})" for i in range(30))
    eng.execute(f"insert into t1 values {values1}")
    eng.execute(f"insert into t2 values {values2}")
    eng.execute("analyze")
    return eng


class TestDdlDml:
    def test_create_insert_count(self, engine):
        assert engine.execute("select count(*) from t1").scalar() == 100

    def test_insert_rowcount(self, engine):
        result = engine.execute("insert into t2 values (1000, 1)")
        assert result.rowcount == 1

    def test_insert_select(self, engine):
        engine.execute("create table t3 (a int primary key, b int)")
        result = engine.execute("insert into t3 select a, b from t1 where b = 0")
        assert result.rowcount == 10
        assert engine.execute("select count(*) from t3").scalar() == 10

    def test_update_where(self, engine):
        result = engine.execute("update t1 set b = 999 where a < 5")
        assert result.rowcount == 5
        assert engine.execute(
            "select count(*) from t1 where b = 999").scalar() == 5

    def test_delete_where(self, engine):
        engine.execute("delete from t1 where b = 3")
        assert engine.execute("select count(*) from t1").scalar() == 90

    def test_drop_table(self, engine):
        engine.execute("drop table t2")
        with pytest.raises(SqlAnalysisError):
            engine.execute("select * from t2")

    def test_drop_missing(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("drop table zz")
        engine.execute("drop table if exists zz")  # no raise

    def test_duplicate_create_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("create table t1 (a int primary key)")


class TestQueries:
    def test_where_and_projection(self, engine):
        rows = engine.execute(
            "select a, b from t1 where b >= 8 and a < 30 order by a").rows
        assert all(b >= 8 for _, b in rows)
        assert [a for a, _ in rows] == sorted(a for a, _ in rows)

    def test_join(self, engine):
        result = engine.execute(
            "select t1.a, t2.y from t1 join t2 on t1.a = t2.x")
        assert result.rowcount == 30
        assert all(y == a * 2 for a, y in result.rows)

    def test_three_way_join_reordered(self, engine):
        engine.execute("create table dim (k int primary key, label text)")
        engine.execute("insert into dim values (0,'even'),(1,'odd')")
        engine.execute("analyze dim")
        result = engine.execute(
            "select count(*) from t1, t2, dim "
            "where t1.a = t2.x and t1.b % 2 = dim.k")
        assert result.scalar() == 30

    def test_group_by_having(self, engine):
        rows = engine.execute(
            "select c, count(*) n, min(b) lo, max(b) hi from t1 "
            "group by c having count(*) > 33 order by c").as_dicts()
        assert len(rows) == 1 and rows[0]["c"] == "g0" and rows[0]["n"] == 34
        assert rows[0]["lo"] == 0 and rows[0]["hi"] == 9

    def test_global_aggregate_empty_input(self, engine):
        result = engine.execute("select count(*), sum(b) from t1 where a > 10000")
        assert result.rows == [(0, None)]

    def test_avg_and_arithmetic(self, engine):
        value = engine.execute("select avg(b) * 2 from t1").scalar()
        assert value == pytest.approx(9.0)

    def test_distinct(self, engine):
        result = engine.execute("select distinct c from t1 order by c")
        assert result.rows == [("g0",), ("g1",), ("g2",)]

    def test_order_by_ordinal_and_desc(self, engine):
        rows = engine.execute(
            "select a from t1 where a < 5 order by 1 desc").rows
        assert [a for a, in rows] == [4, 3, 2, 1, 0]

    def test_limit(self, engine):
        assert engine.execute("select a from t1 order by a limit 7").rowcount == 7

    def test_cte(self, engine):
        result = engine.execute(
            "with evens (a, b) as (select a, b from t1 where a % 2 = 0) "
            "select count(*) from evens where b < 5")
        # even a -> b = a % 10 in {0,2,4,6,8}; b < 5 keeps {0,2,4}: 30 rows
        assert result.scalar() == 30

    def test_derived_table(self, engine):
        result = engine.execute(
            "select s.total from (select sum(b) total from t1) s")
        assert result.scalar() == 450

    def test_left_join_pads_nulls(self, engine):
        rows = engine.execute(
            "select t1.a, t2.y from t1 left join t2 on t1.a = t2.x "
            "where t1.a between 28 and 31 order by t1.a").rows
        assert rows == [(28, 56), (29, 58), (30, None), (31, None)]

    def test_case_expression(self, engine):
        rows = engine.execute(
            "select a, case when b < 5 then 'low' else 'high' end bucket "
            "from t1 where a < 2 order by a").rows
        assert rows == [(0, "low"), (1, "low")]
        rows = engine.execute(
            "select case when b < 5 then 'low' else 'high' end bucket, count(*) "
            "from t1 group by case when b < 5 then 'low' else 'high' end "
            "order by bucket").rows
        assert rows == [("high", 50), ("low", 50)]

    def test_scalar_functions(self, engine):
        assert engine.execute("select upper('abc')").scalar() == "ABC"
        assert engine.execute("select abs(-5)").scalar() == 5
        assert engine.execute("select coalesce(null, 7)").scalar() == 7

    def test_like(self, engine):
        assert engine.execute(
            "select count(*) from t1 where c like 'g%'").scalar() == 100
        assert engine.execute(
            "select count(*) from t1 where c like 'g1'").scalar() == 33

    def test_explain_mentions_operators(self, engine):
        plan = engine.execute(
            "explain select * from t1 join t2 on t1.a = t2.x where b > 3"
        ).plan_text
        assert "HashJoin" in plan
        assert "SeqScan" in plan
        assert "Exchange" in plan

    def test_unknown_column_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.execute("select zz from t1")

    def test_ambiguous_column_rejected(self, engine):
        engine.execute("create table t4 (a int primary key)")
        engine.execute("insert into t4 values (1)")
        with pytest.raises(SqlAnalysisError):
            engine.execute("select a from t1, t4")

    def test_ungrouped_column_rejected(self, engine):
        with pytest.raises(SqlAnalysisError):
            engine.execute("select a, count(*) from t1 group by b")

    def test_star_qualified(self, engine):
        result = engine.execute(
            "select t2.* from t1 join t2 on t1.a = t2.x limit 1")
        assert result.columns == ["x", "y"]


class TestReadConsistency:
    def test_queries_see_committed_data_only(self, engine):
        session = engine.cluster.session()
        txn = session.begin(multi_shard=True)
        txn.insert("t1", {"a": 500, "b": 1, "c": "new"})
        # An uncommitted insert is invisible to the engine's snapshot.
        assert engine.execute(
            "select count(*) from t1 where a = 500").scalar() == 0
        txn.commit()
        assert engine.execute(
            "select count(*) from t1 where a = 500").scalar() == 1
