"""SQL-level tests for types, DDL variants and the simulated clock."""

import pytest

from repro.cluster import MppCluster
from repro.common.errors import SqlAnalysisError
from repro.sql.engine import SqlEngine
from repro.storage.table import Distribution, Orientation


@pytest.fixture
def engine():
    return SqlEngine(MppCluster(num_dns=2), now_fn=lambda: 123_456)


class TestDdlVariants:
    def test_replicated_table(self, engine):
        engine.execute("create table dim (k int primary key, name text) "
                       "distribute by replication")
        schema = engine.cluster.catalog.schema("dim")
        assert schema.distribution is Distribution.REPLICATION
        engine.execute("insert into dim values (1, 'x')")
        for dn in engine.cluster.dns:
            assert dn.read("dim", 1, dn.local_snapshot()) is not None

    def test_column_orientation_flag(self, engine):
        engine.execute("create table facts (k int primary key, v double) "
                       "with (orientation = column)")
        assert engine.cluster.catalog.schema("facts").orientation \
            is Orientation.COLUMN

    def test_explicit_primary_key_clause(self, engine):
        engine.execute("create table t (a int, b int, primary key (b))")
        assert engine.cluster.catalog.schema("t").primary_key == "b"

    def test_not_null_enforced_via_sql(self, engine):
        engine.execute("create table t (a int primary key, b int not null)")
        with pytest.raises(Exception):
            engine.execute("insert into t (a) values (1)")


class TestTypesThroughSql:
    def test_boolean_column(self, engine):
        engine.execute("create table flags (k int primary key, ok bool)")
        engine.execute("insert into flags values (1, true), (2, false)")
        rows = engine.execute(
            "select k from flags where ok order by k").rows
        assert rows == [(1,)]
        assert engine.execute(
            "select count(*) from flags where not ok").scalar() == 1

    def test_timestamp_and_now(self, engine):
        engine.execute("create table ev (k int primary key, t timestamp)")
        engine.execute("insert into ev values (1, 100000), (2, 200000)")
        assert engine.execute("select now()").scalar() == 123_456
        assert engine.execute(
            "select count(*) from ev where t > now()").scalar() == 1

    def test_double_arithmetic_and_round(self, engine):
        engine.execute("create table m (k int primary key, v double)")
        engine.execute("insert into m values (1, 2.5), (2, 3.25)")
        assert engine.execute(
            "select round(sum(v) / 2, 2) from m").scalar() == pytest.approx(2.88)

    def test_null_handling_in_aggregates(self, engine):
        engine.execute("create table n (k int primary key, v int)")
        engine.execute("insert into n (k, v) values (1, 10), (2, null)")
        result = engine.execute(
            "select count(*), count(v), sum(v), avg(v) from n")
        assert result.rows == [(2, 1, 10.0, 10.0)]

    def test_is_null_predicates(self, engine):
        engine.execute("create table n (k int primary key, v int)")
        engine.execute("insert into n (k, v) values (1, 10), (2, null)")
        assert engine.execute(
            "select k from n where v is null").rows == [(2,)]
        assert engine.execute(
            "select k from n where v is not null").rows == [(1,)]

    def test_string_functions_and_concat(self, engine):
        assert engine.execute("select 'a' || 'b'").scalar() == "ab"
        assert engine.execute("select length('hello')").scalar() == 5
