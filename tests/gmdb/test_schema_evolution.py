"""Tests for GMDB record schemas, evolution rules and the Fig. 8 matrix."""

import pytest

from repro.common.errors import SchemaEvolutionError, SchemaValidationError
from repro.gmdb.schema import (
    FieldDef,
    FieldType,
    RecordSchema,
    SchemaRegistry,
    check_evolution,
    downgrade_object,
    upgrade_object,
)
from repro.workloads.mme import MME_VERSIONS, mme_schema


def v1():
    return RecordSchema("user", (
        FieldDef("id", FieldType.STRING),
        FieldDef("age", FieldType.INT),
    ), primary_key="id")


def v2():
    return RecordSchema("user", (
        FieldDef("id", FieldType.STRING),
        FieldDef("age", FieldType.INT),
        FieldDef("name", FieldType.STRING, default="?"),
    ), primary_key="id")


class TestValidation:
    def test_valid_object(self):
        v1().validate({"id": "x", "age": 3})

    def test_missing_field(self):
        with pytest.raises(SchemaValidationError):
            v1().validate({"id": "x"})

    def test_unknown_field(self):
        with pytest.raises(SchemaValidationError):
            v1().validate({"id": "x", "age": 3, "zz": 1})

    def test_wrong_type(self):
        with pytest.raises(SchemaValidationError):
            v1().validate({"id": "x", "age": "three"})

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaValidationError):
            v1().validate({"id": "x", "age": True})

    def test_nested_record_array(self):
        schema = RecordSchema("s", (
            FieldDef("id", FieldType.STRING),
            FieldDef("items", FieldType.RECORD_ARRAY, record=RecordSchema(
                "item", (FieldDef("n", FieldType.INT),))),
        ))
        schema.validate({"id": "x", "items": [{"n": 1}, {"n": 2}]})
        with pytest.raises(SchemaValidationError):
            schema.validate({"id": "x", "items": [{"n": "bad"}]})

    def test_new_object_defaults(self):
        obj = v2().new_object(id="a", age=1)
        assert obj["name"] == "?"

    def test_record_array_needs_schema(self):
        with pytest.raises(SchemaEvolutionError):
            FieldDef("items", FieldType.RECORD_ARRAY)


class TestEvolutionRules:
    def test_append_is_legal(self):
        changes = check_evolution(v1(), v2())
        assert changes == ["add name (string)"]

    def test_delete_is_illegal(self):
        with pytest.raises(SchemaEvolutionError, match="deleting"):
            check_evolution(v2(), v1())

    def test_reorder_is_illegal(self):
        reordered = RecordSchema("user", (
            FieldDef("age", FieldType.INT),
            FieldDef("id", FieldType.STRING),
        ))
        with pytest.raises(SchemaEvolutionError, match="re-ordering"):
            check_evolution(v1(), reordered)

    def test_type_change_is_illegal(self):
        changed = RecordSchema("user", (
            FieldDef("id", FieldType.STRING),
            FieldDef("age", FieldType.DOUBLE),
        ))
        with pytest.raises(SchemaEvolutionError, match="type"):
            check_evolution(v1(), changed)

    def test_nested_append_is_legal(self):
        old = RecordSchema("s", (
            FieldDef("items", FieldType.RECORD_ARRAY, record=RecordSchema(
                "item", (FieldDef("n", FieldType.INT),))),
        ))
        new = RecordSchema("s", (
            FieldDef("items", FieldType.RECORD_ARRAY, record=RecordSchema(
                "item", (FieldDef("n", FieldType.INT),
                         FieldDef("extra", FieldType.STRING)))),
        ))
        assert check_evolution(old, new) == ["add items.extra (string)"]


class TestConversion:
    def test_upgrade_fills_defaults(self):
        obj = upgrade_object({"id": "x", "age": 5}, v1(), v2())
        assert obj == {"id": "x", "age": 5, "name": "?"}

    def test_downgrade_drops_fields(self):
        obj = downgrade_object({"id": "x", "age": 5, "name": "n"}, v2(), v1())
        assert obj == {"id": "x", "age": 5}

    def test_round_trip_preserves_common_fields(self):
        original = {"id": "x", "age": 5}
        up = upgrade_object(original, v1(), v2())
        down = downgrade_object(up, v2(), v1())
        assert down == original


class TestRegistryMatrix:
    def make_registry(self, allow_multi_step=False):
        registry = SchemaRegistry("mme", allow_multi_step)
        for version in MME_VERSIONS:
            registry.register(version, mme_schema(version))
        return registry

    def test_matrix_matches_figure8(self):
        matrix = self.make_registry().conversion_matrix()
        # diagonals
        assert all(matrix[(v, v)] == "-" for v in MME_VERSIONS)
        # one-step upgrades U1..U4 and downgrades D1..D4
        for a, b in zip(MME_VERSIONS, MME_VERSIONS[1:]):
            assert matrix[(a, b)] == "U"
            assert matrix[(b, a)] == "D"
        # everything further apart is X
        assert matrix[(3, 6)] == "X"
        assert matrix[(3, 8)] == "X"
        assert matrix[(8, 5)] == "X"

    def test_multi_step_extension(self):
        registry = self.make_registry(allow_multi_step=True)
        assert registry.can_convert(3, 8)
        obj = mme_schema(3).new_object(imsi="i", guti="g", tracking_area=1,
                                       enb_id=1, auth_vector="a", last_seen_us=0)
        converted, touched = registry.convert(obj, 3, 8)
        mme_schema(8).validate(converted)
        assert touched > 0
        back, _ = registry.convert(converted, 8, 3)
        assert back == obj

    def test_non_adjacent_conversion_rejected(self):
        registry = self.make_registry()
        obj = mme_schema(3).new_object(imsi="i", guti="g", tracking_area=1,
                                       enb_id=1, auth_vector="a", last_seen_us=0)
        with pytest.raises(SchemaEvolutionError, match="X in the conversion"):
            registry.convert(obj, 3, 6)

    def test_versions_must_ascend(self):
        registry = SchemaRegistry("t")
        registry.register(3, mme_schema(3))
        with pytest.raises(SchemaEvolutionError):
            registry.register(2, mme_schema(3))

    def test_illegal_registration_rejected(self):
        registry = SchemaRegistry("u")
        registry.register(1, v2())
        # v1 deletes a field relative to v2
        with pytest.raises(SchemaEvolutionError):
            registry.register(2, v1())
