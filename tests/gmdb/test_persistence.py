"""Tests for GMDB asynchronous persistence and crash recovery."""

import json

import pytest

from repro.gmdb.cluster import GmdbCluster
from repro.gmdb.persistence import GmdbPersistence
from repro.gmdb.schema import SchemaRegistry
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema


@pytest.fixture
def setup(tmp_path):
    cluster = GmdbCluster(num_dns=1)
    for version in MME_VERSIONS:
        cluster.register_schema(version, mme_schema(version))
    node = cluster.dns[0]
    persistence = GmdbPersistence(node, tmp_path / "dn0.log")
    client = cluster.connect("c", 3)
    return cluster, node, persistence, client


def load_sessions(client, count=5, start=0):
    gen = MmeSessionGenerator(3, seed=start + 1)
    keys = []
    for i in range(count):
        obj = gen.session(start + i)
        client.create(obj["imsi"], obj)
        keys.append(obj["imsi"])
    return keys


class TestFlush:
    def test_flush_persists_dirty_objects(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        report = persistence.flush()
        assert report.objects_flushed == 5
        assert node.dirty_count == 0
        assert node.unflushed_loss_on_crash() == 0

    def test_flush_is_incremental(self, setup):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        persistence.flush()
        client.update(keys[0], lambda o: o.__setitem__(
            "tracking_area", o["tracking_area"] + 1))
        report = persistence.flush()
        assert report.objects_flushed == 1

    def test_unflushed_window_is_the_loss(self, setup):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        persistence.flush()
        client.update(keys[0], lambda o: o.__setitem__(
            "tracking_area", o["tracking_area"] + 1))
        client.update(keys[1], lambda o: o.__setitem__(
            "tracking_area", o["tracking_area"] + 1))
        assert node.unflushed_loss_on_crash() == 2


class TestRecovery:
    def test_recovery_restores_flushed_state(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        client.update(keys[0], lambda o: o.__setitem__("tracking_area", 777))
        persistence.flush()
        recovered = GmdbPersistence.recover(
            tmp_path / "dn0.log", "dn0-recovered", cluster.registry)
        assert recovered.object_count() == 5
        obj, _, _ = recovered.get(keys[0], 3)
        assert obj["tracking_area"] == 777

    def test_unflushed_writes_are_lost_by_design(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        persistence.flush()
        client.update(keys[0], lambda o: o.__setitem__("tracking_area", 999))
        # crash before the next flush
        recovered = GmdbPersistence.recover(
            tmp_path / "dn0.log", "dn0", cluster.registry)
        obj, _, _ = recovered.get(keys[0], 3)
        assert obj["tracking_area"] != 999   # the paper's accepted window

    def test_recovery_tolerates_torn_tail(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        load_sessions(client)
        persistence.flush()
        path = tmp_path / "dn0.log"
        with path.open("a") as log:
            log.write('{"op": "put", "key": "torn...')   # crash mid-append
        recovered = GmdbPersistence.recover(path, "dn0", cluster.registry)
        assert recovered.object_count() == 5

    def test_recovery_of_missing_log_is_empty(self, setup, tmp_path):
        cluster, *_ = setup
        recovered = GmdbPersistence.recover(
            tmp_path / "nothing.log", "dn0", cluster.registry)
        assert recovered.object_count() == 0

    def test_deletes_survive_recovery(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        persistence.flush()
        node.delete(keys[0])
        persistence.flush()
        recovered = GmdbPersistence.recover(
            tmp_path / "dn0.log", "dn0", cluster.registry)
        assert recovered.object_count() == 4
        assert not recovered.exists(keys[0])

    def test_recovered_versions_preserved(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        v5 = cluster.connect("v5", 5)
        v5.update(keys[0], lambda o: o.__setitem__("volte_enabled", True))
        persistence.flush()
        recovered = GmdbPersistence.recover(
            tmp_path / "dn0.log", "dn0", cluster.registry)
        assert recovered.stored_version(keys[0]) == 5
        assert recovered.stored_version(keys[1]) == 3


class TestCompaction:
    def test_compact_reclaims_space(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        keys = load_sessions(client)
        for i in range(10):
            client.update(keys[0],
                          lambda o, i=i: o.__setitem__("tracking_area", i))
            persistence.flush()
        reclaimed = persistence.compact()
        assert reclaimed > 0
        recovered = GmdbPersistence.recover(
            tmp_path / "dn0.log", "dn0", cluster.registry)
        obj, _, _ = recovered.get(keys[0], 3)
        assert obj["tracking_area"] == 9

    def test_log_is_line_json(self, setup, tmp_path):
        cluster, node, persistence, client = setup
        load_sessions(client, count=2)
        persistence.flush()
        lines = (tmp_path / "dn0.log").read_text().strip().splitlines()
        for line in lines:
            json.loads(line)
        assert json.loads(lines[-1])["op"] == "checkpoint"
