"""Tests for GMDB's SQL interface over the tree-object store."""

import pytest

from repro.common.errors import SqlAnalysisError
from repro.gmdb.cluster import GmdbCluster
from repro.gmdb.sqlapi import GmdbSql
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema


@pytest.fixture
def sql():
    cluster = GmdbCluster(num_dns=2, object_type="mme_session")
    for version in MME_VERSIONS:
        cluster.register_schema(version, mme_schema(version))
    client = cluster.connect("app", 3)
    gen = MmeSessionGenerator(3, seed=13)
    for i in range(12):
        obj = gen.session(i)
        obj["state"] = ["REGISTERED", "IDLE", "CONNECTED"][i % 3]
        obj["tracking_area"] = 100 + i
        client.create(obj["imsi"], obj)
    return GmdbSql(client)


class TestSelect:
    def test_select_star_projects_scalar_fields(self, sql):
        rows = sql.query("select * from mme_session limit 1")
        assert "imsi" in rows[0] and "state" in rows[0]
        assert "bearers" not in rows[0]   # record arrays stay in the tree

    def test_where_filtering(self, sql):
        rows = sql.query(
            "select imsi, state from mme_session where state = 'IDLE'")
        assert len(rows) == 4
        assert all(r["state"] == "IDLE" for r in rows)

    def test_expressions_and_aliases(self, sql):
        rows = sql.query(
            "select imsi, tracking_area + 1000 ta from mme_session "
            "where tracking_area = 105")
        assert rows == [{"imsi": rows[0]["imsi"], "ta": 1105}]

    def test_order_and_limit(self, sql):
        rows = sql.query(
            "select tracking_area from mme_session "
            "order by tracking_area desc limit 3")
        assert [r["tracking_area"] for r in rows] == [111, 110, 109]

    def test_wrong_type_rejected(self, sql):
        with pytest.raises(SqlAnalysisError):
            sql.execute("select * from other_type")

    def test_unsupported_features_rejected(self, sql):
        with pytest.raises(SqlAnalysisError):
            sql.execute("select state, count(*) from mme_session group by state")


class TestDml:
    def test_update_runs_through_delta_path(self, sql):
        writes_before = sql.client.cluster.metrics.writes
        result = sql.execute(
            "update mme_session set state = 'DETACHED' "
            "where tracking_area < 103")
        assert result.rowcount == 3
        assert sql.client.cluster.metrics.writes == writes_before + 3
        rows = sql.query(
            "select count_field from mme_session where state = 'DETACHED'"
        ) if False else sql.query(
            "select imsi from mme_session where state = 'DETACHED'")
        assert len(rows) == 3

    def test_update_with_expression(self, sql):
        sql.execute("update mme_session set tracking_area = tracking_area + 1 "
                    "where tracking_area = 100")
        assert sql.query("select imsi from mme_session "
                         "where tracking_area = 100") == []
        # 101 now exists twice (the bumped one and the original 101)
        rows = sql.query("select imsi from mme_session "
                         "where tracking_area = 101")
        assert len(rows) == 2

    def test_insert_defaults_unset_fields(self, sql):
        result = sql.execute(
            "insert into mme_session (imsi, guti, tracking_area) "
            "values ('460000199999999', 'g-new', 42)")
        assert result.rowcount == 1
        rows = sql.query("select imsi, state, enb_id from mme_session "
                         "where tracking_area = 42")
        assert rows[0]["state"] == "REGISTERED"   # schema default
        assert rows[0]["enb_id"] == 0

    def test_delete(self, sql):
        result = sql.execute("delete from mme_session where state = 'IDLE'")
        assert result.rowcount == 4
        assert sql.query("select imsi from mme_session "
                         "where state = 'IDLE'") == []
        assert sql.client.cluster.object_count() == 8

    def test_unknown_field_rejected(self, sql):
        with pytest.raises(SqlAnalysisError):
            sql.execute("update mme_session set bogus = 1")


class TestMixedApis:
    def test_sql_and_kv_see_the_same_data(self, sql):
        client = sql.client
        imsi = sql.query("select imsi from mme_session "
                         "where tracking_area = 107")[0]["imsi"]
        # Tree-model update through KV...
        client.update(imsi, lambda o: o.__setitem__("enb_id", 4242))
        # ...visible through SQL.
        rows = sql.query(f"select enb_id from mme_session "
                         f"where imsi = '{imsi}'")
        assert rows == [{"enb_id": 4242}]

    def test_sql_over_mixed_schema_versions(self, sql):
        """A V5 client's SQL view includes the appended fields."""
        cluster = sql.client.cluster
        v5 = cluster.connect("app-v5", 5)
        v5_sql = GmdbSql(v5)
        rows = v5_sql.query("select imsi, volte_enabled from mme_session "
                            "order by imsi limit 2")
        assert all(r["volte_enabled"] is False for r in rows)
