"""Tests for the GMDB tree-model field-path convenience API."""

import pytest

from repro.common.errors import SchemaValidationError, StorageError
from repro.gmdb.cluster import GmdbCluster
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema


@pytest.fixture
def client():
    cluster = GmdbCluster(num_dns=1)
    for version in MME_VERSIONS:
        cluster.register_schema(version, mme_schema(version))
    client = cluster.connect("app", 3)
    gen = MmeSessionGenerator(3, seed=21)
    obj = gen.session(0)
    client.create(obj["imsi"], obj)
    client._test_key = obj["imsi"]   # convenience for the tests
    return client


class TestReadField:
    def test_scalar_path(self, client):
        key = client._test_key
        assert client.read_field(key, "state") == client.read(key)["state"]

    def test_nested_array_path(self, client):
        key = client._test_key
        bearer = client.read(key)["bearers"][0]
        assert client.read_field(key, "bearers", 0, "qci") == bearer["qci"]


class TestSetField:
    def test_scalar_set_produces_one_delta_op(self, client):
        key = client._test_key
        delta = client.set_field(key, ("state",), "DETACHED")
        assert len(delta) == 1
        assert delta.ops[0].path == ("state",)
        assert client.read_field(key, "state") == "DETACHED"

    def test_nested_set(self, client):
        key = client._test_key
        delta = client.set_field(key, ("bearers", 0, "qci"), 9)
        assert delta.ops[0].path == ("bearers", 0, "qci")
        assert client.read_field(key, "bearers", 0, "qci") == 9

    def test_empty_path_rejected(self, client):
        with pytest.raises(StorageError):
            client.set_field(client._test_key, (), 1)

    def test_schema_still_enforced(self, client):
        key = client._test_key
        with pytest.raises(SchemaValidationError):
            client.set_field(key, ("tracking_area",), "not-an-int")
        # The failed update must not corrupt the cached object.
        assert isinstance(client.read_field(key, "tracking_area"), int)


class TestAppendRecord:
    def test_append_bearer(self, client):
        key = client._test_key
        before = len(client.read(key)["bearers"])
        from repro.workloads.mme import _bearer_schema

        new_bearer = _bearer_schema(0).new_object(
            bearer_id=99, qci=9, apn="internet", gtp_teid=1,
            bitrate_dl=10, bitrate_ul=5)
        delta = client.append_record(key, "bearers", new_bearer)
        assert delta.ops[0].op == "append"
        assert len(client.read(key)["bearers"]) == before + 1
        assert client.read_field(key, "bearers", before, "bearer_id") == 99

    def test_append_visible_to_subscribers(self, client):
        key = client._test_key
        other = client.cluster.connect("other", 3)
        other.read(key)
        other.subscribe(key)
        client.append_record(key, "history", {
            "t_us": 5, "kind": "TAU", "detail": "x"})
        cached = other.cached(key)
        assert cached["history"][-1]["kind"] == "TAU"
