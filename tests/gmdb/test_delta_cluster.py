"""Tests for delta objects and the GMDB cluster/client stack."""

import pytest

from repro.common.errors import SchemaEvolutionError, StorageError, SyncError
from repro.gmdb.cluster import GmdbCluster
from repro.gmdb.delta import (
    Delta,
    DeltaOp,
    apply_delta,
    diff,
    object_wire_size,
    project_delta,
    schema_field_tree,
)
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema


class TestDelta:
    def test_diff_scalar_change(self):
        delta = diff({"a": 1, "b": 2}, {"a": 1, "b": 3})
        assert len(delta) == 1
        assert delta.ops[0] == DeltaOp("set", ("b",), 3)

    def test_diff_nested_array(self):
        old = {"items": [{"n": 1}, {"n": 2}]}
        new = {"items": [{"n": 1}, {"n": 5}, {"n": 9}]}
        delta = diff(old, new)
        ops = {(op.op, op.path) for op in delta.ops}
        assert ("set", ("items", 1, "n")) in ops
        assert ("append", ("items",)) in ops

    def test_diff_array_removal(self):
        old = {"items": [{"n": 1}, {"n": 2}, {"n": 3}]}
        new = {"items": [{"n": 1}]}
        delta = diff(old, new)
        assert apply_delta(old, delta) == new

    def test_apply_round_trip(self):
        old = {"a": 1, "items": [{"n": 1}], "s": "x"}
        new = {"a": 2, "items": [{"n": 1}, {"n": 7}], "s": "x"}
        assert apply_delta(old, diff(old, new)) == new

    def test_apply_does_not_mutate_input(self):
        old = {"a": 1}
        apply_delta(old, Delta((DeltaOp("set", ("a",), 2),)))
        assert old == {"a": 1}

    def test_apply_bad_path(self):
        with pytest.raises(SyncError):
            apply_delta({"a": 1}, Delta((DeltaOp("set", ("zz", "q"), 2),)))
        with pytest.raises(SyncError):
            apply_delta({"a": []}, Delta((DeltaOp("remove", ("a", 5)),)))

    def test_delta_smaller_than_object(self):
        gen = MmeSessionGenerator(3)
        obj = gen.session(0)
        new = dict(obj)
        new["state"] = "IDLE" if obj["state"] != "IDLE" else "CONNECTED"
        delta = diff(obj, new)
        assert delta.wire_size() < object_wire_size(obj) / 50

    def test_project_delta_drops_unknown_fields(self):
        schema = mme_schema(3)
        tree = schema_field_tree(schema)
        delta = Delta((
            DeltaOp("set", ("state",), "IDLE"),
            DeltaOp("set", ("volte_enabled",), True),   # a V5 field
        ))
        projected = project_delta(delta, tree)
        assert len(projected) == 1
        assert projected.ops[0].path == ("state",)


@pytest.fixture
def cluster():
    c = GmdbCluster(num_dns=2)
    for version in MME_VERSIONS:
        c.register_schema(version, mme_schema(version))
    return c


class TestGmdbCluster:
    def test_create_read(self, cluster):
        client = cluster.connect("c1", 3)
        obj = MmeSessionGenerator(3).session(0)
        client.create(obj["imsi"], obj)
        client.invalidate(obj["imsi"])
        assert client.read(obj["imsi"]) == obj
        assert cluster.object_count() == 1

    def test_duplicate_create_rejected(self, cluster):
        client = cluster.connect("c1", 3)
        obj = MmeSessionGenerator(3).session(0)
        client.create(obj["imsi"], obj)
        with pytest.raises(StorageError):
            client.create(obj["imsi"], obj)

    def test_read_with_upgrade_conversion(self, cluster):
        old_client = cluster.connect("old", 3)
        new_client = cluster.connect("new", 5)
        obj = MmeSessionGenerator(3).session(1)
        old_client.create(obj["imsi"], obj)
        seen = new_client.read(obj["imsi"])
        mme_schema(5).validate(seen)
        assert seen["volte_enabled"] is False
        assert cluster.metrics.conversions == 1

    def test_read_with_downgrade_conversion(self, cluster):
        new_client = cluster.connect("new", 5)
        old_client = cluster.connect("old", 3)
        obj = MmeSessionGenerator(5).session(2)
        new_client.create(obj["imsi"], obj)
        seen = old_client.read(obj["imsi"])
        mme_schema(3).validate(seen)
        assert "volte_enabled" not in seen

    def test_cross_two_versions_rejected(self, cluster):
        v3 = cluster.connect("v3", 3)
        v6 = cluster.connect("v6", 6)
        obj = MmeSessionGenerator(3).session(3)
        v3.create(obj["imsi"], obj)
        with pytest.raises(SchemaEvolutionError):
            v6.read(obj["imsi"])

    def test_newer_writer_upgrades_stored_copy(self, cluster):
        v3 = cluster.connect("v3", 3)
        v5 = cluster.connect("v5", 5)
        obj = MmeSessionGenerator(3).session(4)
        key = obj["imsi"]
        v3.create(key, obj)
        v5.update(key, lambda o: o.__setitem__("volte_enabled", True))
        dn = cluster.node_for(key)
        assert dn.stored_version(key) == 5

    def test_older_writer_applies_to_newer_object(self, cluster):
        v5 = cluster.connect("v5", 5)
        v3 = cluster.connect("v3", 3)
        obj = MmeSessionGenerator(5).session(5)
        key = obj["imsi"]
        v5.create(key, obj)
        v3.read(key)
        v3.update(key, lambda o: o.__setitem__("state", "IDLE"))
        dn = cluster.node_for(key)
        assert dn.stored_version(key) == 5     # version never moves down
        v5.invalidate(key)   # v5 is not subscribed; its cache is stale
        assert v5.read(key)["state"] == "IDLE"

    def test_pubsub_projects_deltas(self, cluster):
        v3 = cluster.connect("v3", 3)
        v5 = cluster.connect("v5", 5)
        obj = MmeSessionGenerator(3).session(6)
        key = obj["imsi"]
        v3.create(key, obj)
        v3.subscribe(key)
        v5.read(key)
        v5.subscribe(key)
        v5.update(key, lambda o: (o.__setitem__("volte_enabled", True),
                                  o.__setitem__("tracking_area", 42)))
        assert v3.cached(key)["tracking_area"] == 42
        assert "volte_enabled" not in v3.cached(key)
        assert v5.cached(key)["volte_enabled"] is True

    def test_cache_hit_counters(self, cluster):
        client = cluster.connect("c1", 3)
        obj = MmeSessionGenerator(3).session(7)
        client.create(obj["imsi"], obj)
        client.read(obj["imsi"])
        assert client.cache_hits == 1 and client.cache_misses == 0
        client.invalidate(obj["imsi"])
        client.read(obj["imsi"])
        assert client.cache_misses == 1

    def test_async_flush_and_loss_window(self, cluster):
        client = cluster.connect("c1", 3)
        gen = MmeSessionGenerator(3)
        for i in range(5):
            obj = gen.session(i + 10)
            client.create(obj["imsi"], obj)
        dn_loss = sum(dn.unflushed_loss_on_crash() for dn in cluster.dns)
        assert dn_loss == 5            # nothing flushed yet
        assert cluster.flush_all() == 5
        assert sum(dn.unflushed_loss_on_crash() for dn in cluster.dns) == 0

    def test_delta_bandwidth_accounting(self, cluster):
        client = cluster.connect("c1", 3)
        obj = MmeSessionGenerator(3).session(20)
        key = obj["imsi"]
        client.create(key, obj)
        before = cluster.metrics.bytes_sent
        client.update(key, lambda o: o.__setitem__("tracking_area", 1))
        delta_bytes = cluster.metrics.bytes_sent - before
        assert delta_bytes < object_wire_size(obj) / 50
