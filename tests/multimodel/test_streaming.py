"""Tests for the continuous-query (streaming) engine."""

import pytest

from repro.common.errors import ConfigError, SqlAnalysisError, SqlSyntaxError
from repro.multimodel.streaming import (
    ContinuousQuery,
    EventStream,
    SECOND_US,
    StreamEngine,
    WindowResult,
    parse_cql,
)
from repro.storage.types import DataType


def make_engine():
    engine = StreamEngine()
    engine.create_stream("speed_events", {
        "carid": DataType.BIGINT,
        "speed": DataType.DOUBLE,
        "juncid": DataType.BIGINT,
    })
    return engine


class TestCqlParsing:
    def test_full_clause(self):
        engine = make_engine()
        query = parse_cql("q", "select avg(speed) from speed_events "
                          "where speed > 100 window 10 seconds "
                          "slide 5 seconds", engine)
        assert query.agg == "avg"
        assert query.agg_field == "speed"
        assert query.window_us == 10 * SECOND_US
        assert query.slide_us == 5 * SECOND_US
        assert query.predicate is not None

    def test_count_star(self):
        engine = make_engine()
        query = parse_cql("q", "select count(*) from speed_events "
                          "window 1 minute", engine)
        assert query.agg == "count" and query.agg_field is None
        assert query.window_us == 60 * SECOND_US

    def test_errors(self):
        engine = make_engine()
        with pytest.raises(SqlSyntaxError):
            parse_cql("q", "select avg(speed) from speed_events", engine)
        with pytest.raises(SqlSyntaxError):
            parse_cql("q", "update x set y = 1 window 1 seconds", engine)
        with pytest.raises(SqlAnalysisError):
            parse_cql("q", "select avg(altitude) from speed_events "
                      "window 1 seconds", engine)
        with pytest.raises(ConfigError):
            parse_cql("q", "select avg(speed) from speed_events "
                      "window 2 seconds slide 5 seconds", engine)


class TestTumblingWindows:
    def test_aggregate_per_window(self):
        engine = make_engine()
        results = []
        engine.register_cql(
            "avg_speed", "select avg(speed) from speed_events "
            "window 10 seconds", emit=results.append)
        stream = engine.stream("speed_events")
        for t, speed in [(1, 100.0), (5, 120.0), (12, 80.0), (25, 60.0)]:
            stream.append(t * SECOND_US, carid=1, speed=speed, juncid=1)
        stream.advance_to(40 * SECOND_US)
        assert [r.value for r in results] == [110.0, 80.0, 60.0]
        assert results[0].window_start_us == 0
        assert results[1].window_start_us == 10 * SECOND_US

    def test_where_filters_events(self):
        engine = make_engine()
        results = []
        engine.register_cql(
            "speeders", "select count(*) from speed_events "
            "where speed > 100 window 10 seconds", emit=results.append)
        stream = engine.stream("speed_events")
        for t, speed in [(1, 90.0), (2, 130.0), (3, 140.0)]:
            stream.append(t * SECOND_US, carid=1, speed=speed, juncid=1)
        stream.advance_to(20 * SECOND_US)
        assert [r.value for r in results] == [2.0]

    def test_empty_windows_not_emitted(self):
        engine = make_engine()
        results = []
        engine.register_cql("q", "select count(*) from speed_events "
                            "window 1 seconds", emit=results.append)
        stream = engine.stream("speed_events")
        stream.append(0, carid=1, speed=1.0, juncid=1)
        stream.append(100 * SECOND_US, carid=1, speed=1.0, juncid=1)
        stream.advance_to(200 * SECOND_US)
        assert len(results) == 2   # only the two non-empty windows

    def test_min_max(self):
        engine = make_engine()
        results = []
        engine.register_cql("q", "select max(speed) from speed_events "
                            "window 10 seconds", emit=results.append)
        stream = engine.stream("speed_events")
        for t, speed in [(1, 90.0), (2, 130.0), (3, 70.0)]:
            stream.append(t * SECOND_US, carid=1, speed=speed, juncid=1)
        stream.advance_to(10 * SECOND_US)
        assert results[0].value == 130.0


class TestSlidingWindows:
    def test_overlapping_windows(self):
        engine = make_engine()
        results = []
        engine.register_cql(
            "q", "select count(*) from speed_events "
            "window 10 seconds slide 5 seconds", emit=results.append)
        stream = engine.stream("speed_events")
        for t in (1, 4, 7, 12):
            stream.append(t * SECOND_US, carid=1, speed=1.0, juncid=1)
        stream.advance_to(30 * SECOND_US)
        # Windows: [0,10): 3 events; [5,15): 2 events (7 and 12).
        assert [(r.window_start_us // SECOND_US, r.events)
                for r in results][:2] == [(0, 3), (5, 2)]


class TestStreamMechanics:
    def test_time_must_be_monotone(self):
        engine = make_engine()
        stream = engine.stream("speed_events")
        stream.append(10, carid=1, speed=1.0, juncid=1)
        with pytest.raises(ConfigError):
            stream.append(5, carid=1, speed=1.0, juncid=1)

    def test_unknown_field_rejected(self):
        engine = make_engine()
        with pytest.raises(ConfigError):
            engine.stream("speed_events").append(0, altitude=3.0)

    def test_multiple_queries_per_stream(self):
        engine = make_engine()
        a, b = [], []
        engine.register_cql("qa", "select count(*) from speed_events "
                            "window 10 seconds", emit=a.append)
        engine.register_cql("qb", "select sum(speed) from speed_events "
                            "window 10 seconds", emit=b.append)
        stream = engine.stream("speed_events")
        stream.append(1 * SECOND_US, carid=1, speed=50.0, juncid=1)
        stream.advance_to(10 * SECOND_US)
        assert a[0].value == 1.0 and b[0].value == 50.0

    def test_duplicate_names_rejected(self):
        engine = make_engine()
        engine.register_cql("q", "select count(*) from speed_events "
                            "window 1 seconds")
        with pytest.raises(ConfigError):
            engine.register_cql("q", "select count(*) from speed_events "
                                "window 1 seconds")
        with pytest.raises(ConfigError):
            make_engine().create_stream("x", {}) and None
            engine.create_stream("speed_events", {})
