"""Tests for the graph engine and the Gremlin string parser."""

import pytest

from repro.common.errors import ExecutionError, SqlSyntaxError
from repro.multimodel.graph import P, PropertyGraph, __
from repro.multimodel.gremlin import parse_gremlin


@pytest.fixture
def social():
    g = PropertyGraph()
    for name, age in [("alice", 30), ("bob", 25), ("carol", 35), ("dan", 28)]:
        g.add_vertex(name, "person", name=name, age=age)
    g.add_vertex("acme", "company", name="acme")
    g.add_edge("alice", "bob", "knows", since=2015)
    g.add_edge("alice", "carol", "knows", since=2020)
    g.add_edge("bob", "carol", "knows", since=2018)
    g.add_edge("alice", "acme", "works_at")
    g.add_edge("dan", "acme", "works_at")
    return g


class TestGraphStorage:
    def test_counts(self, social):
        assert social.vertex_count == 5
        assert social.edge_count == 5

    def test_duplicate_vertex_rejected(self, social):
        with pytest.raises(ExecutionError):
            social.add_vertex("alice")

    def test_edge_needs_endpoints(self, social):
        with pytest.raises(ExecutionError):
            social.add_edge("alice", "nobody", "knows")

    def test_remove_vertex_cascades(self, social):
        social.remove_vertex("alice")
        assert social.vertex_count == 4
        assert social.edge_count == 2  # alice's 3 edges removed

    def test_relational_projection(self, social):
        rows = social.vertex_rows()
        assert {"vid", "label"} <= set(rows[0])
        edge_rows = social.edge_rows()
        assert {"eid", "src", "dst", "label"} <= set(edge_rows[0])
        assert len(edge_rows) == 5


class TestTraversal:
    def test_v_and_has(self, social):
        names = social.traversal().V().has("age", P.gte(30)).values("name").to_list()
        assert sorted(names) == ["alice", "carol"]

    def test_out_in_both(self, social):
        assert sorted(social.traversal().V("alice").out("knows").values("name")) == \
            ["bob", "carol"]
        assert social.traversal().V("carol").in_("knows").count().next() == 2
        assert social.traversal().V("bob").both("knows").count().next() == 2

    def test_edge_steps(self, social):
        since = social.traversal().V("alice").outE("knows").values("since").to_list()
        assert sorted(since) == [2015, 2020]
        sources = social.traversal().V("acme").inE("works_at").outV() \
            .values("name").to_list()
        assert sorted(sources) == ["alice", "dan"]

    def test_haslabel(self, social):
        assert social.traversal().V().hasLabel("company").count().next() == 1

    def test_where_subtraversal(self, social):
        employed = social.traversal().V().hasLabel("person") \
            .where(__.out("works_at")).values("name").to_list()
        assert sorted(employed) == ["alice", "dan"]

    def test_dedup_and_limit(self, social):
        repeated = social.traversal().V("alice").out("knows").in_("knows")
        assert len(repeated.to_list()) > len(repeated.dedup().to_list())
        assert len(social.traversal().V().limit(2).to_list()) == 2

    def test_count_is_filter(self, social):
        popular = social.traversal().V().hasLabel("person") \
            .where(__.out("knows").count().is_(P.gte(2))) \
            .values("name").to_list()
        assert popular == ["alice"]

    def test_predicates(self):
        assert P.within("a", "b").test("a")
        assert not P.within("a").test("c")
        assert P.neq(1).test(2)
        assert not P.gt(5).test(None)

    def test_empty_start(self, social):
        assert social.traversal().V("ghost").to_list() == []


class TestGremlinParser:
    def test_basic_chain(self, social):
        result = parse_gremlin("g.V().has('age', gt(26)).values('name')", social)
        assert sorted(result.to_list()) == ["alice", "carol", "dan"]

    def test_in_alias(self, social):
        result = parse_gremlin("g.V().has('name','carol').in('knows').count()",
                               social)
        assert result.next() == 2

    def test_nested_anonymous_traversal(self, social):
        text = ("g.V().hasLabel('person')"
                ".where(__.out('works_at').has('name','acme'))"
                ".values('name')")
        assert sorted(parse_gremlin(text, social).to_list()) == ["alice", "dan"]

    def test_bare_words_are_strings(self, social):
        # The paper writes has(cid, 11111) without quotes.
        result = parse_gremlin("g.V().has(name, 'alice').count()", social)
        assert result.next() == 1

    def test_escaped_quotes(self, social):
        social.add_vertex("o'brien", "person", name="o'brien", age=40)
        result = parse_gremlin("g.V().has('name', 'o''brien').count()", social)
        assert result.next() == 1

    def test_numbers_and_predicates(self, social):
        result = parse_gremlin(
            "g.V().has('age', gte(25)).has('age', lt(30)).count()", social)
        assert result.next() == 2

    def test_unknown_step_rejected(self, social):
        with pytest.raises(SqlSyntaxError):
            parse_gremlin("g.V().teleport()", social)

    def test_trailing_garbage_rejected(self, social):
        with pytest.raises(SqlSyntaxError):
            parse_gremlin("g.V() nonsense", social)

    def test_chain_must_start_with_g(self, social):
        with pytest.raises(SqlSyntaxError):
            parse_gremlin("h.V()", social)
