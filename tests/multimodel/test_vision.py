"""Tests for the vision engine and high-dimensional feature index."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ExecutionError, StorageError
from repro.common.rng import make_rng
from repro.multimodel.mmdb import MultiModelDB
from repro.multimodel.vision import BoundingBox, FeatureIndex, VisionEngine, VisionStore


def unit_feature(rng, dim=8, base=None, noise=0.0):
    """A random direction, optionally near a base direction."""
    vec = np.array([rng.gauss(0, 1) for _ in range(dim)])
    if base is not None:
        vec = np.asarray(base) + noise * vec
    return (vec / np.linalg.norm(vec)).tolist()


class TestBoundingBox:
    def test_iou_identical(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.iou(box) == 1.0

    def test_iou_disjoint(self):
        assert BoundingBox(0, 0, 5, 5).iou(BoundingBox(10, 10, 5, 5)) == 0.0

    def test_iou_partial(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 10, 10)
        assert a.iou(b) == pytest.approx(50 / 150)


class TestFeatureIndex:
    def test_exact_knn_finds_self(self):
        rng = make_rng(1)
        index = FeatureIndex(dim=8)
        features = {}
        for i in range(50):
            features[i] = unit_feature(rng)
            index.add(i, features[i])
        hits = index.knn(features[7], k=1)
        assert hits[0][0] == 7
        assert hits[0][1] == pytest.approx(1.0)

    def test_knn_orders_by_similarity(self):
        index = FeatureIndex(dim=2)
        index.add(1, [1.0, 0.0])
        index.add(2, [0.9, 0.1])
        index.add(3, [0.0, 1.0])
        hits = index.knn([1.0, 0.05], k=3)
        assert [h[0] for h in hits] == [1, 2, 3]

    def test_lsh_mode_recalls_near_duplicates(self):
        rng = make_rng(5)
        index = FeatureIndex(dim=16, lsh_bits=6)
        base = unit_feature(rng, dim=16)
        index.add(0, base)
        for i in range(1, 200):
            index.add(i, unit_feature(rng, dim=16))
        near = unit_feature(rng, dim=16, base=base, noise=0.05)
        hits = index.knn(near, k=1, exact=False)
        assert hits and hits[0][0] == 0

    def test_lsh_probes_fewer_candidates(self):
        rng = make_rng(6)
        index = FeatureIndex(dim=16, lsh_bits=8)
        for i in range(500):
            index.add(i, unit_feature(rng, dim=16))
        query = unit_feature(rng, dim=16)
        approx = index.knn(query, k=5, exact=False)
        exact = index.knn(query, k=5, exact=True)
        assert len(approx) <= 5 and len(exact) == 5

    def test_rebuild_online(self):
        rng = make_rng(7)
        index = FeatureIndex(dim=8)
        vectors = [unit_feature(rng) for _ in range(40)]
        for i, vec in enumerate(vectors):
            index.add(i, vec)
        index.rebuild(lsh_bits=5)
        hits = index.knn(vectors[3], k=1, exact=False)
        assert hits and hits[0][0] == 3

    def test_validation(self):
        index = FeatureIndex(dim=4)
        with pytest.raises(StorageError):
            index.add(1, [1.0, 0.0])            # wrong dimension
        with pytest.raises(StorageError):
            index.add(1, [0.0, 0.0, 0.0, 0.0])  # zero vector
        with pytest.raises(ConfigError):
            FeatureIndex(dim=0)
        with pytest.raises(ConfigError):
            FeatureIndex(dim=4, lsh_bits=99)


class TestVisionStore:
    @pytest.fixture
    def store(self):
        rng = make_rng(9)
        store = VisionStore("cam", feature_dim=8)
        labels = ["car", "car", "pedestrian", "truck", "car", "pedestrian"]
        for i, label in enumerate(labels):
            store.ingest(f"frame-{i // 2}", t_us=i * 1000, label=label,
                         confidence=0.5 + 0.08 * i,
                         bbox=BoundingBox(i * 5.0, 0, 10, 10),
                         feature=unit_feature(rng))
        return store

    def test_by_label(self, store):
        cars = store.by_label("car")
        assert len(cars) == 3
        assert all(d.label == "car" for d in cars)

    def test_confidence_filter(self, store):
        confident = store.by_label("car", min_confidence=0.8)
        assert len(confident) == 1

    def test_time_window(self, store):
        window = store.in_window(1000, 3000)
        assert [d.detection_id for d in window] == [1, 2, 3]

    def test_overlapping_boxes(self, store):
        hits = store.overlapping(BoundingBox(2.0, 0, 10, 10), min_iou=0.3)
        assert {d.detection_id for d in hits} == {0, 1}

    def test_similar_to(self, store):
        hits = store.similar_to(0, k=3)
        assert len(hits) == 3
        assert all(d.detection_id != 0 for d, _ in hits)
        sims = [s for _, s in hits]
        assert sims == sorted(sims, reverse=True)

    def test_bad_confidence_rejected(self, store):
        with pytest.raises(StorageError):
            store.ingest("f", 0, "car", 1.5, BoundingBox(0, 0, 1, 1))

    def test_labels_listing(self, store):
        assert store.labels() == ["car", "pedestrian", "truck"]

    def test_engine_registry(self):
        engine = VisionEngine()
        engine.create_store("a")
        with pytest.raises(StorageError):
            engine.create_store("a")
        with pytest.raises(StorageError):
            engine.store("zz")
        assert engine.names() == ["a"]


class TestVisionInSql:
    def test_gvision_join_with_relational(self):
        db = MultiModelDB()
        db.execute("create table frames (frame_id text primary key, "
                   "camera text)")
        db.execute("insert into frames values ('f0', 'gate'), ('f1', 'lot')")
        store = db.vision.create_store("cams", feature_dim=4)
        rng = make_rng(3)
        for i, (frame, label) in enumerate(
                [("f0", "car"), ("f0", "pedestrian"), ("f1", "car")]):
            store.ingest(frame, i * 10, label, 0.9,
                         BoundingBox(0, 0, 5, 5), unit_feature(rng, dim=4))
        rows = db.query(
            "select v.frame_id, f.camera, v.confidence "
            "from gvision('cams', 'car') v "
            "join frames f on f.frame_id = v.frame_id order by v.frame_id")
        assert [(r["frame_id"], r["camera"]) for r in rows] == \
            [("f0", "gate"), ("f1", "lot")]

    def test_gvision_similar_in_sql(self):
        db = MultiModelDB()
        store = db.vision.create_store("cams", feature_dim=4)
        rng = make_rng(4)
        base = unit_feature(rng, dim=4)
        store.ingest("f0", 0, "car", 0.9, BoundingBox(0, 0, 1, 1), base)
        store.ingest("f1", 1, "car", 0.9, BoundingBox(0, 0, 1, 1),
                     unit_feature(rng, dim=4, base=base, noise=0.05))
        store.ingest("f2", 2, "truck", 0.9, BoundingBox(0, 0, 1, 1),
                     unit_feature(rng, dim=4))
        rows = db.query(
            "select detection_id, similarity "
            "from gvision_similar('cams', 0, 2) order by similarity desc")
        assert rows[0]["detection_id"] == 1
