"""Tests for the time-series and spatial engines."""

import pytest

from repro.common.errors import ConfigError, ExecutionError, StorageError
from repro.multimodel.spatial import GridIndex, SpatialEngine, euclidean, haversine_m
from repro.multimodel.timeseries import TimeSeries, TimeSeriesEngine


class TestTimeSeries:
    def make(self, n=100, step=1000):
        ts = TimeSeries("s", ["v"], chunk_points=32)
        for i in range(n):
            ts.append(i * step, v=float(i))
        return ts

    def test_range_query(self):
        ts = self.make()
        points = list(ts.range(10_000, 12_000))
        assert [t for t, _ in points] == [10_000, 11_000, 12_000]

    def test_last_window(self):
        ts = self.make()
        points = list(ts.last_window(window_us=5_000, now_us=99_000))
        assert [t for t, _ in points] == [95_000, 96_000, 97_000, 98_000, 99_000]

    def test_out_of_order_ingest_sorted(self):
        ts = TimeSeries("s", ["v"], chunk_points=8)
        for t in (5, 1, 3, 2, 4, 9, 7, 8):
            ts.append(t, v=float(t))
        assert [t for t, _ in ts.range(0, 10)] == [1, 2, 3, 4, 5, 7, 8, 9]

    def test_late_data_merges_chunks(self):
        ts = TimeSeries("s", ["v"], chunk_points=4)
        for t in (10, 20, 30, 40):   # seals chunk [10..40]
            ts.append(t, v=1.0)
        for t in (15, 50, 60, 70):   # 15 overlaps the sealed chunk
            ts.append(t, v=2.0)
        times = [t for t, _ in ts.range(0, 100)]
        assert times == sorted(times)
        assert 15 in times

    def test_aggregates(self):
        ts = self.make(10)
        assert ts.aggregate(0, 9_000, "v", "sum") == 45.0
        assert ts.aggregate(0, 9_000, "v", "max") == 9.0
        assert ts.aggregate(0, 9_000, "v", "count") == 10.0
        assert ts.aggregate(50_000, 60_000, "v", "avg") is None

    def test_window_aggregate(self):
        ts = self.make(10)
        buckets = ts.window_aggregate(0, 10_000, 5_000, "v", "count")
        assert buckets == [(0, 5.0), (5_000, 5.0)]

    def test_downsample(self):
        ts = self.make(100)
        coarse = ts.downsample(10_000, "v", "avg")
        points = list(coarse.range(0, 10**9))
        assert len(points) == 10
        assert points[0][1]["v"] == pytest.approx(4.5)

    def test_multi_column(self):
        ts = TimeSeries("gps", ["lat", "lon"])
        ts.append(1, lat=1.0, lon=2.0)
        ts.append(2, 3.0, 4.0)   # positional
        points = list(ts.range(0, 10))
        assert points[1][1] == {"lat": 3.0, "lon": 4.0}

    def test_errors(self):
        ts = TimeSeries("s", ["v"])
        with pytest.raises(ExecutionError):
            ts.append(1)             # missing value
        with pytest.raises(ExecutionError):
            ts.append(1, 1.0, v=1.0)  # both styles
        with pytest.raises(ExecutionError):
            ts.aggregate(0, 1, "v", "median")
        with pytest.raises(StorageError):
            ts.aggregate(0, 1, "zz", "sum")

    def test_engine_registry(self):
        engine = TimeSeriesEngine()
        engine.create_series("a", ["v"])
        assert engine.has("a")
        with pytest.raises(StorageError):
            engine.create_series("a", ["v"])
        with pytest.raises(StorageError):
            engine.series("zz")
        engine.drop("a")
        assert not engine.has("a")


class TestSpatial:
    def grid(self):
        index = GridIndex(cell_size=10.0)
        for i in range(10):
            for j in range(10):
                index.insert(f"p{i}_{j}", i * 10.0, j * 10.0)
        return index

    def test_bbox(self):
        index = self.grid()
        hits = {p.oid for p in index.bbox(15, 15, 35, 35)}
        assert hits == {"p2_2", "p2_3", "p3_2", "p3_3"}

    def test_radius_sorted_by_distance(self):
        index = self.grid()
        hits = index.radius(20, 20, 11.0)
        assert hits[0].oid == "p2_2"
        assert {p.oid for p in hits[1:]} == {"p1_2", "p3_2", "p2_1", "p2_3"}

    def test_knn(self):
        index = self.grid()
        nearest = index.knn(21, 21, 3)
        assert nearest[0].oid == "p2_2"
        assert len(nearest) == 3

    def test_knn_more_than_points(self):
        index = GridIndex(5.0)
        index.insert("a", 0, 0)
        assert len(index.knn(1, 1, 10)) == 1

    def test_move_and_remove(self):
        index = GridIndex(5.0)
        index.insert("a", 0, 0, kind="car")
        index.move("a", 100, 100)
        assert index.get("a").x == 100
        assert index.get("a").prop("kind") == "car"
        index.remove("a")
        assert index.get("a") is None
        assert len(index) == 0

    def test_duplicate_insert_rejected(self):
        index = GridIndex(5.0)
        index.insert("a", 0, 0)
        with pytest.raises(StorageError):
            index.insert("a", 1, 1)

    def test_negative_coordinates(self):
        index = GridIndex(5.0)
        index.insert("a", -12, -7)
        assert [p.oid for p in index.bbox(-20, -10, -10, 0)] == ["a"]

    def test_engine_layers(self):
        engine = SpatialEngine()
        engine.create_layer("cars")
        with pytest.raises(StorageError):
            engine.create_layer("cars")
        with pytest.raises(StorageError):
            engine.layer("zz")
        assert engine.names() == ["cars"]

    def test_distances(self):
        assert euclidean(0, 0, 3, 4) == 5.0
        paris_london = haversine_m(48.8566, 2.3522, 51.5074, -0.1278)
        assert 330_000 < paris_london < 360_000
