"""Integration tests for the multi-model database (Example 1 and friends)."""

import pytest

from repro.multimodel.mmdb import MultiModelDB

MINUTES = 60_000_000


@pytest.fixture
def city():
    """The paper's Example 1 scenario: cameras, call graph, registrations."""
    db = MultiModelDB()
    db.execute("create table car2cid (carid int primary key, cid int)")
    db.execute("create table person (cid int primary key, phone text, photo text)")
    for cid, car in [(11111, 1), (22222, 2), (33333, 3), (44444, 4)]:
        db.execute(f"insert into person values ({cid}, 'ph-{cid}', 'photo-{cid}')")
        db.execute(f"insert into car2cid values ({car}, {cid})")
    for cid in (11111, 22222, 33333, 44444):
        db.graph.add_vertex(cid, "person", cid=cid)
    for t in (10, 20, 30, 40):
        db.graph.add_edge(22222, 11111, "call", time=t)
    db.graph.add_edge(33333, 11111, "call", time=25)
    hs = db.timeseries.create_series("high_speed", ["carid", "juncid"])
    db.set_now_us(100 * MINUTES)
    for t, car, junc in [(75, 2, 9), (80, 3, 7), (99, 2, 5), (40, 4, 1)]:
        hs.append(t * MINUTES, carid=car, juncid=junc)
    return db


EXAMPLE1 = """
with cars (t, carid, juncid) as (
    select time, carid, juncid from gtimeseries('high_speed', 1800000000)
),
suspects (cid) as (
    select value from ggraph('g.V().hasLabel(''person'')
        .where(__.outE(''call'').has(''time'', gt(5)).inV().has(''cid'', 11111)
               .count().is(gt(3)))
        .values(''cid'')')
)
select s.cid, p.phone, p.photo, c.carid
from suspects s, cars c, car2cid cc, person p
where s.cid = cc.cid and cc.carid = c.carid and p.cid = s.cid
"""


class TestExample1:
    def test_unified_query(self, city):
        result = city.execute(EXAMPLE1)
        assert result.columns == ["cid", "phone", "photo", "carid"]
        assert result.rowcount == 2          # two recent sightings of car 2
        assert all(row[0] == 22222 for row in result.rows)
        assert all(row[3] == 2.0 for row in result.rows)

    def test_window_excludes_old_sightings(self, city):
        rows = city.query(
            "select carid from gtimeseries('high_speed', 1800000000)")
        cars = {int(r["carid"]) for r in rows}
        assert cars == {2, 3}    # the t=40min sighting of car 4 is too old

    def test_gtimeseries_range(self, city):
        rows = city.query(
            f"select carid from gtimeseries_range('high_speed', 0, {50 * MINUTES})")
        assert [int(r["carid"]) for r in rows] == [4]

    def test_ggraph_scalar_output(self, city):
        rows = city.query(
            "select value from ggraph('g.V(11111).inE(''call'').count()')")
        assert rows == [{"value": 5}]

    def test_ggraph_vertex_output_expands_properties(self, city):
        result = city.execute(
            "select * from ggraph('g.V().hasLabel(''person'')') limit 1")
        assert "vid" in result.columns and "cid" in result.columns

    def test_gremlin_direct(self, city):
        assert city.gremlin("g.V(22222).out('call').count()") == [4]


class TestSpatialIntegration:
    def test_knn_in_sql(self, city):
        layer = city.spatial.create_layer("junctions", cell_size=5.0)
        for i in range(10):
            layer.insert(f"j{i}", float(i * 3), float(i % 4))
        rows = city.query(
            "select oid, distance from gspatial_knn('junctions', 9, 1, 2)")
        assert len(rows) == 2
        assert rows[0]["distance"] <= rows[1]["distance"]

    def test_radius_join_with_relational(self, city):
        layer = city.spatial.create_layer("cams")
        layer.insert("1", 0.0, 0.0)
        layer.insert("2", 0.5, 0.5)
        layer.insert("3", 50.0, 50.0)
        rows = city.query(
            "select c.oid, p.phone from gspatial_radius('cams', 0, 0, 2) c "
            "join person p on p.cid = 11111")
        assert sorted(r["c" if "c" in rows[0] else "oid"] for r in rows) == ["1", "2"]


class TestClock:
    def test_now_used_by_sql(self, city):
        assert city.query("select now() t")[0]["t"] == 100 * MINUTES
        city.set_now_us(5)
        assert city.query("select now() t")[0]["t"] == 5

    def test_external_now_fn(self):
        db = MultiModelDB(now_fn=lambda: 42)
        assert db.query("select now() t")[0]["t"] == 42
