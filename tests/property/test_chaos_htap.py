"""Chaos property suite: seeded fault schedules against the HTAP merge daemon.

Each seed draws a random schedule from ``HTAP_FAULT_MENU`` (crash a DN
mid-merge, time out or drop a merge, stall the freshness tick), runs an
OLTP write mix with daemon ticks interleaved, recovers the cluster, and
asserts the delta-merge crash-safety invariants:

1. **No lost or duplicated rows** — every DN's served column store equals
   the MVCC heap walk row for row, and the union of served rows equals the
   oracle built from acknowledged commits.
2. **No stuck watermark** — once recovery completes and a fault-free tick
   runs, every delta drains and ``frozen.merged_seq`` catches up to the
   delta's next sequence number.
3. **Clean re-merge after failover** — a write after recovery lands in the
   frozen chunk set on the next tick, including on re-seeded replacement
   nodes.

The seed range is environment-tunable so CI can shard the search space:
``CHAOS_SEED_BASE`` (default 0) and ``CHAOS_SEED_COUNT`` (default 50).
"""

import os
import random

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.cluster.ha import HaManager
from repro.common.errors import TransactionError
from repro.faults import FaultInjector
from repro.faults.chaos import (HTAP_FAULT_MENU, arm_random_htap_faults,
                                recover_cluster)
from repro.storage import Column, DataType, Orientation, TableSchema
from repro.storage.colstore import ColumnStore

NUM_DNS = 3
KEYS = list(range(12))
ROUNDS = 3
TXNS_PER_ROUND = 8

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEED_COUNT = int(os.environ.get("CHAOS_SEED_COUNT", "50"))


def build(seed):
    cluster = MppCluster(num_dns=NUM_DNS, mode=TxnMode.GTM_LITE)
    cluster.create_table(TableSchema(
        "c", [Column("k", DataType.INT), Column("v", DataType.INT)], "k",
        orientation=Orientation.COLUMN))
    HaManager(cluster)
    injector = FaultInjector(seed=seed).bind(cluster)
    session = cluster.session()
    init = session.begin(multi_shard=True)
    for k in KEYS:
        init.insert("c", {"k": k, "v": 0})
    init.commit()
    return cluster, injector, session


def chaos_round(cluster, injector, session, rng, expected, marker):
    """Arm a random HTAP schedule, interleave writes with daemon ticks.

    ``expected`` is the oracle: key -> value for every acknowledged commit.
    Writes that raise are aborted and leave the oracle untouched.
    """
    arm_random_htap_faults(injector, rng, num_dns=NUM_DNS)
    clock = cluster.obs.clock
    for _ in range(TXNS_PER_ROUND):
        marker += 1
        k = rng.choice(KEYS)
        txn = session.begin()
        try:
            if k not in expected:
                txn.insert("c", {"k": k, "v": marker})
                txn.commit()
                expected[k] = marker
            elif rng.random() < 0.2:
                txn.delete("c", k)
                txn.commit()
                del expected[k]
            else:
                txn.update("c", k, {"v": marker})
                txn.commit()
                expected[k] = marker
        except TransactionError:
            txn.abort()
        clock.advance(rng.choice((5_000.0, 20_000.0, 60_000.0)))
        if rng.random() < 0.5:
            # The daemon tick runs through the armed faults: merges may be
            # aborted, delayed, or crash the node mid-merge.  tick() itself
            # must never raise.
            cluster.htap.tick(clock.now_us)
    return marker


def assert_no_lost_or_duplicate_rows(cluster, expected):
    """Invariant 1: served stores match heap walks and the oracle."""
    txn = cluster.session().begin(multi_shard=True)
    served_union = {}
    for dn_index, dn in enumerate(cluster.dns):
        served = list(txn.shard_column_store("c", dn_index).scan_rows())
        oracle = ColumnStore(dn._schemas["c"], compress=False)
        oracle.append_rows(
            values for _key, values in dn.heap("c").scan(
                txn._local_view[dn_index], dn.ltm.clog,
                txn._local_xid[dn_index]))
        oracle.flush()
        assert served == list(oracle.scan_rows())
        for row in served:
            assert row["k"] not in served_union   # no duplicated rows
            served_union[row["k"]] = row["v"]
    txn.commit()
    assert served_union == expected               # no lost rows


def assert_watermark_caught_up(cluster):
    """Invariant 2: every delta drained, merged_seq == next_seq."""
    assert cluster.htap.delta_rows() == 0
    for dn in cluster.dns:
        for store in dn.htap.tables.values():
            assert store.frozen is not None
            assert store.frozen.merged_seq == store.delta.next_seq


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + SEED_COUNT))
def test_htap_chaos_schedule_preserves_invariants(seed):
    cluster, injector, session = build(seed)
    rng = random.Random(seed ^ 0x47A9)
    expected = {k: 0 for k in KEYS}
    marker = 0
    for _ in range(ROUNDS):
        marker = chaos_round(cluster, injector, session, rng, expected,
                             marker)
        recover_cluster(cluster)
    # Fault-free catch-up tick: the watermark must not be stuck.
    clock = cluster.obs.clock
    clock.advance(100_000.0)
    cluster.htap.tick(clock.now_us)
    assert_watermark_caught_up(cluster)
    assert_no_lost_or_duplicate_rows(cluster, expected)
    # Invariant 3: a post-recovery write re-merges cleanly everywhere,
    # including re-seeded replacement nodes.
    marker += 1
    k = rng.choice(KEYS)
    txn = session.begin()
    if k in expected:
        txn.update("c", k, {"v": marker})
    else:
        txn.insert("c", {"k": k, "v": marker})
    txn.commit()
    expected[k] = marker
    clock.advance(100_000.0)
    assert cluster.htap.tick(clock.now_us) >= 1
    assert_watermark_caught_up(cluster)
    assert_no_lost_or_duplicate_rows(cluster, expected)


@pytest.mark.parametrize("failpoint,action,node_scoped", HTAP_FAULT_MENU)
def test_every_htap_menu_entry_survives_deterministically(failpoint, action,
                                                          node_scoped):
    """Each (failpoint, action) pair, alone, preserves the invariants."""
    cluster, injector, session = build(seed=99)
    match = {"dn": 0} if node_scoped else None
    injector.arm(failpoint, action, times=1, match=match, delay_us=2_000.0)
    expected = {k: 0 for k in KEYS}
    clock = cluster.obs.clock
    for marker, k in enumerate((1, 4, 7), start=1):
        txn = session.begin()
        try:
            txn.update("c", k, {"v": marker})
            txn.commit()
            expected[k] = marker
        except TransactionError:
            txn.abort()
        clock.advance(50_000.0)
        cluster.htap.tick(clock.now_us)
    recover_cluster(cluster)
    clock.advance(50_000.0)
    cluster.htap.tick(clock.now_us)
    assert_watermark_caught_up(cluster)
    assert_no_lost_or_duplicate_rows(cluster, expected)
