"""Property-based tests for the extension subsystems (HA, vision,
consistency, GMDB persistence)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import MppCluster
from repro.cluster.ha import HaManager
from repro.collab.consistency import ConsistencyLevel, ConsistentSession
from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform
from repro.common.errors import SerializationConflict
from repro.multimodel.vision import FeatureIndex
from repro.storage import Column, DataType, TableSchema

KEYS = list(range(8))


# -- HA: committed state survives failover exactly --------------------------

ha_history = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(1, 99),
              st.booleans()),     # (key, value, commit?)
    min_size=1, max_size=30,
)


class TestFailoverDurability:
    @given(history=ha_history, fail_at=st.integers(0, 29))
    @settings(max_examples=40, deadline=None)
    def test_committed_writes_survive_any_failover_point(self, history, fail_at):
        cluster = MppCluster(num_dns=2)
        cluster.create_table(TableSchema(
            "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
        ha = HaManager(cluster)
        session = cluster.session()
        seed = session.begin(multi_shard=True)
        for k in KEYS:
            seed.insert("t", {"k": k, "v": 0})
        seed.commit()
        oracle = {k: 0 for k in KEYS}
        for i, (key, value, commit) in enumerate(history):
            txn = session.begin(multi_shard=False)
            try:
                txn.update("t", key, {"v": value})
            except SerializationConflict:
                txn.abort()
                continue
            if commit:
                txn.commit()
                oracle[key] = value
            else:
                txn.abort()
            if i == fail_at:
                ha.fail_and_promote(i % 2)
        reader = session.begin(multi_shard=True)
        state = {k: reader.read("t", k)["v"] for k in KEYS}
        reader.commit()
        assert state == oracle


# -- vision: the feature index agrees with a brute-force oracle ------------------

vectors = st.lists(
    st.lists(st.floats(min_value=-5, max_value=5,
                       allow_nan=False, allow_infinity=False),
             min_size=6, max_size=6),
    min_size=2, max_size=40,
).filter(lambda vs: all(any(abs(x) > 1e-6 for x in v) for v in vs))


class TestFeatureIndexOracle:
    @given(vs=vectors, k=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_exact_knn_matches_numpy_oracle(self, vs, k):
        index = FeatureIndex(dim=6)
        matrix = []
        for i, v in enumerate(vs):
            index.add(i, v)
            arr = np.asarray(v, dtype=float)
            matrix.append(arr / np.linalg.norm(arr))
        query = vs[0]
        hits = index.knn(query, k=k)
        q = np.asarray(query, dtype=float)
        q = q / np.linalg.norm(q)
        sims = np.vstack(matrix) @ q
        oracle = sorted(range(len(vs)), key=lambda i: -sims[i])[:k]
        # Similarities must match the oracle's (ties may reorder ids).
        assert [round(s, 9) for _, s in hits] == \
            [round(float(sims[i]), 9) for i in oracle]

    @given(vs=vectors)
    @settings(max_examples=30, deadline=None)
    def test_lsh_results_are_subset_of_exact_ranking(self, vs):
        index = FeatureIndex(dim=6, lsh_bits=4)
        for i, v in enumerate(vs):
            index.add(i, v)
        approx = index.knn(vs[0], k=3, exact=False)
        exact_ids = {i for i, _ in index.knn(vs[0], k=len(vs))}
        assert {i for i, _ in approx} <= exact_ids
        # The query vector itself is always in its own bucket.
        assert approx and approx[0][0] == 0


# -- consistency: read-your-writes holds under random device hopping --------------

hops = st.lists(st.integers(0, 2), min_size=1, max_size=12)


class TestSessionGuaranteeProperty:
    @given(writes=hops, reads=hops)
    @settings(max_examples=40, deadline=None)
    def test_read_your_writes_always_holds(self, writes, reads):
        platform = CollabPlatform()
        names = ["d0", "d1", "d2"]
        for name in names:
            platform.add_node(name, NodeKind.DEVICE)
        platform.connect_nearby("d0", "d1")
        platform.connect_nearby("d1", "d2")
        session = ConsistentSession(platform,
                                    ConsistencyLevel.READ_YOUR_WRITES)
        counter = 0
        for device in writes:
            session.write(names[device], "doc", counter)
            counter += 1
        for device in reads:
            value = session.read(names[device], "doc")
            assert value == counter - 1, \
                f"RYW violated: read {value}, last write {counter - 1}"
