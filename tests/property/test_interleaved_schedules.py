"""Property-based tests: GTM-lite under arbitrary operation interleavings.

Hypothesis drives a population of transactions through the cluster one
operation at a time — including through the middle of their 2PC commits —
then simulates a coordinator crash and runs in-doubt recovery.  The final
committed state must match the first-updater-wins oracle exactly, under
both GTM-lite and the classical protocol, for every schedule.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import MppCluster, TxnMode
from repro.cluster.recovery import in_doubt_count
from repro.storage import Column, DataType, TableSchema
from repro.workloads.interleaved import InterleavedRun, Phase, TxnScript

KEYS = list(range(6))
NUM_DNS = 3


def fresh_cluster(mode):
    cluster = MppCluster(num_dns=NUM_DNS, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    init = cluster.session().begin(multi_shard=True)
    for k in KEYS:
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return cluster


# Scripts: 1-3 blind writes each; values are made unique by script position.
script_strategy = st.lists(
    st.lists(st.sampled_from(KEYS), min_size=1, max_size=3, unique=True),
    min_size=1, max_size=6,
)
schedule_strategy = st.lists(st.integers(0, 5), min_size=1, max_size=80)


def build_scripts(key_lists):
    scripts = []
    for i, keys in enumerate(key_lists):
        shards = {k % NUM_DNS for k in keys}
        scripts.append(TxnScript(
            writes=[(k, (i + 1) * 100 + k) for k in keys],
            multi_shard=len(shards) > 1,
        ))
    return scripts


@pytest.mark.parametrize("mode", [TxnMode.GTM_LITE, TxnMode.CLASSICAL])
class TestArbitrarySchedules:
    @given(key_lists=script_strategy, schedule=schedule_strategy)
    @settings(max_examples=50, deadline=None)
    def test_crash_recovery_matches_oracle(self, mode, key_lists, schedule):
        cluster = fresh_cluster(mode)
        run = InterleavedRun(cluster, build_scripts(key_lists))
        run.run_schedule(schedule)
        run.crash_and_recover()
        assert in_doubt_count(cluster) == 0
        initial = {k: 0 for k in KEYS}
        assert run.actual_final_state(KEYS) == run.expected_final_state(initial)

    @given(key_lists=script_strategy, schedule=schedule_strategy)
    @settings(max_examples=30, deadline=None)
    def test_run_to_completion_matches_oracle(self, mode, key_lists, schedule):
        cluster = fresh_cluster(mode)
        run = InterleavedRun(cluster, build_scripts(key_lists))
        run.run_schedule(schedule)
        # Drain: round-robin until everything resolves.
        safety = 0
        while not run.all_finished and safety < 500:
            for i in range(len(run.live)):
                run.step(i)
            safety += 1
        assert run.all_finished
        initial = {k: 0 for k in KEYS}
        assert run.actual_final_state(KEYS) == run.expected_final_state(initial)
        assert in_doubt_count(cluster) == 0


class TestMidCommitVisibility:
    @given(key_lists=script_strategy, schedule=schedule_strategy)
    @settings(max_examples=40, deadline=None)
    def test_no_reader_sees_a_torn_multi_shard_write(self, key_lists, schedule):
        """At every point of every schedule, a fresh snapshot reader sees
        each multi-shard transaction's marker values all-or-nothing, unless
        a later committed write replaced part of it."""
        cluster = fresh_cluster(TxnMode.GTM_LITE)
        scripts = build_scripts(key_lists)
        run = InterleavedRun(cluster, scripts)
        for index in schedule:
            run.step(index % len(scripts))
            state = run.actual_final_state(KEYS)
            for i, script in enumerate(scripts):
                if not script.multi_shard:
                    continue
                wrote = dict(run.live[i].successful_writes)
                if len(wrote) < 2:
                    continue
                seen = {k for k, v in wrote.items() if state.get(k) == v}
                overwritten = {
                    k for k in wrote
                    if any(j != i and state.get(k) == v2
                           for key2, entries in run.write_log.items()
                           if key2 == k
                           for (j, v2) in entries)
                }
                # Every marker is either visible, or explainably replaced.
                if seen and seen != set(wrote):
                    missing = set(wrote) - seen
                    assert missing <= overwritten, (
                        f"torn read: txn {i} wrote {wrote}, saw only {seen}, "
                        f"state {state}")
