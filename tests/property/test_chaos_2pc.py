"""Chaos property suite: seeded fault schedules against GTM-lite 2PC.

Each seed draws a random fault schedule (`repro.faults.chaos.FAULT_MENU`),
runs a small update workload through it, recovers the cluster, and asserts
the three crash-safety invariants:

1. **No GTM-committed write is ever lost** — once `gtm.is_committed(gxid)`
   holds, the transaction's writes survive node crashes, coordinator death,
   failover and recovery.
2. **No residual PREPARED state after recovery** — `in_doubt_count == 0`
   once `recover_cluster` returns.
3. **No snapshot ever observes a partially-committed global transaction** —
   the final state exactly equals the oracle built from the per-transaction
   commit decisions, so a half-applied multi-shard write would show up as a
   divergence.

The seed range is environment-tunable so CI can shard the search space:
``CHAOS_SEED_BASE`` (default 0) and ``CHAOS_SEED_COUNT`` (default 50).
"""

import os
import random

import pytest

from repro.cluster import MppCluster, TxnMode, in_doubt_count
from repro.cluster.ha import HaManager
from repro.common.errors import TransactionError
from repro.faults import CoordinatorCrash, FaultInjector
from repro.faults.chaos import FAULT_MENU, arm_random_faults, recover_cluster
from repro.storage import Column, DataType, TableSchema

NUM_DNS = 3
KEYS = list(range(8))
ROUNDS = 3
TXNS_PER_ROUND = 6

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEED_COUNT = int(os.environ.get("CHAOS_SEED_COUNT", "50"))


def build(seed):
    cluster = MppCluster(num_dns=NUM_DNS, mode=TxnMode.GTM_LITE)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    HaManager(cluster)
    injector = FaultInjector(seed=seed).bind(cluster)
    session = cluster.session()
    init = session.begin(multi_shard=True)
    for k in KEYS:
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return cluster, injector, session


def chaos_round(cluster, injector, session, rng, expected, marker):
    """One round: arm a random schedule, push transactions through it.

    Returns the next unused marker value.  ``expected`` is the oracle,
    updated only when the GTM recorded (or a local node acknowledged) the
    commit — exactly the writes the cluster has promised to keep.
    """
    arm_random_faults(injector, rng, num_dns=NUM_DNS)
    for t in range(TXNS_PER_ROUND):
        marker += 1
        if t % 3 == 2:
            # A single-shard transaction: exercises the local-commit
            # replication path (and its partition/lag faults).
            k = rng.choice(KEYS)
            txn = session.begin()
            try:
                txn.update("t", k, {"v": marker})
                txn.commit()
                expected[k] = marker
            except TransactionError:
                txn.abort()
            continue
        keys = rng.sample(KEYS, 2)
        txn = session.begin(multi_shard=True)
        try:
            for k in keys:
                txn.update("t", k, {"v": marker})
            txn.commit()
        except CoordinatorCrash:
            # The coordinator died mid-commit; whatever it left behind is
            # recovery's problem.  The GTM commit log still decides below.
            pass
        except TransactionError:
            txn.abort()
        if cluster.gtm.is_committed(txn.gxid):
            # Invariant 1's oracle: GTM-committed means durable, even when
            # commit() raised (crash after the decision → rolled forward).
            for k in keys:
                expected[k] = marker
    return marker


def final_state(cluster, session):
    reader = session.begin(multi_shard=True)
    state = {k: reader.read("t", k)["v"] for k in KEYS}
    reader.commit()
    return state


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + SEED_COUNT))
def test_chaos_schedule_preserves_invariants(seed):
    cluster, injector, session = build(seed)
    rng = random.Random(seed ^ 0x5EED)
    expected = {k: 0 for k in KEYS}
    marker = 0
    for _ in range(ROUNDS):
        marker = chaos_round(cluster, injector, session, rng, expected, marker)
        recover_cluster(cluster)
        # Invariant 2: recovery leaves nothing in doubt.
        assert in_doubt_count(cluster) == 0
    # Invariants 1 and 3: the surviving state is exactly the oracle — no
    # acknowledged write lost, no partially-applied multi-shard write.
    assert final_state(cluster, session) == expected
    # Telemetry contract: one deduplicated failure alert per fault site.
    sites = {(f.failpoint, f.target) for f in injector.history}
    fault_alerts = [a for a in cluster.obs.alerts.alerts()
                    if a.source == "faults"]
    for failpoint, target in sites:
        assert any(f"at {failpoint} on {target}" in a.message
                   for a in fault_alerts), (failpoint, target)
    assert len(fault_alerts) <= len(injector.history)
    assert sum(a.count for a in fault_alerts) == len(injector.history)


@pytest.mark.parametrize("failpoint,action,node_scoped", FAULT_MENU)
def test_every_menu_entry_survives_deterministically(failpoint, action,
                                                     node_scoped):
    """Each (failpoint, action) pair, alone, preserves the invariants."""
    cluster, injector, session = build(seed=99)
    match = {"dn": 0} if node_scoped else None
    injector.arm(failpoint, action, times=1, match=match)
    expected = {k: 0 for k in KEYS}
    for marker, keys in enumerate([(0, 1), (2, 3), (4, 5)], start=1):
        txn = session.begin(multi_shard=True)
        try:
            for k in keys:
                txn.update("t", k, {"v": marker})
            txn.commit()
        except CoordinatorCrash:
            pass
        except TransactionError:
            txn.abort()
        if cluster.gtm.is_committed(txn.gxid):
            for k in keys:
                expected[k] = marker
    recover_cluster(cluster)
    assert in_doubt_count(cluster) == 0
    assert final_state(cluster, session) == expected
