"""Chaos property suite: seeded fault schedules against geo epoch commit.

Each seed drives a contended multi-region workload while arming a random
schedule from ``GEO_FAULT_MENU`` (ship drops/timeouts/delays, a region
coordinator crash, certify/apply stalls) and, on some seeds, cutting a
random WAN link.  After ``recover_geo`` the invariants of epoch-based
multi-master commit must hold:

1. **No divergence** — every certified epoch produced the same verdict
   digest in every region, and no region's frontier stopped short of the
   last epoch that carried real transactions (regions may run ahead
   through trailing *empty* epochs; that is progress, not divergence).
2. **Nothing left in limbo** — every submitted transaction's handle
   resolved to committed or aborted; recovery re-ships whatever the faults
   swallowed.
3. **Acks tell the truth** — re-running the pure certifier over the sealed
   epoch batches reproduces exactly the set of acknowledged commits, and
   replaying the committed writes in certification order reproduces every
   hosting region's stored row, key for key (no lost acked write, no
   resurrected aborted write).
4. **Replica agreement** — all hosting regions of a key store the same
   row; non-hosting regions store nothing.

Seed range is environment-tunable so CI can shard the search space:
``CHAOS_SEED_BASE`` (default 0) and ``CHAOS_SEED_COUNT`` (default 25).
"""

import os

import pytest

from repro.common.rng import make_rng
from repro.faults import FaultInjector
from repro.faults.chaos import (
    GEO_FAULT_MENU,
    arm_random_geo_faults,
    recover_geo,
)
from repro.geo import (
    COMMIT,
    GeoCluster,
    GeoConfig,
    certification_order,
    certify_epoch,
)
from repro.storage import Column, DataType, TableSchema

NUM_REGIONS = 3
KEYS = list(range(10))

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEED_COUNT = int(os.environ.get("CHAOS_SEED_COUNT", "25"))


def build(seed):
    rng = make_rng(0x6E0 + seed)
    rf = rng.choice([None, 2, 2])           # bias toward partial replication
    geo = GeoCluster(GeoConfig(num_regions=NUM_REGIONS, dns_per_region=1,
                               replication_factor=rf))
    geo.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    injector = FaultInjector(seed=seed).bind(geo)
    seeder = geo.session(0)
    for k in KEYS:
        seeder.run_transaction(lambda txn, k=k: txn.insert(
            "t", {"k": k, "v": 0}))
    geo.drain()
    return geo, injector, rng


def run_workload(geo, injector, rng):
    """Contended updates from every region with faults landing mid-epoch."""
    sessions = [geo.session(r) for r in range(NUM_REGIONS)]
    handles = []
    for round_no in range(4):
        if round_no == 1:
            arm_random_geo_faults(injector, rng, NUM_REGIONS)
        if round_no == 2 and rng.random() < 0.5:
            a = rng.randrange(NUM_REGIONS)
            b = (a + 1 + rng.randrange(NUM_REGIONS - 1)) % NUM_REGIONS
            geo.partition(a, b, bidirectional=rng.random() < 0.5)
        for region in range(NUM_REGIONS):
            for _ in range(3):
                key = rng.choice(KEYS)

                def bump(txn, k=key):
                    row = txn.read("t", k)
                    txn.update("t", k, {"v": row["v"] + 1})

                handles.append(sessions[region].run_transaction(bump))
        geo.step_to(geo._now_us + rng.choice([5_000.0, 20_000.0, 70_000.0]))
    geo.drain()
    return handles


def oracle_replay(geo, through_epoch):
    """Re-certify every sealed epoch with the pure function and replay the
    committed writes; returns (expected row state, expected verdicts)."""
    state = {}
    verdicts_by_txn = {}
    for epoch in range(through_epoch + 1):
        batches = [geo.epochs[r].sealed[epoch] for r in range(NUM_REGIONS)]
        verdicts = dict(certify_epoch(batches))
        verdicts_by_txn.update(verdicts)
        for record in certification_order(batches):
            if verdicts[record.txn_id] != COMMIT:
                continue
            for op in record.ops:
                if op.kind == "insert":
                    state[(op.table, op.key)] = dict(op.values)
                elif op.kind == "update":
                    state[(op.table, op.key)].update(op.values)
                elif op.kind == "delete":
                    state.pop((op.table, op.key), None)
    return state, verdicts_by_txn


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + SEED_COUNT))
def test_geo_survives_chaos(seed):
    geo, injector, rng = build(seed)
    handles = run_workload(geo, injector, rng)
    recover_geo(geo)

    # 1. no divergence: identical digests everywhere, and every region
    # certified past the last epoch holding real transactions
    geo.assert_converged()
    frontier = min(geo.certified_epoch(r) for r in range(NUM_REGIONS))
    last_real = max(
        (epoch for r in range(NUM_REGIONS)
         for epoch, batch in geo.epochs[r].sealed.items() if batch.records),
        default=-1)
    assert frontier >= last_real, \
        f"a region stalled at {frontier}, behind real epoch {last_real}"

    # 2. nothing in limbo
    assert all(h.status != "pending" for h in handles), \
        "recovery left transactions unresolved"

    # 3. acknowledged outcomes match an independent replay of the sealed log
    state, verdicts = oracle_replay(geo, frontier)
    for handle in handles:
        if handle.status == "committed":
            assert verdicts.get(handle.txn_id) == COMMIT, \
                f"acked commit {handle.txn_id} not in replayed commits"
        elif handle.txn_id in verdicts:
            assert verdicts[handle.txn_id] != COMMIT, \
                f"acked abort {handle.txn_id} committed in replay"

    # 4. every hosting region stores exactly the replayed row
    for k in KEYS:
        expected = state.get(("t", k))
        rows = {}
        for r in range(NUM_REGIONS):
            reader = geo.regions[r].session().begin(multi_shard=True)
            rows[r] = reader.read("t", k)
            reader.commit()
        for r in range(NUM_REGIONS):
            if geo.shard_map.hosts_value(r, k):
                assert rows[r] == expected, \
                    f"region {r} key {k}: {rows[r]} != oracle {expected}"
            else:
                assert rows[r] is None, \
                    f"non-hosting region {r} stored key {k}"
