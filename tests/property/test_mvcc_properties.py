"""Property-based tests: MVCC heap invariants under random histories."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import (
    DuplicateKeyError,
    SerializationConflict,
    StorageError,
)
from repro.storage.heap import MvccHeap
from repro.txn.manager import LocalTransactionManager

# One history step: (op, key, value) applied by a fresh transaction.
ops = st.sampled_from(["insert", "update", "delete", "noop_abort"])
keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=0, max_value=100)
steps = st.lists(st.tuples(ops, keys, values), min_size=1, max_size=40)


def run_history(history):
    """Apply a history of single-op transactions; return heap, ltm, oracle.

    The oracle is a plain dict updated only when the matching transaction
    commits — serial execution semantics.
    """
    ltm = LocalTransactionManager("dn")
    heap = MvccHeap("t")
    oracle = {}
    for op, key, value in history:
        xid = ltm.begin()
        snapshot = ltm.local_snapshot()
        try:
            if op == "insert":
                heap.insert(key, {"v": value}, xid, snapshot, ltm.clog)
                oracle[key] = value
            elif op == "update":
                heap.update(key, {"v": value}, xid, snapshot, ltm.clog)
                oracle[key] = value
            elif op == "delete":
                heap.delete(key, xid, snapshot, ltm.clog)
                oracle.pop(key, None)
            else:
                raise StorageError("abort me")
            ltm.record_write(xid, "t", key)
            ltm.commit(xid)
        except (DuplicateKeyError, StorageError, SerializationConflict):
            heap.abort_key(key, xid)
            ltm.abort(xid)
    return heap, ltm, oracle


class TestSerialHistoryEquivalence:
    @given(steps)
    @settings(max_examples=150, deadline=None)
    def test_visible_state_matches_serial_oracle(self, history):
        heap, ltm, oracle = run_history(history)
        snapshot = ltm.local_snapshot()
        visible = {k: row["v"] for k, row in heap.scan(snapshot, ltm.clog)}
        assert visible == oracle

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_vacuum_preserves_visible_state(self, history):
        heap, ltm, oracle = run_history(history)
        snapshot = ltm.local_snapshot()
        heap.vacuum(snapshot, ltm.clog)
        visible = {k: row["v"] for k, row in heap.scan(snapshot, ltm.clog)}
        assert visible == oracle

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_old_snapshot_is_frozen(self, history):
        """A snapshot taken mid-history never changes its view afterwards."""
        if len(history) < 2:
            return
        half = len(history) // 2
        ltm = LocalTransactionManager("dn")
        heap = MvccHeap("t")
        run = []
        frozen_view = None
        frozen_snapshot = None
        for i, (op, key, value) in enumerate(history):
            if i == half:
                frozen_snapshot = ltm.local_snapshot()
                frozen_view = {k: r["v"]
                               for k, r in heap.scan(frozen_snapshot, ltm.clog)}
            xid = ltm.begin()
            snapshot = ltm.local_snapshot()
            try:
                if op == "insert":
                    heap.insert(key, {"v": value}, xid, snapshot, ltm.clog)
                elif op == "update":
                    heap.update(key, {"v": value}, xid, snapshot, ltm.clog)
                elif op == "delete":
                    heap.delete(key, xid, snapshot, ltm.clog)
                else:
                    raise StorageError("abort")
                ltm.record_write(xid, "t", key)
                ltm.commit(xid)
            except (DuplicateKeyError, StorageError, SerializationConflict):
                heap.abort_key(key, xid)
                ltm.abort(xid)
        if frozen_snapshot is not None:
            now_view = {k: r["v"]
                        for k, r in heap.scan(frozen_snapshot, ltm.clog)}
            assert now_view == frozen_view


class TestVersionChainInvariants:
    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_at_most_one_visible_version_per_key(self, history):
        heap, ltm, _ = run_history(history)
        snapshot = ltm.local_snapshot()
        for key in range(6):
            chain = heap.version_chain(key)
            visible = [
                v for v in chain
                if snapshot.xid_visible(v.xmin, ltm.clog)
                and not (v.xmax and snapshot.xid_visible(v.xmax, ltm.clog))
            ]
            assert len(visible) <= 1

    @given(steps)
    @settings(max_examples=80, deadline=None)
    def test_no_aborted_versions_linger(self, history):
        heap, ltm, _ = run_history(history)
        for key in range(6):
            for version in heap.version_chain(key):
                assert not ltm.clog.is_aborted(version.xmin)
