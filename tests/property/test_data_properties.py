"""Property-based tests: compression, GMDB conversion, collab convergence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform
from repro.gmdb.delta import apply_delta, diff
from repro.gmdb.schema import SchemaRegistry
from repro.storage import compression
from repro.workloads.mme import MME_VERSIONS, mme_schema


# -- compression -------------------------------------------------------------

mixed_values = st.lists(
    st.one_of(st.integers(-10**6, 10**6), st.text(max_size=8), st.none(),
              st.booleans()),
    max_size=200,
)
int_values = st.lists(st.integers(-10**9, 10**9), max_size=200)


class TestCompressionRoundTrip:
    @given(mixed_values)
    @settings(max_examples=200, deadline=None)
    def test_best_codec_round_trips(self, values):
        name, payload = compression.best_codec(values)
        assert compression.decode(name, payload) == values

    @given(int_values)
    @settings(max_examples=200, deadline=None)
    def test_delta_codec_round_trips(self, values):
        base, deltas = compression.DeltaCodec.encode(values)
        assert compression.DeltaCodec.decode(base, deltas) == values

    @given(mixed_values)
    @settings(max_examples=100, deadline=None)
    def test_rle_round_trips(self, values):
        runs = compression.RunLengthCodec.encode(values)
        assert compression.RunLengthCodec.decode(runs) == values


# -- GMDB schema conversion --------------------------------------------------------

def registry():
    reg = SchemaRegistry("mme", allow_multi_step=True)
    for version in MME_VERSIONS:
        reg.register(version, mme_schema(version))
    return reg


session_objects = st.builds(
    lambda ta, enb, seen, state: mme_schema(3).new_object(
        imsi="460000100000001", guti="g", state=state, tracking_area=ta,
        enb_id=enb, auth_vector="a", last_seen_us=seen),
    ta=st.integers(0, 10**6), enb=st.integers(0, 10**6),
    seen=st.integers(0, 10**12),
    state=st.sampled_from(["REGISTERED", "IDLE", "CONNECTED"]),
)


class TestSchemaConversionProperties:
    @given(obj=session_objects,
           target=st.sampled_from(MME_VERSIONS))
    @settings(max_examples=100, deadline=None)
    def test_upgraded_objects_always_validate(self, obj, target):
        reg = registry()
        converted, _ = reg.convert(obj, 3, target)
        mme_schema(target).validate(converted)

    @given(obj=session_objects, target=st.sampled_from(MME_VERSIONS))
    @settings(max_examples=100, deadline=None)
    def test_up_down_round_trip_is_identity(self, obj, target):
        reg = registry()
        up, _ = reg.convert(obj, 3, target)
        down, _ = reg.convert(up, target, 3)
        assert down == obj


# -- GMDB deltas -------------------------------------------------------------------

scalar = st.one_of(st.integers(-100, 100), st.text(max_size=5))
record = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), scalar, min_size=3, max_size=3)
tree_object = st.fixed_dictionaries({
    "x": scalar,
    "y": scalar,
    "items": st.lists(record, max_size=4),
})


class TestDeltaProperties:
    @given(old=tree_object, new=tree_object)
    @settings(max_examples=200, deadline=None)
    def test_diff_apply_reproduces_target(self, old, new):
        assert apply_delta(old, diff(old, new)) == new

    @given(obj=tree_object)
    @settings(max_examples=100, deadline=None)
    def test_self_diff_is_empty(self, obj):
        assert diff(obj, obj).empty


# -- collab convergence ----------------------------------------------------------------

writes = st.lists(
    st.tuples(st.integers(0, 3),                 # which device writes
              st.sampled_from(["a", "b", "c"]),  # key
              st.integers(0, 99)),               # value
    min_size=1, max_size=30,
)


class TestEventualConsistency:
    @given(history=writes, seed=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_all_replicas_converge(self, history, seed):
        platform = CollabPlatform()
        nodes = [
            platform.add_node(f"d{i}", NodeKind.DEVICE,
                              skew_us=(i - 2) * 100_000 * (seed + 1))
            for i in range(4)
        ]
        # ring topology: multi-hop propagation required
        for i in range(4):
            platform.connect_nearby(f"d{i}", f"d{(i + 1) % 4}")
        for device, key, value in history:
            nodes[device].put(key, value)
        platform.converge()
        assert platform.is_consistent()

    @given(history=writes)
    @settings(max_examples=40, deadline=None)
    def test_no_update_lost_and_none_duplicated(self, history):
        platform = CollabPlatform()
        nodes = [platform.add_node(f"d{i}", NodeKind.DEVICE) for i in range(3)]
        platform.connect_nearby("d0", "d1")
        platform.connect_nearby("d1", "d2")
        for device, key, value in history:
            nodes[device % 3].put(key, value)
        platform.converge()
        total_written = len(history)
        for node in nodes:
            # every replica's log holds exactly all updates, once
            assert node.store.log_size == total_written
        assert platform.stats.duplicates_avoided == 0
