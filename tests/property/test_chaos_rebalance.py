"""Chaos property suite: seeded fault schedules against online resharding.

Each seed arms a random schedule from ``REBALANCE_FAULT_MENU`` (coordinator
death and RPC faults at the ``rebalance.copy`` / ``rebalance.flip``
failpoints, plus 2PC faults that land inside the double-write window),
drives a DN expansion with writes flowing through the catch-up windows,
recovers, and asserts the resharding invariants:

1. **No row lost, no row duplicated** — the surviving table state equals
   the oracle built from acknowledged commits, and every key is visible on
   exactly one active DN.
2. **Slot ownership is never ambiguous** — after recovery no slot is
   mid-move, every owner is an active member, and every scan exclusion is
   cleared.
3. **Recovery settles every move** — a coordinator killed mid-copy rolls
   the move back; killed pre-flip rolls it forward; nothing stays pending.

Seed range is environment-tunable so CI can shard the search space:
``CHAOS_SEED_BASE`` (default 0) and ``CHAOS_SEED_COUNT`` (default 25).
"""

import os
import random

import pytest

from repro.cluster import MppCluster, TxnMode, in_doubt_count
from repro.cluster.ha import HaManager
from repro.cluster.rebalance import RebalanceCoordinator
from repro.common.errors import TransactionError
from repro.faults import CoordinatorCrash, FaultInjector, InjectedTimeout
from repro.faults.chaos import (
    REBALANCE_FAULT_MENU,
    arm_random_rebalance_faults,
    recover_cluster,
)
from repro.storage import Column, DataType, TableSchema

NUM_DNS = 3
#: Spread over the whole 192-slot space so the moved slots carry rows.
KEYS = [i * 13 for i in range(24)]

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
SEED_COUNT = int(os.environ.get("CHAOS_SEED_COUNT", "25"))


def build(seed):
    cluster = MppCluster(num_dns=NUM_DNS, mode=TxnMode.GTM_LITE)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    HaManager(cluster)
    coordinator = RebalanceCoordinator(cluster)
    injector = FaultInjector(seed=seed).bind(cluster)
    session = cluster.session()
    init = session.begin(multi_shard=True)
    for k in KEYS:
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return cluster, coordinator, injector, session


def make_catchup(cluster, session, rng, expected, counter):
    """Catch-up workload: multi-shard updates inside the double-write
    window, oracle-tracked exactly like the 2PC chaos suite."""

    def callback():
        for _ in range(3):
            counter[0] += 1
            marker = counter[0]
            keys = rng.sample(KEYS, 2)
            txn = session.begin(multi_shard=True)
            try:
                for k in keys:
                    txn.update("t", k, {"v": marker})
                txn.commit()
            except CoordinatorCrash:
                pass            # the GTM commit log decides below
            except TransactionError:
                txn.abort()
            if cluster.gtm.is_committed(txn.gxid):
                for k in keys:
                    expected[k] = marker
    return callback


def assert_invariants(cluster, expected):
    shard_map = cluster.catalog.shard_map
    # Invariant 2: unambiguous, settled ownership.
    assert not shard_map.has_moves()
    members = set(shard_map.members())
    for slot in range(shard_map.num_slots):
        assert shard_map.owner_of_slot(slot) in members
    for dn_index in cluster.dn_indices():
        assert shard_map.excluded_slots(dn_index) == frozenset()
    # Invariant 1a: every key on exactly one active DN.
    locations = {}
    for dn_index in cluster.dn_indices():
        dn = cluster.dns[dn_index]
        for key, values in dn.scan("t", dn.local_snapshot()):
            locations.setdefault(key, []).append(dn_index)
            assert shard_map.owner_of_value(key) == dn_index, (
                f"key {key} found on dn{dn_index}, owner is "
                f"dn{shard_map.owner_of_value(key)}")
    assert all(len(spots) == 1 for spots in locations.values()), {
        k: s for k, s in locations.items() if len(s) != 1}
    # Invariant 1b: the surviving state is exactly the oracle.
    session = cluster.session()
    reader = session.begin(multi_shard=True)
    state = {k: reader.read("t", k)["v"] for k in KEYS}
    reader.commit()
    assert state == expected


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + SEED_COUNT))
def test_chaos_expansion_preserves_rows_and_ownership(seed):
    cluster, coordinator, injector, session = build(seed)
    rng = random.Random(seed ^ 0xC0FFEE)
    expected = {k: 0 for k in KEYS}
    counter = [0]
    arm_random_rebalance_faults(injector, rng, num_dns=NUM_DNS)
    callback = make_catchup(cluster, session, rng, expected, counter)
    try:
        coordinator.add_dn(on_catchup=callback)
    except (CoordinatorCrash, InjectedTimeout, TransactionError):
        # The coordinator died (or lost an RPC) mid-move; whatever state it
        # left behind is recovery's problem.
        pass
    recover_cluster(cluster)
    assert in_doubt_count(cluster) == 0
    assert coordinator.active_moves() == []
    assert_invariants(cluster, expected)
    # The cluster still takes writes after recovery, wherever slots ended up.
    txn = session.begin(multi_shard=True)
    for k in KEYS[:4]:
        txn.update("t", k, {"v": -1})
    txn.commit()
    for k in KEYS[:4]:
        expected[k] = -1
    assert_invariants(cluster, expected)


@pytest.mark.parametrize("failpoint,action,node_scoped", REBALANCE_FAULT_MENU)
def test_every_menu_entry_recovers_deterministically(failpoint, action,
                                                     node_scoped):
    """Each (failpoint, action) pair, alone, preserves the invariants."""
    cluster, coordinator, injector, session = build(seed=7)
    match = {"dn": 0} if node_scoped else None
    injector.arm(failpoint, action, times=1, match=match)
    rng = random.Random(7)
    expected = {k: 0 for k in KEYS}
    callback = make_catchup(cluster, session, rng, expected, [0])
    try:
        coordinator.add_dn(on_catchup=callback)
    except (CoordinatorCrash, InjectedTimeout, TransactionError):
        pass
    recover_cluster(cluster)
    assert in_doubt_count(cluster) == 0
    assert coordinator.active_moves() == []
    assert_invariants(cluster, expected)
