"""Property-based tests: GTM-lite preserves read consistency.

Random mixes of single- and multi-shard transactions run against the
cluster; every committed state must equal a serial oracle, and multi-shard
readers must never observe a torn multi-shard write — including while
another writer is parked mid-commit (inside the Anomaly-1 window).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import MppCluster, TxnMode
from repro.common.errors import SerializationConflict
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value

NUM_DNS = 3
KEYS = list(range(6))   # keys 0..5 spread over 3 DNs by modulo


def fresh_cluster(mode):
    cluster = MppCluster(num_dns=NUM_DNS, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    session = cluster.session()
    init = session.begin(multi_shard=True)
    for k in KEYS:
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return cluster, session


# One step: a transaction writing value v to one or two keys.
write_steps = st.lists(
    st.tuples(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=2, unique=True),
        st.integers(min_value=1, max_value=99),
    ),
    min_size=1, max_size=25,
)


def spans_shards(keys):
    return len({shard_of_value(k, NUM_DNS) for k in keys}) > 1


@pytest.mark.parametrize("mode", [TxnMode.GTM_LITE, TxnMode.CLASSICAL])
class TestCommittedStateMatchesOracle:
    @given(history=write_steps)
    @settings(max_examples=40, deadline=None)
    def test_final_state(self, mode, history):
        cluster, session = fresh_cluster(mode)
        oracle = {k: 0 for k in KEYS}
        for keys, value in history:
            txn = session.begin(multi_shard=spans_shards(keys))
            try:
                for k in keys:
                    txn.update("t", k, {"v": value})
                txn.commit()
                for k in keys:
                    oracle[k] = value
            except SerializationConflict:
                txn.abort()
        reader = session.begin(multi_shard=True)
        state = {k: reader.read("t", k)["v"] for k in KEYS}
        reader.commit()
        assert state == oracle


class TestNoTornReads:
    @given(
        history=write_steps,
        park=st.integers(min_value=0, max_value=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_shard_writes_are_atomic_to_readers(self, history, park):
        """Park one multi-shard commit after its GTM commit with one DN
        unconfirmed; snapshot readers must still see all-or-nothing."""
        cluster, session = fresh_cluster(TxnMode.GTM_LITE)
        marker = 1000   # the distinguishing value of the parked writer
        parked = None
        overwritten = set()   # parked keys later overwritten by a commit
        for i, (keys, value) in enumerate(history):
            multi = spans_shards(keys)
            txn = session.begin(multi_shard=multi)
            try:
                for k in keys:
                    txn.update("t", k, {"v": marker if (i == park and multi)
                                        else value})
            except SerializationConflict:
                txn.abort()
                continue
            if i == park and multi and parked is None:
                steps = txn.commit_stepwise()
                steps.prepare_all()
                steps.commit_at_gtm()
                nodes = steps.pending_nodes
                if len(nodes) > 1:
                    steps.confirm_at(nodes[0])   # leave the rest unconfirmed
                parked = (steps, keys)
                continue
            try:
                txn.commit()
                if parked is not None:
                    overwritten.update(set(keys) & set(parked[1]))
            except SerializationConflict:
                txn.abort()
        reader = session.begin(multi_shard=True)
        state = {k: reader.read("t", k)["v"] for k in KEYS}
        reader.commit()
        if parked is not None:
            # The parked writer is committed in the reader's global snapshot,
            # so each of its keys must show the marker — unless a later
            # committed transaction overwrote that key.  Anything else is a
            # torn (non-atomic) view of the multi-shard write.
            _, keys = parked
            for k in keys:
                assert state[k] == marker or k in overwritten, \
                    f"torn write visible: {state}, overwritten={overwritten}"
            parked[0].finish()
