"""Engine-level HTAP: SQL scans served from frozen chunks, sys views,
freshness under sustained writes, autonomous AIMD interval control.

``test_freshness_stays_bounded_under_sustained_writes`` doubles as the CI
freshness-regression gate: a ticking daemon must keep commit-to-column
visibility lag under the SLA while OLTP writes keep arriving.
"""

from repro.autonomous.adbms import AutonomousManager
from repro.cluster.mpp import MppCluster
from repro.htap.manager import HtapConfig
from repro.sql.engine import SqlEngine


def _engine(htap_enabled=True, num_dns=2, htap_config=None):
    cluster = MppCluster(num_dns=num_dns, htap_enabled=htap_enabled,
                         htap_config=htap_config)
    engine = SqlEngine(cluster)
    engine.execute("create table t (id int primary key, v int) "
                   "with (orientation = column)")
    engine.execute(
        "insert into t values (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)")
    return cluster, engine


def _counter(cluster, name):
    return cluster.obs.metrics.counter(name).value


class TestServedScans:
    def test_repeated_scans_stop_cold_rebuilding(self):
        cluster, engine = _engine()
        cluster.htap.tick()
        assert _counter(cluster, "htap.cold_rebuilds") == 0
        frozen_before = _counter(cluster, "htap.scans_frozen")
        for _ in range(4):
            result = engine.execute("select sum(v) from t")
            assert result.rows == [(150,)]
        assert _counter(cluster, "htap.cold_rebuilds") == 0
        assert _counter(cluster, "htap.scans_frozen") > frozen_before

    def test_scan_after_write_composes_not_rebuilds(self):
        cluster, engine = _engine()
        cluster.htap.tick()
        engine.execute("insert into t values (6, 60)")
        result = engine.execute("select sum(v) from t")
        assert result.rows == [(210,)]
        assert _counter(cluster, "htap.scans_composed") > 0
        assert _counter(cluster, "htap.cold_rebuilds") == 0

    def test_results_identical_with_htap_disabled(self):
        for flag in (True, False):
            cluster, engine = _engine(htap_enabled=flag)
            if cluster.htap is not None:
                cluster.htap.tick()
            engine.execute("update t set v = 99 where id = 2")
            result = engine.execute("select id, v from t order by id")
            assert result.rows == [
                (1, 10), (2, 99), (3, 30), (4, 40), (5, 50)]


class TestSysViews:
    def test_htap_tables_view_reports_per_dn_state(self):
        cluster, engine = _engine()
        cluster.htap.tick()
        rows = engine.execute(
            "select dn, table_name, frozen_rows, delta_rows "
            "from sys.htap_tables order by dn").rows
        assert [r[1] for r in rows] == ["t"] * cluster.num_dns
        assert sum(r[2] for r in rows) == 5     # frozen rows cover the table
        assert all(r[3] == 0 for r in rows)     # delta fully drained

    def test_htap_merges_view_reports_history(self):
        cluster, engine = _engine()
        cluster.htap.tick()
        rows = engine.execute(
            "select table_name, delta_rows, bytes from sys.htap_merges").rows
        assert rows                                # at least one merge event
        assert all(r[0] == "t" for r in rows)
        assert sum(r[1] for r in rows) == 5
        assert all(r[2] > 0 for r in rows)

    def test_views_empty_when_disabled(self):
        cluster, engine = _engine(htap_enabled=False)
        assert engine.execute("select * from sys.htap_tables").rows == []
        assert engine.execute("select * from sys.htap_merges").rows == []


class TestFreshness:
    def test_freshness_stays_bounded_under_sustained_writes(self):
        config = HtapConfig(merge_interval_us=20_000.0,
                            freshness_sla_us=100_000.0)
        cluster, engine = _engine(htap_config=config)
        clock = cluster.obs.clock
        worst = 0.0
        for i in range(40):
            engine.execute(f"insert into t values ({100 + i}, {i})")
            clock.advance(10_000.0)
            cluster.htap.maybe_tick(clock.now_us)
            worst = max(worst, cluster.htap.max_freshness_lag_us(clock.now_us))
        # The regression gate: a paced daemon keeps lag under the SLA.
        assert worst <= config.freshness_sla_us
        assert cluster.htap.delta_rows() == 0 or \
            cluster.htap.max_freshness_lag_us(clock.now_us) <= config.freshness_sla_us

    def test_stalled_daemon_lag_is_visible(self):
        cluster, engine = _engine()
        clock = cluster.obs.clock
        engine.execute("insert into t values (100, 1)")
        clock.advance(500_000.0)
        lag = cluster.htap.max_freshness_lag_us(clock.now_us)
        assert lag >= 500_000.0    # no tick ran; the commit is still waiting


class TestAutonomousControl:
    def test_tick_drives_merges_and_relaxes_interval(self):
        cluster, engine = _engine()
        manager = AutonomousManager(cluster)
        clock = cluster.obs.clock
        engine.execute("insert into t values (100, 1)")
        clock.advance(100_000.0)
        manager.collect(clock.now_us)
        report = manager.tick(clock.now_us)
        assert report.htap_merges >= 1
        # Lag is now zero, so AIMD relaxed the interval multiplicatively.
        assert report.htap_interval_us > HtapConfig().merge_interval_us

    def test_sla_breach_tightens_interval_and_alerts(self):
        config = HtapConfig(merge_interval_us=400_000.0,
                            freshness_sla_us=50_000.0)
        cluster, engine = _engine(htap_config=config)
        manager = AutonomousManager(cluster)
        clock = cluster.obs.clock
        cluster.htap.maybe_tick(clock.now_us)   # start the pacing window
        engine.execute("insert into t values (100, 1)")
        clock.advance(200_000.0)                # < interval: no merge yet
        report = manager.tick(clock.now_us)
        assert report.htap_merges == 0
        assert report.htap_interval_us == 200_000.0    # halved
        assert "tighten htap merge interval" in report.healing_actions
        alerts = [a for a in cluster.obs.alerts.alerts()
                  if a.source == "htap"]
        assert len(alerts) == 1

    def test_collect_records_htap_series(self):
        cluster, engine = _engine()
        manager = AutonomousManager(cluster)
        engine.execute("insert into t values (100, 1)")
        manager.collect(0.0)
        # The 5 seed rows plus this insert all sit unmerged in the delta.
        assert manager.info.latest("htap.delta_rows") == 6.0
        assert manager.info.latest("htap.freshness_lag_us") is not None
