"""Unit coverage for repro.htap: stamps, delta capture, merge, compose."""

import pytest

from repro.cluster.ha import HaManager
from repro.cluster.mpp import MppCluster
from repro.storage.colstore import ColumnStore
from repro.storage.heap import MvccHeap
from repro.storage.table import Column, Orientation, TableSchema
from repro.storage.types import DataType
from repro.txn.snapshot import Snapshot
from repro.txn.status import StatusLog, TxnStatus


def column_schema(name="c", extra=()):
    columns = [Column("k", DataType.INT), Column("v", DataType.INT)]
    columns.extend(extra)
    return TableSchema(name, columns, "k", orientation=Orientation.COLUMN)


def build(num_dns=2, **kwargs):
    cluster = MppCluster(num_dns=num_dns, **kwargs)
    cluster.create_table(column_schema())
    return cluster, cluster.session()


def heap_walk_rows(dn, table, snapshot, xid):
    """The legacy cold rebuild, bypassing HTAP — the byte-identity oracle."""
    store = ColumnStore(dn._schemas[table], compress=False)
    store.append_rows(values for _key, values
                      in dn.heap(table).scan(snapshot, dn.ltm.clog, xid))
    store.flush()
    return store


def assert_serves_identically(cluster, table="c"):
    """Every DN's served store must equal the heap walk, row for row."""
    txn = cluster.session().begin(multi_shard=True)
    for dn_index, dn in enumerate(cluster.dns):
        served = txn.shard_column_store(table, dn_index)
        view = txn._local_view[dn_index]
        oracle = heap_walk_rows(dn, table, view, txn._local_xid[dn_index])
        assert list(served.scan_rows()) == list(oracle.scan_rows())
    txn.commit()


class TestArrivalStamps:
    def test_stamps_follow_scan_order(self):
        heap = MvccHeap("t")
        clog = StatusLog()
        snapshot = Snapshot(xmin=100, xmax=100, active=frozenset())
        for xid, key in ((3, "a"), (4, "b"), (5, "c")):
            clog.begin(xid)
            heap.insert(key, {"k": key}, xid, snapshot, clog)
            clog.set(xid, TxnStatus.COMMITTED)
        assert [heap.stamp_of(k) for k in ("a", "b", "c")] == [0, 1, 2]

    def test_committed_delete_keeps_stamp_aborted_insert_frees_it(self):
        heap = MvccHeap("t")
        clog = StatusLog()
        snapshot = Snapshot(xmin=100, xmax=100, active=frozenset())
        clog.begin(3)
        heap.insert("a", {"k": "a"}, 3, snapshot, clog)
        clog.set(3, TxnStatus.COMMITTED)
        clog.begin(4)
        heap.delete("a", 4, snapshot, clog)
        clog.set(4, TxnStatus.COMMITTED)
        # The chain survives a committed delete: same arrival stamp.
        assert heap.stamp_of("a") == 0
        clog.begin(5)
        heap.insert("b", {"k": "b"}, 5, snapshot, clog)
        heap.abort_key("b", 5)
        clog.set(5, TxnStatus.ABORTED)
        # An aborted insert removes the chain; re-inserting gets a new slot.
        clog.begin(6)
        heap.insert("b", {"k": "b"}, 6, snapshot, clog)
        clog.set(6, TxnStatus.COMMITTED)
        assert heap.stamp_of("b") == 2


class TestDeltaCapture:
    def test_commit_feeds_delta_in_commit_order(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 10})
        txn.commit()
        txn = session.begin()
        txn.update("c", 1, {"v": 11})
        txn.insert("c", {"k": 2, "v": 20})
        txn.commit()
        store = cluster.dns[0].htap.tables["c"]
        assert [(e.op, e.key) for e in store.delta.entries] == [
            ("insert", 1), ("update", 1), ("insert", 2)]
        assert [e.seq for e in store.delta.entries] == [0, 1, 2]

    def test_abort_leaves_delta_untouched(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 10})
        txn.abort()
        assert len(cluster.dns[0].htap.tables["c"].delta) == 0

    def test_disabled_cluster_has_no_htap_state(self):
        cluster, session = build(num_dns=1, htap_enabled=False)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 10})
        txn.commit()
        assert cluster.htap is None
        assert cluster.dns[0].htap is None


class TestMerge:
    def test_merge_folds_delta_and_advances_watermark(self):
        cluster, session = build(num_dns=1)
        for k in range(5):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        store = cluster.dns[0].htap.tables["c"]
        assert len(store.delta) == 5
        assert cluster.htap.tick() == 1
        assert len(store.delta) == 0
        assert store.frozen.row_count == 5
        assert store.frozen.merged_seq == 5
        assert list(store.frozen.store.scan_rows()) == [
            {"k": k, "v": k} for k in range(5)]

    def test_incremental_merge_applies_update_and_delete(self):
        cluster, session = build(num_dns=1)
        for k in range(4):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        cluster.htap.tick()
        txn = session.begin()
        txn.update("c", 1, {"v": 100})
        txn.commit()
        txn = session.begin()
        txn.delete("c", 2)
        txn.commit()
        cluster.htap.tick()
        store = cluster.dns[0].htap.tables["c"]
        assert list(store.frozen.store.scan_rows()) == [
            {"k": 0, "v": 0}, {"k": 1, "v": 100}, {"k": 3, "v": 3}]
        assert store.merges == 3   # creation seed + two daemon merges

    def test_reinsert_after_delete_keeps_heap_order(self):
        cluster, session = build(num_dns=1)
        for k in range(3):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        cluster.htap.tick()
        txn = session.begin()
        txn.delete("c", 0)
        txn.commit()
        txn = session.begin()
        txn.insert("c", {"k": 0, "v": 99})
        txn.commit()
        cluster.htap.tick()
        # The chain survived the committed delete, so the re-inserted key
        # keeps its original heap position — and the frozen order shows it.
        store = cluster.dns[0].htap.tables["c"]
        assert list(store.frozen.store.scan_rows()) == [
            {"k": 0, "v": 99}, {"k": 1, "v": 1}, {"k": 2, "v": 2}]
        assert_serves_identically(cluster)

    def test_merge_charges_storage_io(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        cluster.htap.tick()
        stats = cluster.obs.waits.stats("htap_merge")
        assert stats.count == 1
        assert stats.total_us > 0.0
        assert cluster.htap.history[-1].bytes > 0


class TestCompose:
    def test_clean_snapshot_serves_frozen_store_object(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        cluster.htap.tick()
        store = cluster.dns[0].htap.tables["c"]
        reader = session.begin(multi_shard=True)
        served = reader.shard_column_store("c", 0)
        reader.commit()
        assert served is store.frozen.store   # zero rebuild
        assert cluster.obs.metrics.counter("htap.scans_frozen").value == 1

    def test_composed_read_is_byte_identical_to_heap_walk(self):
        cluster, session = build()
        for k in range(10):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        cluster.htap.tick()
        # Unmerged updates, deletes and inserts on top of frozen chunks.
        for k in (1, 5):
            txn = session.begin()
            txn.update("c", k, {"v": k * 100})
            txn.commit()
        txn = session.begin()
        txn.delete("c", 4)
        txn.commit()
        txn = session.begin()
        txn.insert("c", {"k": 42, "v": 4242})
        txn.commit()
        assert_serves_identically(cluster)

    def test_snapshot_isolation_against_later_commits(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        cluster.htap.tick()
        reader = session.begin(multi_shard=True)
        writer = cluster.session().begin(multi_shard=True)
        writer.insert("c", {"k": 2, "v": 2})
        writer.commit()
        # The reader's snapshot predates the commit: the committed delta
        # entry must stay invisible.
        served = reader.shard_column_store("c", 0)
        assert list(served.scan_rows()) == [{"k": 1, "v": 1}]
        reader.commit()
        late = session.begin(multi_shard=True)
        assert list(late.shard_column_store("c", 0).scan_rows()) == [
            {"k": 1, "v": 1}, {"k": 2, "v": 2}]
        late.commit()

    def test_own_writes_fall_back_to_heap_walk(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        cluster.htap.tick()
        writer = session.begin(multi_shard=True)
        writer.insert("c", {"k": 2, "v": 2})
        served = writer.shard_column_store("c", 0)
        # Uncommitted own writes live only in the heap: fallback, and the
        # reader still sees its own write.
        assert list(served.scan_rows()) == [{"k": 1, "v": 1},
                                            {"k": 2, "v": 2}]
        writer.commit()
        assert cluster.obs.metrics.counter("htap.cold_rebuilds").value == 1
        assert (cluster.obs.metrics.counter("htap.fallback.own_writes").value
                == 1)

    def test_snapshot_older_than_watermark_falls_back(self):
        cluster, session = build(num_dns=1)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        reader = session.begin(multi_shard=True)   # snapshot before merge
        writer = cluster.session().begin(multi_shard=True)
        writer.insert("c", {"k": 2, "v": 2})
        writer.commit()
        cluster.htap.tick()          # watermark advances past the reader
        served = reader.shard_column_store("c", 0)
        assert list(served.scan_rows()) == [{"k": 1, "v": 1}]
        reader.commit()
        assert cluster.obs.metrics.counter("htap.cold_rebuilds").value >= 1

    def test_repeat_scans_stop_cold_rebuilding(self):
        cluster, session = build(num_dns=1)
        for k in range(6):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        cluster.htap.tick()
        for _ in range(5):
            reader = session.begin(multi_shard=True)
            reader.shard_column_store("c", 0)
            reader.commit()
        metrics = cluster.obs.metrics
        assert metrics.counter("htap.scans_frozen").value == 5
        assert metrics.counter("htap.cold_rebuilds").value == 0


class TestFailover:
    def test_reseed_after_failover_serves_again(self):
        cluster, session = build(num_dns=2)
        HaManager(cluster)
        for k in range(6):
            txn = session.begin()
            txn.insert("c", {"k": k, "v": k})
            txn.commit()
        cluster.htap.tick()
        cluster.dns[0].crashed = True
        cluster.declare_node_dead(0, reason="test")
        # The replacement node has no HTAP state until the daemon re-seeds.
        assert cluster.dns[0].htap is None
        assert_serves_identically(cluster)   # heap-walk fallback still right
        cluster.htap.tick()
        assert cluster.dns[0].htap is not None
        assert cluster.obs.metrics.counter("htap.reseeds").value >= 1
        assert_serves_identically(cluster)


class TestFreshness:
    def test_lag_tracks_oldest_unmerged_commit(self):
        cluster, session = build(num_dns=1)
        cluster.obs.clock.advance_to(1_000.0)
        txn = session.begin()
        txn.insert("c", {"k": 1, "v": 1})
        txn.commit()
        cluster.obs.clock.advance_to(5_000.0)
        store = cluster.dns[0].htap.tables["c"]
        assert store.freshness_lag_us(5_000.0) == pytest.approx(4_000.0)
        assert cluster.htap.max_freshness_lag_us() == pytest.approx(4_000.0)
        cluster.htap.tick()
        assert store.freshness_lag_us(5_000.0) == 0.0
        assert store.max_lag_us == pytest.approx(4_000.0)
