"""Replay identity: ``htap_enabled=False`` is the seed path, byte for byte.

Mirrors ``TestDisabledParity`` in tests/wlm/test_engine_integration.py: the
same workload runs on an HTAP cluster and a disabled one, and every
query-visible surface — result rows, operator row counts, simulated elapsed
time, wait accounting, the slow-query log — must match exactly.  The only
permitted divergence is the merge daemon's own bookkeeping (``htap.*``
counters, the ``htap_merge`` wait event), which the disabled cluster must
not show a trace of.

The workload deliberately mixes float aggregation (chunk-boundary
sensitive), updates, deletes and post-merge reads so the composed path is
exercised, not just the frozen fast path.
"""

from repro.cluster.mpp import MppCluster
from repro.sql.engine import SqlEngine


WORKLOAD = [
    "select id, v, w from t order by id",
    "select sum(w), avg(w) from t",
    "update t set v = v + 1 where id = 3",
    "select v, count(*) from t where v > 10 group by v",
    "delete from t where id = 5",
    "select sum(v) from t",
    "explain analyze select w from t order by w desc",
]


def _run(htap_enabled):
    cluster = MppCluster(num_dns=2, htap_enabled=htap_enabled)
    engine = SqlEngine(cluster)
    cluster.obs.slowlog.threshold_us = 0.0
    engine.execute("create table t (id int primary key, v int, w double) "
                   "with (orientation = column)")
    engine.execute("insert into t values "
                   "(1, 10, 0.1), (2, 20, 0.2), (3, 30, 0.3), "
                   "(4, 40, 0.4), (5, 50, 0.5), (6, 60, 0.6)")
    results = []
    for i, sql in enumerate(WORKLOAD):
        # Merge mid-workload so later queries read frozen + delta, and the
        # identity claim covers the composed path, not just the heap walk.
        if cluster.htap is not None and i in (1, 4):
            cluster.htap.tick()
        results.append(engine.execute(sql))
    return cluster, results


def _query_waits(cluster):
    """Wait rows excluding the merge daemon's own charge."""
    return [row for row in cluster.obs.waits.rows()
            if row[0] != "htap_merge"]


def _query_metrics(cluster):
    """Metric snapshot excluding the subsystem's own counters."""
    _, flat = cluster.obs.metrics.snapshot()
    return {name: value for name, value in flat.items()
            if not name.startswith(("htap.", "wait.htap_merge"))}


class TestReplayIdentity:
    def test_enabled_matches_disabled_byte_for_byte(self):
        enabled, enabled_results = _run(htap_enabled=True)
        bare, bare_results = _run(htap_enabled=False)
        for served, plain in zip(enabled_results, bare_results):
            assert served.rows == plain.rows
            if served.profile is not None:
                assert (served.profile.rows_table()
                        == plain.profile.rows_table())
                assert (served.profile.elapsed_time_us
                        == plain.profile.elapsed_time_us)
        assert _query_waits(enabled) == _query_waits(bare)
        assert _query_metrics(enabled) == _query_metrics(bare)
        # Everything but the trailing trace_id: the merge daemon's tick
        # traces interleave with query traces in the shared id sequence,
        # so trace ids (and only they) legitimately differ with HTAP on.
        assert ([e.as_row()[:-1] for e in enabled.obs.slowlog.entries()]
                == [e.as_row()[:-1] for e in bare.obs.slowlog.entries()])

    def test_disabled_cluster_has_zero_htap_trace(self):
        bare, _ = _run(htap_enabled=False)
        assert bare.htap is None
        assert all(dn.htap is None for dn in bare.dns)
        _, flat = bare.obs.metrics.snapshot()
        assert not any(name.startswith("htap.") for name in flat)
        assert all(row[0] != "htap_merge" for row in bare.obs.waits.rows())

    def test_enabled_cluster_served_at_least_one_scan(self):
        # Guard the guard: the parity test is vacuous if HTAP never served.
        enabled, _ = _run(htap_enabled=True)
        flat = dict(enabled.obs.metrics.snapshot()[1])
        served = (flat.get("htap.scans_frozen", 0.0)
                  + flat.get("htap.scans_composed", 0.0))
        assert served > 0
        assert flat.get("htap.cold_rebuilds", 0.0) == 0
