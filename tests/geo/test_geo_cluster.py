"""GeoCluster end-to-end: epoch commit, partial replication, 2PC baseline,
region failures, observability wiring, and the AIMD epoch-interval loop."""

import pytest

from repro.autonomous.adbms import AutonomousManager
from repro.common.errors import ConfigError
from repro.faults import FaultInjector
from repro.geo import (
    GEO_TRACE_BASE,
    GeoCluster,
    GeoConfig,
    GeoMode,
    load_tpcc_geo,
    warehouses_homed_at,
)
from repro.sql import SqlEngine
from repro.storage import Column, DataType, TableSchema
from repro.workloads.tpcc_lite import TpccLiteWorkload


def simple_schema():
    return TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k")


def build(num_regions=3, mode=GeoMode.GEOGAUSS, rf=None, **kw):
    geo = GeoCluster(GeoConfig(num_regions=num_regions, dns_per_region=1,
                               mode=mode, replication_factor=rf, **kw))
    geo.create_table(simple_schema())
    return geo


def key_homed_at(geo, region, start=0):
    k = start
    while geo.shard_map.home_region_of_value(k) != region:
        k += 1
    return k


class TestEpochCommit:
    def test_single_txn_commits_in_every_region(self):
        geo = build()
        session = geo.session(0)
        handle = session.run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 10}))
        assert handle.status == "pending"
        geo.drain()
        assert handle.status == "committed"
        assert handle.epoch is not None
        for r in range(3):
            reader = geo.regions[r].session().begin(multi_shard=True)
            assert reader.read("t", 1)["v"] == 10
            reader.commit()

    def test_commit_latency_is_epoch_plus_one_wan_leg(self):
        geo = build()
        cfg = geo.config
        handle = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        # Seal at the first boundary, one one-way WAN hop for the slowest
        # peer batch, then certification — nowhere near a full 2PC's two
        # round trips.
        floor = cfg.epoch_interval_us + cfg.one_way_us
        assert floor <= handle.latency_us < cfg.wan_rtt_us * 2

    def test_cross_region_write_write_conflict_aborts_exactly_one(self):
        geo = build()
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 7, "v": 0}))
        geo.drain()
        h0 = geo.session(0).run_transaction(
            lambda txn: txn.update("t", 7, {"v": 100}))
        h1 = geo.session(1).run_transaction(
            lambda txn: txn.update("t", 7, {"v": 200}))
        geo.drain()
        assert sorted([h0.status, h1.status]) == ["aborted", "committed"]
        winner = 100 if h0.status == "committed" else 200
        for r in range(3):
            reader = geo.regions[r].session().begin(multi_shard=True)
            assert reader.read("t", 7)["v"] == winner
            reader.commit()
        assert (geo.handle(h1.txn_id).reason
                if h1.status == "aborted" else h0.reason) \
            == "write-write conflict at certification"

    def test_sequential_session_writes_chain_and_all_commit(self):
        geo = build()
        session = geo.session(0)
        session.run_transaction(lambda txn: txn.insert("t", {"k": 3, "v": 1}))
        handles = []
        for _ in range(4):
            def bump(txn):
                row = txn.read("t", 3)
                txn.update("t", 3, {"v": row["v"] + 1})
            handles.append(session.run_transaction(bump))
        geo.drain()
        assert all(h.status == "committed" for h in handles)
        reader = geo.regions[0].session().begin(multi_shard=True)
        assert reader.read("t", 3)["v"] == 5
        reader.commit()

    def test_read_only_txn_acks_immediately_at_lan(self):
        geo = build()
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        session = geo.session(0)
        handle = session.run_transaction(lambda txn: txn.read("t", 1))
        assert handle.status == "committed"
        assert handle.kind == "read_only"
        assert handle.latency_us == 0.0
        assert handle.result["v"] == 1

    def test_regions_converge_on_identical_digests(self):
        geo = build()
        for r in range(3):
            session = geo.session(r)
            for i in range(5):
                session.run_transaction(
                    lambda txn, k=r * 100 + i: txn.insert(
                        "t", {"k": k, "v": k}))
        geo.drain()
        geo.assert_converged()
        assert len({geo.certified_epoch(r) for r in range(3)}) == 1
        for epoch in {row[0] for row in geo.epoch_rows()}:
            assert len(set(geo.epoch_digests(epoch).values())) == 1


class TestPartialReplication:
    def test_non_hosted_region_does_not_apply(self):
        geo = build(rf=1)
        k = key_homed_at(geo, 1)
        handle = geo.session(1).run_transaction(
            lambda txn: txn.insert("t", {"k": k, "v": 42}))
        geo.drain()
        assert handle.status == "committed"
        reader = geo.regions[1].session().begin(multi_shard=True)
        assert reader.read("t", k)["v"] == 42
        reader.commit()
        other = geo.regions[0].session().begin(multi_shard=True)
        assert other.read("t", k) is None      # region 0 hosts nothing here
        other.commit()

    def test_remote_read_routes_to_home_region_and_pays_wan(self):
        geo = build(rf=1)
        k = key_homed_at(geo, 1)
        geo.session(1).run_transaction(
            lambda txn: txn.insert("t", {"k": k, "v": 42}))
        geo.drain()
        session = geo.session(0)
        before = session.now_us
        handle = session.run_transaction(lambda txn: txn.read("t", k))
        assert handle.result["v"] == 42
        assert session.now_us - before >= geo.config.wan_rtt_us
        waits = geo.regions[0].obs.waits.stats("geo.remote_read")
        assert waits.count >= 1

    def test_write_from_non_hosting_region_settles_at_hosts(self):
        geo = build(rf=2)
        # Find a slot region 0 does NOT host: its home h has hosts (h, h+1).
        k = 0
        while geo.shard_map.hosts_value(0, k):
            k += 1
        handle = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": k, "v": 9}))
        geo.drain()
        assert handle.status == "committed"
        for r in range(3):
            reader = geo.regions[r].session().begin(multi_shard=True)
            row = reader.read("t", k)
            reader.commit()
            if geo.shard_map.hosts_value(r, k):
                assert row["v"] == 9
            else:
                assert row is None


class TestGlobal2pcBaseline:
    def test_remote_txn_pays_two_wan_round_trips(self):
        geo = build(mode=GeoMode.GLOBAL_2PC, rf=2)
        handle = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        # rf=2 means the write always involves a second region.
        assert handle.status == "committed"
        assert handle.latency_us >= 2 * geo.config.wan_rtt_us

    def test_concurrent_writers_conflict_and_abort(self):
        geo = build(mode=GeoMode.GLOBAL_2PC)
        s0, s1 = geo.session(0), geo.session(1)
        s0.run_transaction(lambda txn: txn.insert("t", {"k": 5, "v": 0}))
        h0 = s0.run_transaction(lambda txn: txn.update("t", 5, {"v": 1}))
        h1 = s1.run_transaction(lambda txn: txn.update("t", 5, {"v": 2}))
        assert h0.status == "committed"      # insert's lock belongs to s0
        assert h1.status == "aborted"
        assert h1.reason == "lock conflict during global prepare"

    def test_applies_only_at_hosting_regions(self):
        geo = build(mode=GeoMode.GLOBAL_2PC, rf=1)
        k = key_homed_at(geo, 2)
        geo.session(2).run_transaction(
            lambda txn: txn.insert("t", {"k": k, "v": 3}))
        reader = geo.regions[2].session().begin(multi_shard=True)
        assert reader.read("t", k)["v"] == 3
        reader.commit()
        other = geo.regions[0].session().begin(multi_shard=True)
        assert other.read("t", k) is None
        other.commit()


class TestRegionFailures:
    def test_crash_aborts_open_txns_and_stalls_peers(self):
        geo = build()
        h_sealed = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        boundary = geo.epochs[0].seal_boundary_us(0)
        geo.step_to(boundary)                 # epoch 0 sealed everywhere
        late = geo.session(1)
        h_open = late.run_transaction(
            lambda txn: txn.insert("t", {"k": 2, "v": 2}))
        geo.crash_region(1)
        assert h_open.status == "aborted"
        assert "crashed" in h_open.reason
        geo.drain()
        # Epoch 0 was fully shipped pre-crash, so it certifies; nothing
        # beyond it can (region 1's later batches are missing).
        assert h_sealed.status == "committed"
        frontier = geo.certified_epoch(0)
        before = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 3, "v": 3}))
        geo.drain()
        assert before.status == "pending"
        assert geo.certified_epoch(0) == frontier

    def test_recover_reships_and_catches_up(self):
        geo = build()
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.crash_region(2)
        stuck = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 4, "v": 4}))
        geo.drain()
        assert stuck.status == "pending"
        geo.recover_all()
        assert stuck.status == "committed"
        geo.assert_converged()
        assert len({geo.certified_epoch(r) for r in range(3)}) == 1

    def test_partition_stalls_then_heals(self):
        geo = build()
        geo.partition(0, 1)
        handle = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        assert handle.status == "pending"     # region 1 can't receive/ship
        geo.heal(0, 1)
        geo.drain()
        assert handle.status == "committed"
        geo.assert_converged()

    def test_submitting_to_crashed_region_aborts_immediately(self):
        geo = build()
        session = geo.session(1)
        geo.crash_region(1)
        handle = session.run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        assert handle.status == "aborted"
        assert handle.reason == "home region is down"


class TestFaultInjection:
    def test_ship_drop_defers_to_resend_queue(self):
        geo = build()
        injector = FaultInjector(seed=3).bind(geo)
        injector.arm("geo.ship", "drop", times=2)
        handle = geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        assert handle.status == "committed"   # resends win eventually
        geo.assert_converged()
        targets = {fault.target for fault in injector.history}
        assert targets and targets <= {"r0", "r1", "r2"}

    def test_ship_crash_takes_down_sending_region(self):
        geo = build()
        injector = FaultInjector(seed=5).bind(geo)
        injector.arm("geo.ship", "crash_coordinator", match={"region": 2})
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        assert 2 in geo.crashed_regions
        geo.recover_all()
        geo.assert_converged()


class TestObservability:
    def run_some_traffic(self, geo):
        for r in range(3):
            session = geo.session(r)
            for i in range(3):
                session.run_transaction(
                    lambda txn, k=r * 10 + i: txn.insert(
                        "t", {"k": k, "v": k}))
        geo.drain()

    def test_sys_geo_views_queryable(self):
        geo = build()
        self.run_some_traffic(geo)
        engine = SqlEngine(geo.regions[0], learning_enabled=False)
        regions = engine.query(
            "SELECT region, name, certified_epoch, commits, crashed "
            "FROM sys.geo_regions ORDER BY region")
        assert [row["name"] for row in regions] == ["r0", "r1", "r2"]
        assert all(row["crashed"] == 0 for row in regions)
        assert sum(row["commits"] for row in regions) == 9
        epochs = engine.query(
            "SELECT epoch, region, digest FROM sys.geo_epochs "
            "ORDER BY epoch, region")
        by_epoch = {}
        for row in epochs:
            by_epoch.setdefault(row["epoch"], set()).add(row["digest"])
        assert by_epoch and all(len(d) == 1 for d in by_epoch.values())
        slots = engine.query("SELECT count(*) AS n FROM sys.geo_shard_map")
        assert slots[0]["n"] == geo.shard_map.num_slots

    def test_geo_wait_events_recorded(self):
        geo = build()
        self.run_some_traffic(geo)
        engine = SqlEngine(geo.regions[0], learning_enabled=False)
        rows = engine.query(
            "SELECT event, total_us FROM sys.wait_events "
            "WHERE event LIKE 'geo.%' ORDER BY event")
        events = {row["event"] for row in rows}
        assert {"geo.epoch", "geo.ship", "geo.certify"} <= events
        ship = next(r for r in rows if r["event"] == "geo.ship")
        assert ship["total_us"] > 0.0

    def test_epoch_trace_stitches_across_regions(self):
        geo = build()
        self.run_some_traffic(geo)
        first_epoch = geo.epoch_rows()[0][0]
        trace_id = GEO_TRACE_BASE + first_epoch
        names_by_region = {}
        for r in range(3):
            engine = SqlEngine(geo.regions[r], learning_enabled=False)
            rows = engine.query(
                "SELECT name, node FROM sys.trace_spans "
                "WHERE trace_id = %d" % trace_id)
            names_by_region[r] = {row["name"] for row in rows}
            assert all(row["node"] == f"r{r}" or row["name"] == "geo.ship"
                       for row in rows)
        # Every region's tracer holds its slice of the SAME trace id:
        # the epoch root + certification, and the outbound ship legs.
        for r in range(3):
            assert {"geo.epoch", "geo.certify"} <= names_by_region[r]
            assert "geo.ship" in names_by_region[r]

    def test_commit_metrics_roll_up(self):
        geo = build()
        self.run_some_traffic(geo)
        engine = SqlEngine(geo.regions[0], learning_enabled=False)
        commits = engine.query(
            "SELECT value FROM sys.metrics WHERE name = 'geo.commits'")
        assert commits[0]["value"] == 3.0


class TestAutonomousAimd:
    def test_sla_breach_halves_epoch_interval(self):
        geo = build(commit_latency_sla_us=20_000.0)   # unmeetable: < WAN leg
        manager = AutonomousManager(geo.regions[0])
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        before = geo.epoch_interval_us
        report = manager.tick(geo.regions[0].obs.clock.now_us)
        assert report.geo_p95_commit_us > 20_000.0
        assert report.geo_epoch_interval_us == pytest.approx(before / 2)
        assert "tighten geo epoch interval" in report.healing_actions
        assert any(a.source == "geo" and "sla" in a.message
                   for a in geo.regions[0].obs.alerts.alerts())

    def test_met_sla_relaxes_interval_toward_cap(self):
        geo = build(commit_latency_sla_us=500_000.0)
        manager = AutonomousManager(geo.regions[0])
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        before = geo.epoch_interval_us
        report = manager.tick(geo.regions[0].obs.clock.now_us)
        assert report.geo_epoch_interval_us == pytest.approx(before * 1.25)

    def test_interval_clamps_to_config_band(self):
        geo = build(min_epoch_interval_us=5_000.0,
                    max_epoch_interval_us=20_000.0)
        assert geo.set_epoch_interval(1.0) == 5_000.0
        assert geo.set_epoch_interval(1e9) == 20_000.0

    def test_retune_mid_run_keeps_regions_converged(self):
        geo = build()
        geo.session(0).run_transaction(
            lambda txn: txn.insert("t", {"k": 1, "v": 1}))
        geo.drain()
        geo.set_epoch_interval(40_000.0)
        for r in range(3):
            geo.session(r).run_transaction(
                lambda txn, k=100 + r: txn.insert("t", {"k": k, "v": k}))
        geo.drain()
        geo.assert_converged()
        assert len({m.interval_us for m in geo.epochs}) == 1


class TestConfigValidation:
    def test_disabled_requires_single_region(self):
        with pytest.raises(ConfigError):
            GeoCluster(GeoConfig(num_regions=2, geo_enabled=False))

    def test_session_region_bounds(self):
        geo = build(num_regions=2)
        with pytest.raises(ConfigError):
            geo.session(2)


class TestTpccOnGeo:
    def test_contended_tpcc_lite_commits_with_low_abort_rate(self):
        geo = GeoCluster(GeoConfig(num_regions=3, dns_per_region=2,
                                   replication_factor=2))
        load_tpcc_geo(geo, num_warehouses=6)
        workload = TpccLiteWorkload(num_warehouses=6,
                                    multi_shard_fraction=0.2, seed=11)
        handles = []
        for r in range(3):
            session = geo.session(r)
            homes = warehouses_homed_at(geo, r, 6)
            stream = workload.stream(home_warehouse=homes[0], seed_offset=r)
            for _ in range(12):
                spec = next(stream)
                handles.append(session.run_transaction(
                    spec.body, multi_shard=spec.multi_shard))
        geo.drain()
        geo.assert_converged()
        statuses = [h.status for h in handles]
        assert "pending" not in statuses
        aborted = statuses.count("aborted")
        assert aborted / len(statuses) <= 0.10
