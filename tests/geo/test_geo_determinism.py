"""Replay determinism: same seed, same epochs, same verdicts, same bytes.

The certifier is a pure function of the epoch's batch set and the epoch
machine runs on simulated time, so an identical submission schedule must
replay an identical ``sys.geo_epochs`` log — across 2- and 3-region
topologies — and ``geo_enabled=False`` must replay the seed single-cluster
path result- and telemetry-identically.
"""

from repro.cluster.mpp import MppCluster
from repro.common.rng import make_rng
from repro.geo import GeoCluster, GeoConfig
from repro.sql.engine import SqlEngine
from repro.storage import Column, DataType, TableSchema
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc


def _schema():
    return TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k")


def _run_geo(num_regions, seed):
    """A contended mixed workload with interleaved epoch advancement."""
    geo = GeoCluster(GeoConfig(
        num_regions=num_regions, dns_per_region=1,
        replication_factor=min(2, num_regions)))
    geo.create_table(_schema())
    rng = make_rng(seed)
    sessions = [geo.session(r) for r in range(num_regions)]
    seeder = geo.session(0)
    for k in range(8):
        seeder.run_transaction(
            lambda txn, k=k: txn.insert("t", {"k": k, "v": 0}))
    geo.drain()
    handles = []
    for i in range(30):
        region = rng.randrange(num_regions)
        key = rng.randrange(8)              # hot keyspace: real conflicts

        def bump(txn, k=key):
            row = txn.read("t", k)
            txn.update("t", k, {"v": row["v"] + 1})

        handles.append(sessions[region].run_transaction(bump))
        if i % 7 == 6:                      # ship/certify mid-run, not
            geo.step_to(geo._now_us + 25_000.0)   # only at the drain
    geo.drain()
    geo.assert_converged()
    return geo, handles


def _fingerprint(geo, handles):
    engine = SqlEngine(geo.regions[0], learning_enabled=False)
    return {
        "epoch_rows": list(geo.epoch_rows()),
        "sys.geo_epochs": engine.execute(
            "SELECT * FROM sys.geo_epochs").rows,
        "handles": [(h.txn_id, h.status, h.epoch, h.ack_us, h.reason)
                    for h in handles],
        "frontiers": [geo.certified_epoch(r)
                      for r in range(geo.num_regions)],
    }


class TestReplayDeterminism:
    def test_two_region_replay_is_byte_identical(self):
        a = _fingerprint(*_run_geo(2, seed=101))
        b = _fingerprint(*_run_geo(2, seed=101))
        assert a == b
        assert a["epoch_rows"], "workload produced no certified epochs"

    def test_three_region_replay_is_byte_identical(self):
        a = _fingerprint(*_run_geo(3, seed=202))
        b = _fingerprint(*_run_geo(3, seed=202))
        assert a == b
        committed = sum(1 for _, s, *_ in a["handles"] if s == "committed")
        assert committed > 0

    def test_different_seeds_differ(self):
        # Sanity check on the fingerprint itself: it must be sensitive to
        # the schedule, or the equality assertions above prove nothing.
        a = _fingerprint(*_run_geo(3, seed=1))
        b = _fingerprint(*_run_geo(3, seed=2))
        assert a != b


class TestDisabledPathIdentity:
    """``geo_enabled=False`` is the seed cluster, bit for bit."""

    @staticmethod
    def _run_oltp(cluster):
        load_tpcc(cluster, num_warehouses=4)
        workload = TpccLiteWorkload(num_warehouses=4,
                                    multi_shard_fraction=0.2, seed=11)
        return run_oltp(cluster, workload, clients_per_dn=2,
                        txns_per_client=5)

    @staticmethod
    def _sys_snapshot(cluster):
        engine = SqlEngine(cluster, learning_enabled=False)
        return {
            view: engine.execute(f"SELECT * FROM {view}").rows
            for view in ("sys.wait_events", "sys.metrics",
                         "sys.slow_queries", "sys.alerts")
        }

    def test_disabled_matches_plain_cluster_results_and_telemetry(self):
        geo = GeoCluster(GeoConfig(num_regions=1, dns_per_region=2,
                                   geo_enabled=False))
        plain = MppCluster(num_dns=2)
        result_geo = self._run_oltp(geo.regions[0])
        result_plain = self._run_oltp(plain)
        assert result_geo.as_dict() == result_plain.as_dict()
        assert self._sys_snapshot(geo.regions[0]) \
            == self._sys_snapshot(plain)

    def test_disabled_registers_no_geo_views_or_metrics(self):
        geo = GeoCluster(GeoConfig(num_regions=1, geo_enabled=False))
        engine = SqlEngine(geo.regions[0], learning_enabled=False)
        rows = engine.query("SELECT name FROM sys.metrics "
                            "WHERE name LIKE 'geo.%'")
        assert rows == []
        assert geo.regions[0].obs.geo is None
