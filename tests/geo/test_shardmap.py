"""GeoShardMap: per-region slot placement for partial replication."""

import pytest

from repro.cluster.shardmap import ShardMapError
from repro.geo import SLOTS_PER_REGION, GeoShardMap


class TestPlacement:
    def test_round_robin_homes_balance_exactly(self):
        m = GeoShardMap(3)
        for region in range(3):
            assert len(m.slots_homed_at(region)) == SLOTS_PER_REGION

    def test_full_replication_is_the_default(self):
        m = GeoShardMap(3)
        for slot in range(m.num_slots):
            assert m.hosting_regions(slot) == ((slot % 3), ((slot + 1) % 3),
                                               ((slot + 2) % 3))
        assert m.hosted_counts() == {0: 48, 1: 48, 2: 48}

    def test_partial_replication_ring_order(self):
        m = GeoShardMap(3, replication_factor=2)
        assert m.hosting_regions(0) == (0, 1)
        assert m.hosting_regions(1) == (1, 2)
        assert m.hosting_regions(2) == (2, 0)
        assert m.hosts(0, 0) and m.hosts(1, 0) and not m.hosts(2, 0)

    def test_replication_factor_one_home_only(self):
        m = GeoShardMap(3, replication_factor=1)
        for slot in range(m.num_slots):
            assert m.hosting_regions(slot) == (m.home_region_of_slot(slot),)

    def test_single_region_map_homes_everything_at_zero(self):
        m = GeoShardMap(1)
        assert m.slots_homed_at(0) == list(range(m.num_slots))

    def test_value_routing_matches_slot_routing(self):
        m = GeoShardMap(3, replication_factor=2)
        for value in range(40):
            slot = m.slot_of_value(value)
            assert m.home_region_of_value(value) == m.home_region_of_slot(slot)
            for region in range(3):
                assert m.hosts_value(region, value) == m.hosts(region, slot)


class TestPlace:
    def test_place_moves_home_and_bumps_version(self):
        m = GeoShardMap(3, replication_factor=1)
        v0 = m.version
        m.place(5, home=2, subscribers=(0,))
        assert m.version == v0 + 1
        assert m.home_region_of_slot(5) == 2
        assert m.hosting_regions(5) == (2, 0)

    def test_place_dedups_and_orders_subscribers(self):
        m = GeoShardMap(4)
        m.place(0, home=3, subscribers=(2, 3, 0, 2))
        assert m.hosting_regions(0) == (3, 0, 2)

    def test_place_validates_ranges(self):
        m = GeoShardMap(2)
        with pytest.raises(ShardMapError):
            m.place(m.num_slots, home=0)
        with pytest.raises(ShardMapError):
            m.place(0, home=2)
        with pytest.raises(ShardMapError):
            m.place(0, home=0, subscribers=(5,))


class TestValidation:
    def test_rejects_bad_region_count(self):
        with pytest.raises(ShardMapError):
            GeoShardMap(0)

    def test_rejects_non_multiple_slot_count(self):
        with pytest.raises(ShardMapError):
            GeoShardMap(3, num_slots=32)

    def test_rejects_bad_replication_factor(self):
        with pytest.raises(ShardMapError):
            GeoShardMap(3, replication_factor=4)
        with pytest.raises(ShardMapError):
            GeoShardMap(3, replication_factor=0)

    def test_rows_render_subscriber_strings(self):
        m = GeoShardMap(2, replication_factor=2)
        rows = m.rows()
        assert len(rows) == m.num_slots
        slot, home, subs = rows[0]
        assert slot == 0 and home == 0 and subs == "r0,r1"
