"""Epoch batching and the deterministic certifier."""

import pytest

from repro.geo import (
    ABORT,
    COMMIT,
    EpochBatch,
    EpochManager,
    GeoTxnRecord,
    GeoWriteOp,
    certification_order,
    certify_epoch,
    outcome_digest,
)


def record(origin, seq, commit_ts, keys, session=1, table="t"):
    return GeoTxnRecord(
        txn_id=(origin, seq), origin=origin, kind="w", commit_ts=commit_ts,
        ops=[GeoWriteOp("update", table, k, {"v": seq}, 0) for k in keys],
        session_id=session,
    )


class TestEpochManager:
    def test_submit_assigns_natural_epoch(self):
        m = EpochManager(0, 1_000.0)
        assert m.submit(record(0, 1, 250.0, ["a"])) == 0
        assert m.submit(record(0, 2, 1_250.0, ["b"])) == 1
        assert m.submit(record(0, 3, 5_500.0, ["c"])) == 5

    def test_seal_through_is_dense_and_stamps_boundaries(self):
        m = EpochManager(0, 1_000.0)
        m.submit(record(0, 1, 2_500.0, ["a"]))
        batches = m.seal_through(3_000.0)
        assert [b.epoch for b in batches] == [0, 1, 2]
        assert [b.seal_us for b in batches] == [1_000.0, 2_000.0, 3_000.0]
        assert [len(b.records) for b in batches] == [0, 0, 1]
        assert m.last_sealed == 2

    def test_late_commit_rolls_forward_past_sealed_epochs(self):
        m = EpochManager(0, 1_000.0)
        m.seal_through(3_000.0)
        # A commit stamped inside already-sealed history joins the earliest
        # still-open epoch instead of mutating the sealed log.
        assert m.submit(record(0, 1, 500.0, ["a"])) == 3

    def test_rebase_renumbers_only_the_future(self):
        m = EpochManager(0, 1_000.0)
        m.seal_through(2_000.0)          # sealed 0, 1
        m.rebase(2, 2_000.0, 4_000.0)
        assert m.seal_boundary_us(2) == 6_000.0
        assert m.epoch_of(9_000.0) == 3
        with pytest.raises(ValueError):
            m.rebase(1, 0.0, 500.0)

    def test_abort_open_preserves_sealed_log(self):
        m = EpochManager(0, 1_000.0)
        m.submit(record(0, 1, 100.0, ["a"]))
        m.seal_through(1_000.0)
        m.submit(record(0, 2, 1_100.0, ["b"]))
        lost = m.abort_open()
        assert [r.txn_id for r in lost] == [(0, 2)]
        assert m.open_count == 0
        assert len(m.sealed[0].records) == 1

    def test_txn_ids_are_monotone_per_region(self):
        m = EpochManager(2, 1_000.0)
        assert m.next_txn_id() == (2, 1)
        assert m.next_txn_id() == (2, 2)


class TestCertifier:
    def batches(self, *records_by_region):
        return [EpochBatch(region=i, epoch=0, seal_us=1_000.0,
                           records=list(records))
                for i, records in enumerate(records_by_region)]

    def test_order_is_batch_order_independent(self):
        r0 = record(0, 1, 100.0, ["a"])
        r1 = record(1, 1, 50.0, ["b"])
        batches = self.batches([r0], [r1])
        assert certification_order(batches) \
            == certification_order(list(reversed(batches)))

    def test_cross_session_conflict_first_committer_wins(self):
        r0 = record(0, 1, 100.0, ["hot"], session=1)
        r1 = record(1, 1, 50.0, ["hot"], session=9)
        verdicts = certify_epoch(self.batches([r0], [r1]))
        # Region priority beats commit timestamp: region 0 claims first.
        assert verdicts == [((0, 1), COMMIT), ((1, 1), ABORT)]

    def test_same_session_writes_stack_instead_of_aborting(self):
        r0 = record(0, 1, 100.0, ["hot"], session=1)
        r1 = record(0, 2, 200.0, ["hot"], session=1)
        verdicts = certify_epoch(self.batches([r0, r1], []))
        assert verdicts == [((0, 1), COMMIT), ((0, 2), COMMIT)]

    def test_same_region_different_sessions_conflict(self):
        r0 = record(0, 1, 100.0, ["hot"], session=1)
        r1 = record(0, 2, 200.0, ["hot"], session=2)
        verdicts = certify_epoch(self.batches([r0, r1], []))
        assert verdicts == [((0, 1), COMMIT), ((0, 2), ABORT)]

    def test_disjoint_write_sets_all_commit(self):
        r0 = record(0, 1, 100.0, ["a", "b"])
        r1 = record(1, 1, 50.0, ["c"], session=5)
        verdicts = certify_epoch(self.batches([r0], [r1]))
        assert all(outcome == COMMIT for _, outcome in verdicts)

    def test_aborted_txn_claims_nothing(self):
        # r1 aborts on "hot" (claimed by r0); r2 touching only r1's other
        # key "x" must still commit — an aborted txn leaves no claims.
        r0 = record(0, 1, 100.0, ["hot"], session=1)
        r1 = record(1, 1, 150.0, ["hot", "x"], session=2)
        r2 = record(2, 1, 200.0, ["x"], session=3)
        verdicts = dict(certify_epoch(self.batches([r0], [r1], [r2])))
        assert verdicts[(1, 1)] == ABORT
        assert verdicts[(2, 1)] == COMMIT

    def test_digest_is_replay_stable(self):
        r0 = record(0, 1, 100.0, ["a"])
        r1 = record(1, 1, 50.0, ["a"], session=7)
        v = certify_epoch(self.batches([r0], [r1]))
        # crc32 of the canonical rendering: stable across processes, unlike
        # salted str hashing.
        assert outcome_digest(3, v) == outcome_digest(3, list(v))
        assert outcome_digest(3, v) != outcome_digest(4, v)
