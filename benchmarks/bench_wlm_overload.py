"""Governed vs ungoverned admission under an overload burst.

Replays the same deterministic request schedule — a sustained stream of
short interactive queries colliding with a burst of long analytical scans —
through two :class:`~repro.wlm.governor.WlmGovernor` instances:

* **ungoverned**: one group with effectively unlimited slots, so every
  query starts the moment it arrives and all of them fight over the same
  simulated execution capacity (the driver's contention stretch).
* **governed**: interactive queries in a high-priority 16-slot group,
  analytics fenced into a low-priority 4-slot group.  Analytics queue;
  short queries keep their stretch near 1.

Admission control must *win*: the governed short-query p95 latency has to
beat the ungoverned one by at least 1.3x, with zero rejections and no
admitted query lost.  The script asserts all three, so CI fails if the
governor regresses into either starvation or thrash.

Run:  PYTHONPATH=src python benchmarks/bench_wlm_overload.py
Writes ``BENCH_wlm_overload.json`` next to this file (under ``out/``).
"""

import json
from pathlib import Path

from repro.wlm import Priority, ResourceGroup, WlmConfig, WlmGovernor
from repro.wlm.driver import QueryRequest, percentile, replay

OUT_PATH = Path(__file__).parent / "out" / "BENCH_wlm_overload.json"

PARALLELISM = 16          # simulated execution capacity (driver stretch)
NUM_SHORT = 200           # interactive stream: one every 150us, 2ms each
SHORT_EXEC_US = 2_000.0
NUM_ANALYTICS = 30        # burst: one every 200us from t=0, 150ms each
ANALYTICS_EXEC_US = 150_000.0


def schedule(short_group: str, analytics_group: str):
    requests = []
    for i in range(NUM_ANALYTICS):
        requests.append(QueryRequest(
            arrival_us=i * 200.0, exec_us=ANALYTICS_EXEC_US,
            group=analytics_group, priority=Priority.LOW,
            tag=f"analytics-{i}"))
    for i in range(NUM_SHORT):
        requests.append(QueryRequest(
            arrival_us=i * 150.0, exec_us=SHORT_EXEC_US,
            group=short_group, priority=Priority.HIGH,
            tag=f"short-{i}"))
    return requests


def run(mode: str):
    if mode == "governed":
        config = WlmConfig(groups=[
            ResourceGroup("short", slots=16, priority=Priority.HIGH,
                          queue_limit=1024),
            ResourceGroup("analytics", slots=4, priority=Priority.LOW,
                          queue_limit=1024),
        ])
        requests = schedule("short", "analytics")
    else:
        config = WlmConfig(groups=[
            ResourceGroup("all", slots=100_000, queue_limit=1_000_000)])
        requests = schedule("all", "all")
    governor = WlmGovernor(config=config)
    outcomes = replay(governor, requests, parallelism=PARALLELISM)
    assert not any(o.rejected for o in outcomes), \
        f"{mode}: the benchmark schedule must not shed load"
    assert all(o.finished_us is not None for o in outcomes), \
        f"{mode}: an admitted query was lost"
    return outcomes


def stats(outcomes, prefix: str):
    latencies = [o.latency_us for o in outcomes
                 if o.request.tag.startswith(prefix)]
    waits = [o.queue_wait_us for o in outcomes
             if o.request.tag.startswith(prefix)]
    return {
        "count": len(latencies),
        "p50_us": percentile(latencies, 50),
        "p95_us": percentile(latencies, 95),
        "max_us": percentile(latencies, 100),
        "mean_queue_wait_us": sum(waits) / len(waits),
    }


def main() -> None:
    report = {"benchmark": "wlm_overload",
              "config": {"parallelism": PARALLELISM,
                         "short_queries": NUM_SHORT,
                         "short_exec_us": SHORT_EXEC_US,
                         "analytics_queries": NUM_ANALYTICS,
                         "analytics_exec_us": ANALYTICS_EXEC_US}}
    for mode in ("ungoverned", "governed"):
        outcomes = run(mode)
        report[mode] = {"short": stats(outcomes, "short"),
                        "analytics": stats(outcomes, "analytics")}

    short_speedup = (report["ungoverned"]["short"]["p95_us"]
                     / report["governed"]["short"]["p95_us"])
    report["short_p95_speedup"] = short_speedup
    assert short_speedup >= 1.3, (
        f"governed short-query p95 must beat ungoverned by >=1.3x, "
        f"got {short_speedup:.2f}x")

    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'':12s} {'short p50':>12s} {'short p95':>12s} "
          f"{'analytics p95':>14s} {'short queue':>12s}")
    for mode in ("ungoverned", "governed"):
        s, a = report[mode]["short"], report[mode]["analytics"]
        print(f"{mode:12s} {s['p50_us']:10.0f}us {s['p95_us']:10.0f}us "
              f"{a['p95_us']:12.0f}us {s['mean_queue_wait_us']:10.0f}us")
    print(f"short-query p95 speedup under governance: {short_speedup:.2f}x")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
