"""Fragmented vs gather-all execution on a TPC-C-lite analytical mix.

Runs the same analytical queries through two engines over identically
loaded clusters: one with ``fragmented=False`` (every scan gathers all
shards to the coordinator, the whole plan runs there — the pre-refactor
shape) and one with ``fragmented=True`` (plans cut at exchange boundaries,
filters and partial aggregates pushed into per-DN fragments).

For each query it records the simulated elapsed time (wall-clock view:
concurrent fragments count once) and the rows that crossed the simulated
network (exchange traffic plus shard contents drained by coordinator-side
scans). Fragmenting must both reduce simulated elapsed time and move fewer
rows — the script asserts both, so CI fails if the speedup regresses away.

Run:  PYTHONPATH=src python benchmarks/bench_fragment_speedup.py
Writes ``BENCH_fragment_speedup.json`` next to this file (under ``out/``).
"""

import json
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.sql.engine import SqlEngine
from repro.workloads.tpcc_lite import load_tpcc

NUM_DNS = 4
WAREHOUSES = 4

OUT_PATH = Path(__file__).parent / "out" / "BENCH_fragment_speedup.json"

#: The analytical mix: filtered aggregates, group-bys, a replicated-side
#: join, and a column-oriented variant that exercises the vector kernels.
QUERIES = [
    ("revenue_filtered",
     "select sum(ol_amount), count(*) from order_line where ol_quantity >= 5"),
    ("revenue_by_warehouse",
     "select w_id, sum(ol_amount), count(*) from order_line "
     "group by w_id order by w_id"),
    ("top_items",
     "select i.i_name, sum(ol.ol_amount) rev from order_line ol "
     "join item i on ol.i_id = i.i_id group by i.i_name "
     "order by i.i_name limit 10"),
    ("customer_balances",
     "select d_id, sum(c_balance), count(*) from customer "
     "group by d_id order by d_id"),
    ("low_stock",
     "select count(*) from stock where s_quantity < 20"),
    ("columnar_revenue",
     "select ol_number, count(*), sum(ol_amount) from order_line_col "
     "where ol_quantity >= 5 group by ol_number order by ol_number"),
]


def build_engine(fragmented: bool) -> SqlEngine:
    cluster = MppCluster(num_dns=NUM_DNS)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    eng = SqlEngine(cluster, fragmented=fragmented, learning_enabled=False)
    # A column-oriented copy of order_line so the mix also exercises the
    # vectorized fragment scan (TPC-C-lite's own tables are row-oriented).
    eng.execute(
        "create table order_line_col (ol_key int primary key, w_id int, "
        "o_key int, ol_number int not null, i_id int not null, "
        "ol_quantity int not null, ol_amount double not null) "
        "distribute by hash(ol_key) with (orientation = column)")
    eng.execute("insert into order_line_col select * from order_line")
    eng.analyze()
    return eng


def network_rows(profile) -> int:
    """Rows that crossed the simulated network: exchange traffic plus the
    shard contents a coordinator-side scan drained remotely."""
    return sum(op.net_rows for op in profile.operators)


def normalized(rows):
    return [tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows]


def main() -> None:
    engines = {
        "gather_all": build_engine(fragmented=False),
        "fragmented": build_engine(fragmented=True),
    }
    per_query = {}
    totals = {"gather_all": 0.0, "fragmented": 0.0}
    moved = {"gather_all": 0, "fragmented": 0}
    for name, sql in QUERIES:
        entry = {}
        results = {}
        for mode, eng in engines.items():
            result = eng.execute(sql)
            profile = result.profile
            entry[f"{mode}_elapsed_us"] = profile.elapsed_time_us
            entry[f"{mode}_network_rows"] = network_rows(profile)
            totals[mode] += profile.elapsed_time_us
            moved[mode] += network_rows(profile)
            results[mode] = normalized(result.rows)
        assert results["fragmented"] == results["gather_all"], \
            f"{name}: fragmented execution changed query results"
        entry["speedup"] = (entry["gather_all_elapsed_us"]
                            / entry["fragmented_elapsed_us"])
        per_query[name] = entry

    speedup = totals["gather_all"] / totals["fragmented"]
    assert totals["fragmented"] < totals["gather_all"], \
        "fragmented execution must reduce total simulated elapsed time"
    assert moved["fragmented"] < moved["gather_all"], \
        "fragmented execution must move fewer rows across the network"

    report = {
        "benchmark": "fragment_speedup",
        "config": {"num_dns": NUM_DNS, "warehouses": WAREHOUSES,
                   "queries": len(QUERIES)},
        "queries": per_query,
        "total_sim_elapsed_us_gather_all": totals["gather_all"],
        "total_sim_elapsed_us_fragmented": totals["fragmented"],
        "network_rows_gather_all": moved["gather_all"],
        "network_rows_fragmented": moved["fragmented"],
        "speedup": speedup,
        "results_identical": True,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'query':22s} {'gather-all':>12s} {'fragmented':>12s} {'speedup':>8s}")
    for name, entry in per_query.items():
        print(f"{name:22s} {entry['gather_all_elapsed_us']:10.1f}us "
              f"{entry['fragmented_elapsed_us']:10.1f}us "
              f"{entry['speedup']:7.2f}x")
    print(f"total sim elapsed: {totals['gather_all']:.1f}us -> "
          f"{totals['fragmented']:.1f}us ({speedup:.2f}x), "
          f"network rows {moved['gather_all']} -> {moved['fragmented']}")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
