"""Failpoint overhead: the same TPC-C-lite run with and without an injector.

Every crash-relevant hot path calls ``FaultInjector.fire`` when an injector
is bound to the cluster; with no injector the sites reduce to a ``None``
check.  This script measures the wall-clock cost of a *bound but disarmed*
injector — and asserts that arming nothing keeps both the simulated results
AND the full telemetry (metrics snapshot, alerts, wait events) byte-identical
to a cluster that never heard of fault injection.

Run:  PYTHONPATH=src python benchmarks/bench_fault_overhead.py
Writes ``BENCH_fault_overhead.json`` next to this file (under ``out/``).
"""

import json
import statistics
import time
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.faults import FaultInjector
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

NUM_DNS = 4
WAREHOUSES = 4
CLIENTS_PER_DN = 4
TXNS_PER_CLIENT = 30
REPEATS = 5

OUT_PATH = Path(__file__).parent / "out" / "BENCH_fault_overhead.json"


def telemetry_fingerprint(cluster):
    """Everything observable: metric values, wait events, alerts, slowlog."""
    _, metrics = cluster.obs.metrics.snapshot()
    waits = {name: (s.count, s.total_us, s.max_us)
             for name, s in cluster.obs.waits.events().items()}
    alerts = [(a.source, a.severity, a.message, a.count)
              for a in cluster.obs.alerts.alerts()]
    return {
        "metrics": metrics,
        "waits": waits,
        "alerts": alerts,
        "slow_queries": len(cluster.obs.slowlog.entries()),
    }


def one_run(with_injector: bool):
    cluster = MppCluster(num_dns=NUM_DNS)
    if with_injector:
        # Bound but never armed: every failpoint is traversed, none fires.
        FaultInjector(seed=0).bind(cluster)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.2, seed=3)
    t0 = time.perf_counter()
    result = run_oltp(cluster, workload, clients_per_dn=CLIENTS_PER_DN,
                      txns_per_client=TXNS_PER_CLIENT)
    elapsed_s = time.perf_counter() - t0
    return elapsed_s, result, telemetry_fingerprint(cluster)


def main() -> None:
    timings = {"injector_bound": [], "no_injector": []}
    baseline_result = None
    baseline_telemetry = None
    for _ in range(REPEATS):
        # alternate to spread warmup / cache effects evenly
        for key, bound in (("injector_bound", True), ("no_injector", False)):
            elapsed_s, result, telemetry = one_run(bound)
            timings[key].append(elapsed_s)
            # a disarmed injector must be invisible to the simulation...
            if baseline_result is None:
                baseline_result = result.as_dict()
            assert result.as_dict() == baseline_result, \
                "disarmed injector changed simulation results"
            # ...and to every telemetry consumer
            if baseline_telemetry is None:
                baseline_telemetry = telemetry
            assert telemetry == baseline_telemetry, \
                "disarmed injector changed telemetry"

    bound = statistics.median(timings["injector_bound"])
    plain = statistics.median(timings["no_injector"])
    committed = baseline_result["committed"]
    report = {
        "benchmark": "fault_overhead",
        "config": {
            "num_dns": NUM_DNS,
            "warehouses": WAREHOUSES,
            "clients_per_dn": CLIENTS_PER_DN,
            "txns_per_client": TXNS_PER_CLIENT,
            "repeats": REPEATS,
        },
        "committed_txns": committed,
        "median_s_injector_bound": bound,
        "median_s_no_injector": plain,
        "overhead_ratio": bound / plain if plain > 0 else None,
        "overhead_us_per_txn": (bound - plain) / committed * 1e6,
        "sim_results_identical": True,
        "telemetry_identical": True,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"injector bound: {bound * 1e3:8.1f} ms (median of {REPEATS})")
    print(f"no injector   : {plain * 1e3:8.1f} ms (median of {REPEATS})")
    print(f"overhead: {report['overhead_ratio']:.2f}x, "
          f"{report['overhead_us_per_txn']:.1f}us per committed txn")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
