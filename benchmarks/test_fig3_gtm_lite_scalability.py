"""Figure 3 — GTM-Lite scalability.

Paper setup: clusters of 1/2/4/8 nodes; modified TPC-C issuing 100%
single-shard (SS) or 90% single-shard (MS) transactions; GTM-lite vs the
classical-GTM baseline.  Expected shape (paper): "GTM-Lite achieved higher
throughput and scaled out much better than baseline.  It performed better
in 100% single-shard workload (SS)".
"""

import pytest

from repro.cluster.txn import TxnMode
from repro.core.experiment import figure3, format_figure3

NODE_COUNTS = (1, 2, 4, 8)


def series(cells, workload, mode):
    return {c.nodes: c.throughput_tps for c in cells
            if c.workload == workload and c.mode is mode}


@pytest.fixture(scope="module")
def cells():
    return figure3(node_counts=NODE_COUNTS, txns_per_client=30)


def test_fig3_grid(benchmark, artifact):
    result = benchmark.pedantic(
        lambda: figure3(node_counts=NODE_COUNTS, txns_per_client=30),
        rounds=1, iterations=1,
    )
    artifact("fig3_gtm_lite_scalability", format_figure3(result))
    # Core shape assertions (also run under --benchmark-only):
    lite = series(result, "SS", TxnMode.GTM_LITE)
    base = series(result, "SS", TxnMode.CLASSICAL)
    assert lite[8] / base[8] > 2.0, "GTM-lite must clearly win at 8 nodes"
    assert lite[8] / lite[1] > 5.5, "GTM-lite must scale near-linearly"
    assert base[8] / base[4] < 1.15, "baseline must flatten at the GTM"


class TestFigure3Shape:
    def test_gtm_lite_wins_everywhere(self, cells):
        for workload in ("SS", "MS"):
            lite = series(cells, workload, TxnMode.GTM_LITE)
            base = series(cells, workload, TxnMode.CLASSICAL)
            for nodes in NODE_COUNTS:
                assert lite[nodes] >= base[nodes] * 0.98, (workload, nodes)

    def test_gap_grows_with_cluster_size(self, cells):
        lite = series(cells, "SS", TxnMode.GTM_LITE)
        base = series(cells, "SS", TxnMode.CLASSICAL)
        ratios = [lite[n] / base[n] for n in NODE_COUNTS]
        assert ratios[-1] > 2.0               # clear win at 8 nodes
        assert ratios[-1] > ratios[0] * 1.5   # the gap clearly widens
        # Non-decreasing within measurement tolerance (a ~0.1% wobble at
        # small clusters is workload-mix noise, not a trend reversal).
        for earlier, later in zip(ratios, ratios[1:]):
            assert later >= earlier * 0.99

    def test_gtm_lite_scales_near_linearly(self, cells):
        for workload in ("SS", "MS"):
            lite = series(cells, workload, TxnMode.GTM_LITE)
            speedup = lite[8] / lite[1]
            assert speedup > 5.5, f"{workload} speedup only {speedup:.1f}x"

    def test_baseline_flattens(self, cells):
        base = series(cells, "SS", TxnMode.CLASSICAL)
        assert base[8] / base[4] < 1.15   # saturated: almost no gain 4 -> 8

    def test_ss_beats_ms_under_gtm_lite(self, cells):
        lite_ss = series(cells, "SS", TxnMode.GTM_LITE)
        lite_ms = series(cells, "MS", TxnMode.GTM_LITE)
        assert lite_ss[8] > lite_ms[8]

    def test_baseline_bottleneck_is_the_gtm(self, cells):
        at_scale = [c for c in cells
                    if c.mode is TxnMode.CLASSICAL and c.nodes == 8]
        assert all(c.result.bottleneck == "gtm" for c in at_scale)

    def test_gtm_lite_bottleneck_is_a_data_node(self, cells):
        at_scale = [c for c in cells
                    if c.mode is TxnMode.GTM_LITE and c.nodes == 8]
        assert all(c.result.bottleneck.startswith("dn") for c in at_scale)
