"""Figure 5 — the statistics-learning loop on a canned reporting workload.

The paper's premise: "reporting workloads (canned queries) are the most
common in real life OLAP workloads", and exact-match logical-step feedback
fixes their estimates.  We run a canned workload over data with correlated
columns (which defeats the independence assumption), measure per-step
estimation error (q-error) on the first pass, then re-run with the plan
store populated and measure again.

Expected shape: large q-errors before learning, near-1 after; the plan
store hit rate climbs to ~100% for repeated queries.
"""

import pytest

from repro.cluster import MppCluster
from repro.exec.operators import walk_physical
from repro.sql.engine import SqlEngine

ROWS = 3000

# A canned reporting workload: the same query shapes re-run with the same
# parameters (the paper's exact-match sweet spot).
CANNED = [
    "select count(*) from sales where region = 'north' and status = 'gold'",
    ("select region, count(*) n from sales "
     "where status = 'gold' group by region"),
    ("select count(*) from sales s, customers c "
     "where s.cust_id = c.cust_id and s.region = 'north' "
     "and c.segment = 'vip'"),
    ("select c.segment, sum(s.amount) total from sales s, customers c "
     "where s.cust_id = c.cust_id and s.status = 'gold' "
     "group by c.segment"),
]


def build_engine():
    from repro.learnopt.feedback import CaptureSettings

    cluster = MppCluster(num_dns=2)
    # A reporting system tightens the capture threshold: even 1.5x step
    # errors are worth fixing for queries that run every day.
    engine = SqlEngine(cluster,
                       capture_settings=CaptureSettings(error_threshold=0.25))
    engine.execute("create table sales (sale_id int primary key, cust_id int,"
                   " region text, status text, amount double)")
    engine.execute("create table customers (cust_id int primary key,"
                   " segment text)")
    # Correlation: 'north' sales are almost always 'gold'; elsewhere gold is
    # rare.  Independence-based estimation is off by a large factor.
    sales = []
    for i in range(ROWS):
        region = "north" if i % 4 == 0 else ("south", "east", "west")[i % 3]
        if region == "north":
            status = "gold" if i % 10 != 0 else "silver"
        else:
            status = "gold" if i % 50 == 0 else "silver"
        sales.append(f"({i}, {i % 300}, '{region}', '{status}', {i % 97}.0)")
    engine.execute("insert into sales values " + ",".join(sales))
    customers = [f"({i}, '{'vip' if i % 20 == 0 else 'mass'}')"
                 for i in range(300)]
    engine.execute("insert into customers values " + ",".join(customers))
    engine.execute("analyze")
    return engine


def qerrors(engine, sql):
    """Max per-step q-error of one execution."""
    result = engine.execute(sql)
    worst = 1.0
    # Re-walk the executed plan: compare estimates with actuals.
    for line in result.plan_text.splitlines():
        if "est=" in line and "actual=" in line:
            est = float(line.split("est=")[1].split(",")[0])
            actual = float(line.split("actual=")[1].split(")")[0])
            if actual > 0 and est > 0:
                worst = max(worst, est / actual, actual / est)
    return worst


def run_loop():
    engine = build_engine()
    before = {sql: qerrors(engine, sql) for sql in CANNED}   # pass 1: capture
    after = {sql: qerrors(engine, sql) for sql in CANNED}    # pass 2: consume
    return engine, before, after


def render(before, after):
    lines = [f"{'query':8} {'q-error before':>16} {'q-error after':>16}",
             "-" * 44]
    for i, sql in enumerate(CANNED):
        lines.append(f"Q{i + 1:<7} {before[sql]:>16.1f} {after[sql]:>16.1f}")
    return "\n".join(lines)


def test_fig5_learning_loop(benchmark, artifact):
    engine, before, after = benchmark.pedantic(run_loop, rounds=1,
                                               iterations=1)
    artifact("fig5_learning_loop", render(before, after))
    # Before learning at least one canned query is badly mis-estimated.
    assert max(before.values()) > 3.0
    # After learning every canned query's worst step is nearly exact.
    assert all(err <= 1.5 for err in after.values()), after
    # And improvements are monotone: learning never makes a query worse.
    for sql in CANNED:
        assert after[sql] <= before[sql] * 1.01


class TestLearningDynamics:
    def test_hit_rate_grows(self):
        engine = build_engine()
        for sql in CANNED:
            engine.execute(sql)
        hits_first = engine.plan_store.hits
        for sql in CANNED:
            engine.execute(sql)
        assert engine.plan_store.hits > hits_first

    def test_store_is_bounded_work(self):
        engine = build_engine()
        for _ in range(3):
            for sql in CANNED:
                engine.execute(sql)
        # Re-running canned queries must not grow the store unboundedly.
        assert len(engine.plan_store) <= 16
