"""Ablation — GTM-lite design choices.

Three sweeps DESIGN.md calls out:

1. **Multi-shard fraction sweep** (0% .. 100%) at 8 nodes: GTM-lite's
   advantage is proportional to the single-shard share — the paper
   justifies the design with "10% or less multi-shard transactions in
   common OLTP workloads".  As the fraction grows, GTM-lite converges
   toward the baseline.
2. **Merge-logic overhead**: running with DOWNGRADE/UPGRADE disabled buys
   no measurable throughput — the fixes are snapshot-side bookkeeping
   ("DOWNGRADE does not require physical reverse of local commits").
3. **LCO depth**: MergeSnapshot walks the local commit order, so merge cost
   grows linearly with LCO length — which is why the engine garbage-
   collects the LCO against the GTM's snapshot horizon.
"""

import time

import pytest

from repro.cluster.txn import TxnMode
from repro.core.experiment import run_cell
from repro.core.gtm import GlobalTransactionManager
from repro.core.merge import merge_snapshots
from repro.txn.manager import LocalTransactionManager

NODES = 8
FRACTIONS = (0.0, 0.1, 0.3, 0.6, 1.0)
LCO_DEPTHS = (0, 128, 512, 2048)


def sweep_fractions():
    rows = []
    for fraction in FRACTIONS:
        lite = run_cell(NODES, fraction, TxnMode.GTM_LITE,
                        warehouses_per_node=2, clients_per_dn=6,
                        txns_per_client=15)
        base = run_cell(NODES, fraction, TxnMode.CLASSICAL,
                        warehouses_per_node=2, clients_per_dn=6,
                        txns_per_client=15)
        rows.append((fraction, lite.throughput_tps, base.throughput_tps))
    return rows


def sweep_merge_modes():
    rows = []
    for mode in (TxnMode.GTM_LITE, TxnMode.GTM_LITE_NO_DOWNGRADE,
                 TxnMode.GTM_LITE_NO_UPGRADE):
        result = run_cell(NODES, 0.1, mode, warehouses_per_node=2,
                          clients_per_dn=6, txns_per_client=15)
        rows.append((mode.value, result.throughput_tps))
    return rows


def sweep_lco_depth():
    """Measured wall time of merge_snapshots as the LCO grows."""
    gtm = GlobalTransactionManager()
    rows = []
    for depth in LCO_DEPTHS:
        ltm = LocalTransactionManager("dn0")
        for i in range(depth):
            gxid = gtm.begin()
            xid = ltm.begin(gxid=gxid)
            ltm.record_write(xid, "t", i)
            ltm.commit(xid)
            gtm.commit(gxid)
        global_snapshot = gtm.snapshot()
        local_snapshot = ltm.local_snapshot()
        iterations = 400
        t0 = time.perf_counter()
        for _ in range(iterations):
            merge_snapshots(global_snapshot, local_snapshot, ltm, gtm)
        per_merge_us = (time.perf_counter() - t0) / iterations * 1e6
        rows.append((depth, per_merge_us))
    return rows


def render(fraction_rows, mode_rows, lco_rows):
    lines = [f"multi-shard fraction sweep ({NODES} nodes)",
             f"{'ms-fraction':>12} {'gtm-lite tps':>14} {'baseline tps':>14} "
             f"{'advantage':>10}",
             "-" * 54]
    for fraction, lite, base in fraction_rows:
        lines.append(f"{fraction:>12.0%} {lite:>14.0f} {base:>14.0f} "
                     f"{lite / base:>9.2f}x")
    lines += ["", "merge-logic overhead (10% multi-shard)",
              f"{'variant':>24} {'tps':>10}", "-" * 36]
    for name, tps in mode_rows:
        lines.append(f"{name:>24} {tps:>10.0f}")
    lines += ["", "MergeSnapshot cost vs LCO depth",
              f"{'LCO entries':>12} {'us per merge':>14}", "-" * 28]
    for depth, per_merge in lco_rows:
        lines.append(f"{depth:>12} {per_merge:>14.1f}")
    return "\n".join(lines)


def test_ablation_gtm_lite(benchmark, artifact):
    fraction_rows, mode_rows, lco_rows = benchmark.pedantic(
        lambda: (sweep_fractions(), sweep_merge_modes(), sweep_lco_depth()),
        rounds=1, iterations=1)
    artifact("ablation_gtm_lite", render(fraction_rows, mode_rows, lco_rows))

    advantages = [lite / base for _, lite, base in fraction_rows]
    # The advantage shrinks as multi-shard work grows, and is large at 0%.
    assert advantages[0] > 2.0
    assert advantages[-1] < 1.25
    assert advantages[0] == max(advantages)

    tps = [t for _, t in mode_rows]
    # Disabling either fix buys < 5%: the safety machinery is nearly free.
    assert max(tps) / min(tps) < 1.05

    # Merge cost grows with LCO depth (hence the pruning horizon matters).
    assert lco_rows[-1][1] > lco_rows[0][1] * 5
