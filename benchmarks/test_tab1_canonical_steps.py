"""Table I — the logical canonical form in the plan store.

Paper scenario: ``select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1 =
OLAP.t2.a2 and OLAP.t1.b1 > 10`` runs with estimates far off the actual
cardinalities; the producer captures the scan-on-t1 and join steps as two
plan-store rows keyed by the MD5 of their canonical prefix-form text.
"""

import pytest

from repro.cluster import MppCluster
from repro.sql.engine import SqlEngine

QUERY = ("select * from olap.t1, olap.t2 "
         "where olap.t1.a1 = olap.t2.a2 and olap.t1.b1 > 10")


def build_engine():
    cluster = MppCluster(num_dns=2)
    engine = SqlEngine(cluster)
    engine.execute("create table olap.t1 (a1 int primary key, b1 int)")
    engine.execute("create table olap.t2 (a2 int primary key, b2 int)")
    # Correlated b1: uniform-independence stats badly misestimate b1 > 10.
    rows1 = ",".join(f"({i}, {0 if i < 150 else i})" for i in range(250))
    rows2 = ",".join(f"({i}, {i})" for i in range(250))
    engine.execute(f"insert into olap.t1 values {rows1}")
    engine.execute(f"insert into olap.t2 values {rows2}")
    return engine


def run_scenario():
    engine = build_engine()
    engine.execute(QUERY)
    return engine


@pytest.fixture(scope="module")
def engine():
    return build_engine()


def test_tab1_capture(benchmark, artifact):
    engine = benchmark.pedantic(
        lambda: (lambda e: (e.execute(QUERY), e))(build_engine())[1],
        rounds=1, iterations=1,
    )
    artifact("tab1_logical_canonical_form", engine.plan_store.render_table())
    steps = sorted(r.step_text for r in engine.plan_store.records())
    assert "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))" in steps
    assert any(s.startswith("JOIN(") for s in steps)


class TestTable1Shape:
    def test_scan_and_join_steps_captured(self, engine):
        engine.execute(QUERY)
        steps = sorted(r.step_text for r in engine.plan_store.records())
        assert any(s.startswith("JOIN(SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10)), "
                                "SCAN(OLAP.T2)") for s in steps), steps
        assert "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))" in steps

    def test_join_entry_embeds_full_child_definitions(self, engine):
        engine.execute(QUERY)
        join_steps = [r.step_text for r in engine.plan_store.records()
                      if r.step_text.startswith("JOIN(")]
        assert join_steps
        # The join row "specifies the full definition of the children".
        assert "PREDICATE(OLAP.T1.B1>10)" in join_steps[0]
        assert "PREDICATE(OLAP.T1.A1=OLAP.T2.A2)" in join_steps[0]

    def test_estimates_differ_from_actuals(self, engine):
        engine.execute(QUERY)
        for record in engine.plan_store.records():
            assert record.estimated_rows != record.actual_rows

    def test_predicate_order_does_not_fragment(self, engine):
        engine.execute(QUERY)
        size_before = len(engine.plan_store)
        engine.execute("select * from olap.t1, olap.t2 "
                       "where olap.t1.b1 > 10 and olap.t1.a1 = olap.t2.a2")
        assert len(engine.plan_store) == size_before

    def test_join_order_does_not_fragment(self, engine):
        engine.execute(QUERY)
        size_before = len(engine.plan_store)
        engine.execute("select * from olap.t2, olap.t1 "
                       "where olap.t2.a2 = olap.t1.a1 and olap.t1.b1 > 10")
        assert len(engine.plan_store) == size_before

    def test_md5_keys(self, engine):
        engine.execute(QUERY)
        for record in engine.plan_store.records():
            assert len(record.key) == 32
            int(record.key, 16)
