"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table or figure from the paper, asserts the
paper's qualitative shape, and writes the rendered artifact to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote it.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def artifact():
    """Write an experiment artifact; returns the writer function."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return write
