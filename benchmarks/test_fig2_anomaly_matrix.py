"""Figure 2 — the anomaly scenarios across protocol variants.

Regenerates a matrix: for each protocol variant (naive local snapshots,
GTM-lite without DOWNGRADE, GTM-lite without UPGRADE, full GTM-lite,
classical baseline), does the Fig. 2 interleaving produce a consistent
read?  The paper's claim: both anomalies exist without Algorithm 1 and are
resolved by it.
"""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.storage import Column, DataType, TableSchema
from repro.storage.table import shard_of_value

MODES = [TxnMode.GTM_LITE_NAIVE, TxnMode.GTM_LITE_NO_DOWNGRADE,
         TxnMode.GTM_LITE_NO_UPGRADE, TxnMode.GTM_LITE, TxnMode.CLASSICAL]


def seeded(mode):
    cluster = MppCluster(num_dns=2, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    ka, kb = 0, 1   # ints 0 and 1 land on DN0 and DN1 under modulo sharding
    session = cluster.session()
    init = session.begin(multi_shard=True)
    init.insert("t", {"k": ka, "v": 0})
    init.insert("t", {"k": kb, "v": 0})
    init.commit()
    return cluster, session, ka, kb


def anomaly2_consistent(mode) -> bool:
    """Fig. 2: reader must see neither T1 nor the dependent T3."""
    _, session, ka, kb = seeded(mode)
    t1 = session.begin(multi_shard=True)
    t1.update("t", ka, {"v": 1})
    t1.update("t", kb, {"v": 1})
    t2 = session.begin(multi_shard=True)
    b = t2.read("t", kb)["v"]
    t1.commit()
    t3 = session.begin(multi_shard=False)
    t3.update("t", ka, {"v": 2})
    t3.commit()
    a = t2.read("t", ka)["v"]
    t2.commit()
    return (a, b) == (0, 0)


def anomaly1_consistent(mode) -> bool:
    """Writer committed at GTM, unconfirmed on one DN: all-or-nothing?"""
    _, session, ka, kb = seeded(mode)
    t1 = session.begin(multi_shard=True)
    t1.update("t", ka, {"v": 7})
    t1.update("t", kb, {"v": 7})
    steps = t1.commit_stepwise()
    steps.prepare_all()
    steps.commit_at_gtm()
    if mode is not TxnMode.CLASSICAL:
        steps.confirm_at(shard_of_value(ka, 2))
    t2 = session.begin(multi_shard=True)
    a = t2.read("t", ka)["v"]
    b = t2.read("t", kb)["v"]
    steps.finish()
    t2.commit()
    return (a, b) in ((7, 7), (0, 0))


def build_matrix():
    rows = []
    for mode in MODES:
        rows.append((mode.value,
                     anomaly1_consistent(mode),
                     anomaly2_consistent(mode)))
    return rows


def render(rows):
    header = f"{'protocol variant':28}  anomaly1-safe  anomaly2-safe"
    lines = [header, "-" * len(header)]
    for name, a1, a2 in rows:
        lines.append(f"{name:28}  {str(a1):13}  {str(a2):13}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def matrix():
    return build_matrix()


def test_fig2_matrix(benchmark, artifact):
    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    artifact("fig2_anomaly_matrix", render(rows))
    by_mode = {name: (a1, a2) for name, a1, a2 in rows}
    assert by_mode["gtm_lite_naive"] == (False, False)
    assert by_mode["gtm_lite"] == (True, True)
    assert by_mode["classical"] == (True, True)


class TestAnomalyMatrixShape:
    def test_naive_fails_both(self, matrix):
        by_mode = {name: (a1, a2) for name, a1, a2 in matrix}
        assert by_mode["gtm_lite_naive"] == (False, False)

    def test_each_fix_covers_exactly_its_anomaly(self, matrix):
        by_mode = {name: (a1, a2) for name, a1, a2 in matrix}
        assert by_mode["gtm_lite_no_downgrade"] == (True, False)
        assert by_mode["gtm_lite_no_upgrade"] == (False, True)

    def test_full_gtm_lite_and_baseline_are_safe(self, matrix):
        by_mode = {name: (a1, a2) for name, a1, a2 in matrix}
        assert by_mode["gtm_lite"] == (True, True)
        assert by_mode["classical"] == (True, True)
