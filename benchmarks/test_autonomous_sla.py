"""Sec. IV-A — SLA-driven workload management.

The paper's autonomous database must "monitor and control query execution
... to achieve targeted SLA" under workloads no DBA could chase by hand.
We run a closed-loop workload of 64 clients against a system whose
per-query service time degrades quadratically with the number of
concurrently executing queries (lock/buffer contention), and compare:

* a static mis-configured concurrency limit (admit all 64),
* the workload manager's AIMD self-optimizing loop.

Expected shape: the managed run converges to a lower concurrency limit and
meets the p95 latency SLA; the unmanaged run runs at full contention and
blows through it — while also completing *fewer* queries per second.
"""

import heapq

import pytest

from repro.autonomous.infostore import InformationStore
from repro.autonomous.workload import Sla, WorkloadManager
from repro.common.rng import make_rng

SLA_P95_US = 40_000.0
CLIENTS = 64
QUERIES = 1500
BASE_US = 1_000.0


def service_time_us(running: int, rng) -> float:
    """Contention model: quadratic degradation with concurrency."""
    return BASE_US * (1.0 + (running / 8.0) ** 2) * (0.9 + 0.2 * rng.random())


def run_workload(adaptive: bool, seed: int = 11):
    rng = make_rng(seed)
    store = InformationStore()
    manager = WorkloadManager(
        store, Sla("gold", p95_latency_us=SLA_P95_US),
        initial_concurrency=CLIENTS,
        max_concurrency=CLIENTS if not adaptive else 256,
        min_concurrency=1, max_queue=CLIENTS + 1)

    now = 0.0
    finish_heap = []
    submitted = 0
    completed = 0

    def start(admission):
        service = service_time_us(manager.running_count, rng)
        heapq.heappush(finish_heap, (now + service, id(admission), admission))

    def submit():
        nonlocal submitted
        submitted += 1
        slot = manager.submit(now)
        if slot is not None:
            start(slot)

    for _ in range(CLIENTS):
        submit()
    while finish_heap:
        finish_time, _, admission = heapq.heappop(finish_heap)
        now = finish_time
        for slot in manager.finish(admission, now):
            start(slot)
        completed += 1
        if adaptive and completed % 25 == 0:
            manager.adjust(now)
        if submitted < QUERIES:
            submit()   # closed loop: the client issues its next query

    summary = store.summary("query_latency_us", last_n=300)
    return {
        "p95_ms": summary.p95 / 1000.0,
        "mean_ms": summary.mean / 1000.0,
        "throughput_qps": completed / (now / 1_000_000.0),
        "final_limit": manager.concurrency_limit,
        "adjustments": len(manager.adjustments),
    }


def run_comparison():
    return {
        "unmanaged (limit=64)": run_workload(adaptive=False),
        "self-optimizing AIMD": run_workload(adaptive=True),
    }


def render(results):
    lines = [f"{'configuration':24} {'p95 (ms)':>10} {'mean (ms)':>10} "
             f"{'qps':>8} {'final limit':>12} {'adjustments':>12}",
             "-" * 82]
    for name, r in results.items():
        lines.append(
            f"{name:24} {r['p95_ms']:>10.1f} {r['mean_ms']:>10.1f} "
            f"{r['throughput_qps']:>8.0f} {r['final_limit']:>12} "
            f"{r['adjustments']:>12}")
    lines.append(f"\nSLA target: p95 <= {SLA_P95_US / 1000.0:.0f} ms")
    return "\n".join(lines)


def test_autonomous_sla(benchmark, artifact):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    artifact("autonomous_sla", render(results))
    unmanaged = results["unmanaged (limit=64)"]
    managed = results["self-optimizing AIMD"]
    assert unmanaged["p95_ms"] > SLA_P95_US / 1000.0, \
        "the mis-configured baseline must violate the SLA"
    assert managed["p95_ms"] <= SLA_P95_US / 1000.0 * 1.15, \
        f"AIMD failed to approach the SLA: {managed}"
    assert managed["final_limit"] < CLIENTS
    assert managed["adjustments"] > 0
    # Backing off contention also improves throughput (congestion collapse).
    assert managed["throughput_qps"] > unmanaged["throughput_qps"]
