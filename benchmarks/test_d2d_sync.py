"""Sec. IV-B.2 — direct device-to-device sync vs sync through the cloud.

The paper: "direct communication between devices based on Bluetooth is at
least 10X faster than communications through the Internet".  We measure the
simulated time and bytes to propagate a batch of updates between two nearby
devices: (a) direct ad-hoc sync, (b) the current-MBaaS baseline where both
devices sync through the cloud.
"""

import pytest

from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform, SyncPolicy

UPDATES = 20


def run_direct():
    platform = CollabPlatform(policy=SyncPolicy.P2P)
    a = platform.add_node("phone_a", NodeKind.DEVICE)
    b = platform.add_node("phone_b", NodeKind.DEVICE)
    platform.connect_nearby("phone_a", "phone_b")
    for i in range(UPDATES):
        a.put(f"photo/{i}", {"bytes": "x" * 50, "n": i})
    t0 = platform.clock.now_us
    platform.converge()
    assert all(b.get(f"photo/{i}") is not None for i in range(UPDATES))
    return platform.clock.now_us - t0, platform.fabric.bytes_sent


def run_via_cloud():
    platform = CollabPlatform(policy=SyncPolicy.CLOUD_ONLY)
    platform.add_node("cloud", NodeKind.CLOUD)
    a = platform.add_node("phone_a", NodeKind.DEVICE)
    b = platform.add_node("phone_b", NodeKind.DEVICE)
    for i in range(UPDATES):
        a.put(f"photo/{i}", {"bytes": "x" * 50, "n": i})
    t0 = platform.clock.now_us
    platform.converge()
    assert all(b.get(f"photo/{i}") is not None for i in range(UPDATES))
    return platform.clock.now_us - t0, platform.fabric.bytes_sent


def run_comparison():
    return {"direct_d2d": run_direct(), "via_cloud": run_via_cloud()}


def render(results):
    lines = [f"{'path':12} {'sync time (ms)':>16} {'bytes on the wire':>20}",
             "-" * 50]
    for name, (time_us, bytes_sent) in results.items():
        lines.append(f"{name:12} {time_us / 1000.0:>16.1f} {bytes_sent:>20}")
    d, c = results["direct_d2d"][0], results["via_cloud"][0]
    lines.append(f"\nspeedup: {c / d:.1f}x (paper: 'at least 10X faster')")
    return "\n".join(lines)


def test_d2d_vs_cloud(benchmark, artifact):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    artifact("d2d_sync_vs_cloud", render(results))
    direct_time, direct_bytes = results["direct_d2d"]
    cloud_time, cloud_bytes = results["via_cloud"]
    assert cloud_time / direct_time >= 10.0
    # Relaying through the cloud also moves every byte twice.
    assert cloud_bytes > direct_bytes * 1.5


class TestOfflineOperation:
    def test_d2d_works_without_internet(self):
        """The paper: direct sync 'works well in environments ... with no
        or poor Internet connections'."""
        platform = CollabPlatform(policy=SyncPolicy.P2P)
        platform.add_node("cloud", NodeKind.CLOUD)
        a = platform.add_node("a", NodeKind.DEVICE)
        b = platform.add_node("b", NodeKind.DEVICE)
        platform.connect_nearby("a", "b")
        platform.disconnect("a", "cloud")      # no Internet
        platform.disconnect("b", "cloud")
        a.put("doc", "offline-edit")
        platform.converge()
        assert b.get("doc") == "offline-edit"

    def test_cloud_catches_up_when_reconnected(self):
        platform = CollabPlatform(policy=SyncPolicy.P2P)
        cloud = platform.add_node("cloud", NodeKind.CLOUD)
        a = platform.add_node("a", NodeKind.DEVICE)
        b = platform.add_node("b", NodeKind.DEVICE)
        platform.connect_nearby("a", "b")
        platform.disconnect("a", "cloud")
        platform.disconnect("b", "cloud")
        a.put("doc", 1)
        platform.converge()
        platform.reconnect("a", "cloud")
        platform.converge()
        assert cloud.get("doc") == 1
