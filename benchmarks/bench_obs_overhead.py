"""Telemetry overhead: the same TPC-C-lite run with obs on vs off.

Every transaction records spans, wait events, activity entries and metric
samples; ``MppCluster(obs_enabled=False)`` turns the whole subsystem off
(``cluster.obs is None`` and every instrumentation site no-ops).  This
script measures the CPU cost of that instrumentation — simulated results
are identical either way, which is also asserted here.

Measurement methodology (the ratio is gated in CI, so it has to be robust
against a noisy shared host):

* ``time.process_time`` instead of wall clock — scheduler preemption on a
  loaded machine inflates wall time for whichever mode happens to be
  running, but barely moves consumed-CPU time.
* GC is collected *before* and disabled *during* the timed region, so a
  generational collection triggered by an earlier run can't land inside
  one mode's timing.
* On/off runs strictly interleave, spreading any slow drift in host load
  evenly across both modes.
* The headline statistic is the **ratio of minimums**.  Noise on a busy
  host is strictly additive, so the minimum of many repeats is the best
  estimate of the true cost of each mode; medians are reported alongside.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py
Writes ``BENCH_obs_overhead.json`` next to this file (under ``out/``).
"""

import gc
import json
import statistics
import time
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

NUM_DNS = 4
WAREHOUSES = 4
CLIENTS_PER_DN = 4
TXNS_PER_CLIENT = 30
#: Interleaved on/off pairs.  The min over this many repeats is stable to
#: a few percent even on a contended container.
PAIRS = 12
#: CI gate (ISSUE: obs_enabled must cost < 1.2x).  Leave a little headroom
#: below the target when hacking on the hot paths: the measured ratio sits
#: around 1.15-1.19 on an idle host.
MAX_RATIO = 1.2

OUT_PATH = Path(__file__).parent / "out" / "BENCH_obs_overhead.json"


def one_run(obs_enabled: bool):
    cluster = MppCluster(num_dns=NUM_DNS, obs_enabled=obs_enabled)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.2, seed=3)
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        result = run_oltp(cluster, workload, clients_per_dn=CLIENTS_PER_DN,
                          txns_per_client=TXNS_PER_CLIENT)
        elapsed_s = time.process_time() - t0
    finally:
        gc.enable()
    return elapsed_s, result


def main() -> None:
    # Warm both code paths (imports, bytecode specialization, allocator
    # arenas) before anything is timed.
    _, warm_on = one_run(True)
    _, warm_off = one_run(False)
    baseline = warm_on.as_dict()
    assert warm_off.as_dict() == baseline, \
        "obs_enabled changed simulation results"

    timings = {"obs_on": [], "obs_off": []}
    for _ in range(PAIRS):
        for key, enabled in (("obs_on", True), ("obs_off", False)):
            elapsed_s, result = one_run(enabled)
            timings[key].append(elapsed_s)
            # telemetry must never change what the simulation computes
            assert result.as_dict() == baseline, \
                "obs_enabled changed simulation results"

    on_min = min(timings["obs_on"])
    off_min = min(timings["obs_off"])
    on_med = statistics.median(timings["obs_on"])
    off_med = statistics.median(timings["obs_off"])
    ratio = on_min / off_min
    committed = baseline["committed"]
    report = {
        "benchmark": "obs_overhead",
        "config": {
            "num_dns": NUM_DNS,
            "warehouses": WAREHOUSES,
            "clients_per_dn": CLIENTS_PER_DN,
            "txns_per_client": TXNS_PER_CLIENT,
            "pairs": PAIRS,
            "timer": "process_time",
        },
        "committed_txns": committed,
        "min_s_obs_on": on_min,
        "min_s_obs_off": off_min,
        "median_s_obs_on": on_med,
        "median_s_obs_off": off_med,
        "overhead_ratio": ratio,
        "overhead_ratio_medians": on_med / off_med,
        "overhead_us_per_txn": (on_min - off_min) / committed * 1e6,
        "max_ratio": MAX_RATIO,
        "sim_results_identical": True,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"obs on : {on_min * 1e3:8.1f} ms min, {on_med * 1e3:8.1f} ms "
          f"median (of {PAIRS})")
    print(f"obs off: {off_min * 1e3:8.1f} ms min, {off_med * 1e3:8.1f} ms "
          f"median (of {PAIRS})")
    print(f"overhead: {ratio:.3f}x (mins), "
          f"{report['overhead_ratio_medians']:.3f}x (medians), "
          f"{report['overhead_us_per_txn']:.1f}us per committed txn")
    print(f"wrote {OUT_PATH}")
    assert ratio <= MAX_RATIO, (
        f"telemetry overhead {ratio:.3f}x exceeds the {MAX_RATIO}x gate")


if __name__ == "__main__":
    main()
