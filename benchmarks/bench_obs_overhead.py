"""Telemetry overhead: the same TPC-C-lite run with obs on vs off.

Every transaction records spans, wait events, activity entries and metric
samples; ``MppCluster(obs_enabled=False)`` turns the whole subsystem off
(``cluster.obs is None`` and every instrumentation site no-ops).  This
script measures the *wall-clock* cost of that instrumentation — simulated
results are identical either way, which is also asserted here.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py
Writes ``BENCH_obs_overhead.json`` next to this file (under ``out/``).
"""

import json
import statistics
import time
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

NUM_DNS = 4
WAREHOUSES = 4
CLIENTS_PER_DN = 4
TXNS_PER_CLIENT = 30
REPEATS = 5

OUT_PATH = Path(__file__).parent / "out" / "BENCH_obs_overhead.json"


def one_run(obs_enabled: bool):
    cluster = MppCluster(num_dns=NUM_DNS, obs_enabled=obs_enabled)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.2, seed=3)
    t0 = time.perf_counter()
    result = run_oltp(cluster, workload, clients_per_dn=CLIENTS_PER_DN,
                      txns_per_client=TXNS_PER_CLIENT)
    elapsed_s = time.perf_counter() - t0
    return elapsed_s, result


def main() -> None:
    timings = {"obs_on": [], "obs_off": []}
    baseline = None
    for _ in range(REPEATS):
        # alternate to spread warmup / cache effects evenly
        for key, enabled in (("obs_on", True), ("obs_off", False)):
            elapsed_s, result = one_run(enabled)
            timings[key].append(elapsed_s)
            # telemetry must never change what the simulation computes
            if baseline is None:
                baseline = result.as_dict()
            assert result.as_dict() == baseline, \
                "obs_enabled changed simulation results"

    on = statistics.median(timings["obs_on"])
    off = statistics.median(timings["obs_off"])
    committed = baseline["committed"]
    report = {
        "benchmark": "obs_overhead",
        "config": {
            "num_dns": NUM_DNS,
            "warehouses": WAREHOUSES,
            "clients_per_dn": CLIENTS_PER_DN,
            "txns_per_client": TXNS_PER_CLIENT,
            "repeats": REPEATS,
        },
        "committed_txns": committed,
        "median_s_obs_on": on,
        "median_s_obs_off": off,
        "overhead_ratio": on / off if off > 0 else None,
        "overhead_us_per_txn": (on - off) / committed * 1e6,
        "sim_results_identical": True,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"obs on : {on * 1e3:8.1f} ms (median of {REPEATS})")
    print(f"obs off: {off * 1e3:8.1f} ms (median of {REPEATS})")
    print(f"overhead: {report['overhead_ratio']:.2f}x, "
          f"{report['overhead_us_per_txn']:.1f}us per committed txn")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
