"""Ablation — anomaly *rates* under randomized adversarial schedules.

Figure 2 demonstrates that the anomalies exist; this ablation quantifies
how often they bite.  For each protocol variant we run many randomized
scenarios of the two adversarial shapes (a reader straddling a multi-shard
commit; a reader with an old global snapshot racing a dependent local
writer) and report the fraction of runs whose read was inconsistent.

Expected shape: the naive protocol is wrong in a large fraction of runs
(every run whose timing lands in the window); each partial fix eliminates
exactly its anomaly class; full GTM-lite and the classical baseline are
wrong in 0% of runs.
"""

import pytest

from repro.cluster import MppCluster, TxnMode
from repro.common.rng import make_rng
from repro.storage import Column, DataType, TableSchema

MODES = [TxnMode.GTM_LITE_NAIVE, TxnMode.GTM_LITE_NO_DOWNGRADE,
         TxnMode.GTM_LITE_NO_UPGRADE, TxnMode.GTM_LITE, TxnMode.CLASSICAL]
RUNS = 60
NUM_DNS = 3


def fresh(mode, num_keys):
    cluster = MppCluster(num_dns=NUM_DNS, mode=mode)
    cluster.create_table(TableSchema(
        "t", [Column("k", DataType.INT), Column("v", DataType.INT)], "k"))
    session = cluster.session()
    init = session.begin(multi_shard=True)
    for k in range(num_keys):
        init.insert("t", {"k": k, "v": 0})
    init.commit()
    return cluster, session


def anomaly1_trial(mode, rng) -> bool:
    """Reader straddles a half-confirmed multi-shard commit.

    Randomizes the key pair, the write value and which node confirms
    first.  Returns True if the reader's view was inconsistent.
    """
    num_keys = rng.randint(6, 12)
    cluster, session = fresh(mode, num_keys)
    ka = rng.randrange(num_keys)
    kb = rng.choice([k for k in range(num_keys)
                     if k % NUM_DNS != ka % NUM_DNS])
    value = rng.randint(1, 99)
    writer = session.begin(multi_shard=True)
    writer.update("t", ka, {"v": value})
    writer.update("t", kb, {"v": value})
    steps = writer.commit_stepwise()
    steps.prepare_all()
    steps.commit_at_gtm()
    if mode is not TxnMode.CLASSICAL:
        pending = steps.pending_nodes
        steps.confirm_at(rng.choice(pending))
    reader = session.begin(multi_shard=True)
    a = reader.read("t", ka)["v"]
    b = reader.read("t", kb)["v"]
    steps.finish()
    reader.commit()
    return (a, b) not in ((value, value), (0, 0))


def anomaly2_trial(mode, rng) -> bool:
    """Old global snapshot + dependent local commit (the Fig. 2 shape)."""
    num_keys = rng.randint(6, 12)
    cluster, session = fresh(mode, num_keys)
    ka = rng.randrange(num_keys)
    kb = rng.choice([k for k in range(num_keys)
                     if k % NUM_DNS != ka % NUM_DNS])
    t1 = session.begin(multi_shard=True)
    t1.update("t", ka, {"v": 1})
    t1.update("t", kb, {"v": 1})
    reader = session.begin(multi_shard=True)     # old global snapshot
    if rng.random() < 0.5:
        reader.read("t", kb)                     # pin kb's local snapshot early
    t1.commit()
    t3 = session.begin(multi_shard=False)        # dependent local write
    t3.update("t", ka, {"v": 2})
    t3.commit()
    a = reader.read("t", ka)["v"]
    b = reader.read("t", kb)["v"]
    reader.commit()
    # Consistent views: before T1 entirely (0,0) or after both (2,1).
    return (a, b) not in ((0, 0), (2, 1))


def measure():
    rates = {}
    for mode in MODES:
        rng = make_rng(2026)
        a1 = sum(anomaly1_trial(mode, rng) for _ in range(RUNS)) / RUNS
        a2 = sum(anomaly2_trial(mode, rng) for _ in range(RUNS)) / RUNS
        rates[mode.value] = (a1, a2)
    return rates


def render(rates):
    lines = [f"{'variant':26} {'anomaly-1 rate':>15} {'anomaly-2 rate':>15}",
             "-" * 58]
    for name, (a1, a2) in rates.items():
        lines.append(f"{name:26} {a1:>14.0%} {a2:>15.0%}")
    lines.append(f"\n({RUNS} randomized adversarial runs per cell)")
    return "\n".join(lines)


def test_ablation_anomaly_rate(benchmark, artifact):
    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    artifact("ablation_anomaly_rate", render(rates))
    assert rates["gtm_lite"] == (0.0, 0.0)
    assert rates["classical"] == (0.0, 0.0)
    naive_a1, naive_a2 = rates["gtm_lite_naive"]
    assert naive_a1 > 0.5 and naive_a2 > 0.5
    assert rates["gtm_lite_no_downgrade"][0] == 0.0   # UPGRADE present
    assert rates["gtm_lite_no_downgrade"][1] > 0.5    # DOWNGRADE missing
    assert rates["gtm_lite_no_upgrade"][0] > 0.5
    assert rates["gtm_lite_no_upgrade"][1] == 0.0
