"""Online resharding: add a 5th DN to a loaded 4-DN cluster, writes flowing.

Elastic scale-out (paper §II: GaussDB's shared-nothing clusters grow by
adding data nodes) is only online if the move protocol keeps OLTP
committing while slots copy, catch up and flip — and only useful if the
new node actually takes a fair share of the data.  This benchmark loads a
4-DN TPC-C-lite cluster, measures a baseline OLTP phase, then drives
``RebalanceCoordinator.add_dn`` with the same workload pumping through
every catch-up window, and finally measures a post-move phase.

Asserted gates (CI fails on regression):

* OLTP p95 latency **during the move** within ``P95_BOUND``x of the
  pre-move baseline (writes never stop),
* post-move per-DN row skew (max/mean - 1 over hash-table rows) at most
  ``SKEW_BOUND`` — the new node holds a fair share,
* every move settled (no pending state), rows copied > 0, and the
  post-move transaction phase commits at baseline latency shape,
* a follow-up online ``remove_dn`` conserves every row.

Run:  PYTHONPATH=src python benchmarks/bench_resharding.py
Writes ``BENCH_resharding.json`` next to this file (under ``out/``).
"""

import json
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.cluster.rebalance import RebalanceCoordinator
from repro.storage.table import Distribution
from repro.wlm import Priority, ResourceGroup, WlmConfig
from repro.wlm.driver import percentile
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

OUT_PATH = Path(__file__).parent / "out" / "BENCH_resharding.json"

NUM_DNS = 4
WAREHOUSES = 20
BASE_TXNS = 200            # pre-move baseline phase
CATCHUP_TXNS = 50          # OLTP pumped through *each* catch-up window
POST_TXNS = 200            # post-move phase
P95_BOUND = 2.0            # during-move p95 vs. baseline
SKEW_BOUND = 0.10          # post-move per-DN row imbalance


def hash_row_counts(cluster):
    """Rows per active DN across the hash-distributed tables."""
    counts = {}
    for dn_index in cluster.dn_indices():
        dn = cluster.dns[dn_index]
        total = 0
        for table in cluster.catalog.tables():
            if cluster.catalog.schema(table).distribution \
                    is Distribution.REPLICATION:
                continue
            total += sum(1 for _ in dn.scan(table, dn.local_snapshot()))
        counts[dn_index] = total
    return counts


def skew_of(counts):
    mean = sum(counts.values()) / len(counts)
    return max(counts.values()) / mean - 1.0 if mean else 0.0


def main() -> None:
    config = WlmConfig(groups=[
        ResourceGroup("oltp", slots=16, priority=Priority.HIGH,
                      queue_limit=4096),
    ])
    cluster = MppCluster(num_dns=NUM_DNS, wlm_config=config)
    coordinator = RebalanceCoordinator(cluster)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.1, seed=11)
    session = cluster.session(track_costs=True)
    streams = [workload.stream(home_warehouse=w, seed_offset=w)
               for w in range(WAREHOUSES)]
    cursor = [0]

    def pump(n, sink):
        """Run ``n`` OLTP transactions, appending latencies to ``sink``."""
        for _ in range(n):
            t = cursor[0]
            cursor[0] += 1
            spec = next(streams[t % WAREHOUSES])
            start_us = session.now_us
            ticket = cluster.wlm.submit(group="oltp", now_us=start_us,
                                        tag=spec.kind)
            # run_transaction absorbs the double-write window's promotions
            # (a single-shard write straying onto a moving slot re-runs as
            # 2PC) and serialization retries; both stay in the latency.
            session.run_transaction(spec.body, multi_shard=spec.multi_shard)
            cluster.wlm.release(ticket, session.now_us)
            sink.append(session.now_us - start_us)

    # Phase 1: pre-move baseline on 4 DNs.
    base_latencies = []
    pump(BASE_TXNS, base_latencies)
    counts_before = hash_row_counts(cluster)

    # Phase 2: add DN #5 online; the same workload pumps through every
    # catch-up window (one per move batch) while slots copy and flip.
    during_latencies = []
    new_index = coordinator.add_dn(
        on_catchup=lambda: pump(CATCHUP_TXNS, during_latencies))
    counts_after = hash_row_counts(cluster)
    move_skew = skew_of(counts_after)

    # Phase 3: post-move phase — routing now includes the new DN.
    post_latencies = []
    pump(POST_TXNS, post_latencies)

    base_p95 = percentile(base_latencies, 95)
    during_p95 = percentile(during_latencies, 95)
    ratio = during_p95 / base_p95 if base_p95 > 0 else 1.0
    rows_copied = sum(m.rows_copied for m in coordinator.moves)

    assert during_latencies, "no OLTP ran inside the catch-up windows"
    assert coordinator.active_moves() == [], "moves left unsettled"
    assert rows_copied > 0, "expansion moved no rows"
    assert counts_after[new_index] > 0, "new DN holds no rows"
    assert ratio <= P95_BOUND, (
        f"during-move OLTP p95 {during_p95:.0f}us exceeds {P95_BOUND}x "
        f"baseline {base_p95:.0f}us")
    assert move_skew <= SKEW_BOUND, (
        f"post-move row skew {move_skew:.1%} exceeds {SKEW_BOUND:.0%}: "
        f"{counts_after}")

    # Phase 4: drain a DN back out, online, and conserve every row.
    total_before_remove = sum(hash_row_counts(cluster).values())
    remove_latencies = []
    coordinator.remove_dn(
        new_index, on_catchup=lambda: pump(CATCHUP_TXNS, remove_latencies))
    # The pump keeps inserting orders mid-drain, so compare against the
    # oracle recount, not the pre-drain snapshot.
    counts_final = hash_row_counts(cluster)
    assert new_index not in counts_final, "drained DN still active"
    assert sum(counts_final.values()) >= total_before_remove, \
        "rows lost draining a DN"
    assert coordinator.active_moves() == [], "drain left moves unsettled"

    report = {
        "benchmark": "resharding",
        "config": {
            "num_dns": NUM_DNS, "warehouses": WAREHOUSES,
            "base_txns": BASE_TXNS, "catchup_txns": CATCHUP_TXNS,
            "post_txns": POST_TXNS, "p95_bound": P95_BOUND,
            "skew_bound": SKEW_BOUND,
        },
        "baseline": {
            "p50_us": percentile(base_latencies, 50),
            "p95_us": base_p95,
            "row_counts": {str(k): v for k, v in counts_before.items()},
        },
        "during_move": {
            "txns": len(during_latencies),
            "p50_us": percentile(during_latencies, 50),
            "p95_us": during_p95,
        },
        "post_move": {
            "p50_us": percentile(post_latencies, 50),
            "p95_us": percentile(post_latencies, 95),
            "row_counts": {str(k): v for k, v in counts_after.items()},
            "row_skew": move_skew,
        },
        "during_p95_ratio": ratio,
        "rebalance": {
            "slots_moved": coordinator.slots_moved,
            "moves_completed": coordinator.moves_completed,
            "rows_copied": rows_copied,
            "rows_truncated": sum(m.rows_truncated
                                  for m in coordinator.moves),
        },
        "remove_dn": {
            "txns": len(remove_latencies),
            "p95_us": (percentile(remove_latencies, 95)
                       if remove_latencies else 0.0),
            "row_counts": {str(k): v for k, v in counts_final.items()},
        },
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'phase':12s} {'txns':>6s} {'p50':>12s} {'p95':>12s}")
    for name, lats in (("baseline", base_latencies),
                       ("during", during_latencies),
                       ("post", post_latencies),
                       ("remove", remove_latencies)):
        print(f"{name:12s} {len(lats):6d} {percentile(lats, 50):10.0f}us "
              f"{percentile(lats, 95):10.0f}us")
    print(f"during/baseline OLTP p95 ratio: {ratio:.2f}x (bound {P95_BOUND}x)")
    print(f"post-move row skew: {move_skew:.1%} (bound {SKEW_BOUND:.0%}), "
          f"per-DN rows {counts_after}")
    print(f"moved {coordinator.slots_moved} slots, "
          f"copied {rows_copied} rows")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
