"""Figure 11 — GMDB online schema evolution performance.

The paper reports "performance results with real MME data in virtualized
Linux clients and servers (3.0 GHz CPUs) connected through a 10Gbps
network" (the figure itself is a bar chart without digitized values).  We
regenerate the experiment on synthetic MME sessions (5-10 KB, Fig. 8
version chain) and report:

* read throughput: native-version reads vs upgrade-converted vs
  downgrade-converted reads,
* update path: delta-object sync vs whole-object sync (ops/s and bytes),
* availability: operations keep succeeding while a new schema version is
  registered mid-traffic (the ISSU property).

Expected shape: conversion costs a modest constant factor (the figure
shows same-order bars), deltas use a tiny fraction of full-object
bandwidth, and there is zero downtime.
"""

import pytest

from repro.common.rng import make_rng
from repro.gmdb.cluster import GmdbCluster
from repro.gmdb.delta import object_wire_size
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema, touch_session

SESSIONS = 120
OPS = 400


def fresh_cluster(max_version=8):
    cluster = GmdbCluster(num_dns=2, object_type="mme_session")
    for version in MME_VERSIONS:
        if version <= max_version:
            cluster.register_schema(version, mme_schema(version))
    return cluster


def load(cluster, version=5, count=SESSIONS):
    loader = cluster.connect("loader", version)
    gen = MmeSessionGenerator(version, seed=17)
    keys = []
    for i in range(count):
        obj = gen.session(i)
        loader.create(obj["imsi"], obj)
        keys.append(obj["imsi"])
    cluster.metrics.busy_us = 0.0
    cluster.metrics.bytes_sent = 0
    cluster.metrics.reads = cluster.metrics.writes = 0
    cluster.metrics.conversions = 0
    return keys


def measure_reads(client_version: int):
    """Ops/s for cache-miss reads at ``client_version`` over V5 objects."""
    cluster = fresh_cluster()
    keys = load(cluster, version=5)
    client = cluster.connect("reader", client_version)
    for i in range(OPS):
        key = keys[i % len(keys)]
        client.invalidate(key)
        client.read(key)
    return cluster.metrics.ops_per_second(), cluster.metrics.conversions


def measure_updates(use_delta: bool):
    """Ops/s and bytes for the update path, delta vs whole-object."""
    cluster = fresh_cluster()
    keys = load(cluster, version=5)
    client = cluster.connect("writer", 5)
    rng = make_rng(23)
    for key in keys:   # warm the client cache: measure the write path only
        client.read(key)
    cluster.metrics.busy_us = 0.0
    cluster.metrics.bytes_sent = 0
    cluster.metrics.reads = cluster.metrics.writes = 0
    for i in range(OPS):
        key = keys[i % len(keys)]
        if use_delta:
            client.update(key, lambda o: touch_session(o, rng))
        else:
            current = client.read(key)
            touch_session(current, rng)
            client.write_full(key, current)
    return cluster.metrics.ops_per_second(), cluster.metrics.bytes_sent


def run_experiment():
    results = {}
    results["read_native_v5"] = measure_reads(5)
    results["read_upgrade_v6"] = measure_reads(6)
    results["read_downgrade_v3"] = measure_reads(3)
    results["update_delta"] = measure_updates(use_delta=True)
    results["update_full_object"] = measure_updates(use_delta=False)
    return results


def render(results):
    lines = [f"{'operation':24} {'ops/s':>12} {'conversions/bytes':>18}",
             "-" * 58]
    for name, (ops, extra) in results.items():
        lines.append(f"{name:24} {ops:>12.0f} {extra:>18}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_fig11_schema_evolution(benchmark, artifact):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    artifact("fig11_gmdb_schema_evolution", render(results))
    native, _ = results["read_native_v5"]
    upgrade, upgrade_conversions = results["read_upgrade_v6"]
    downgrade, _ = results["read_downgrade_v3"]
    # Conversion costs a modest constant factor, not an order of magnitude.
    assert native / upgrade < 2.5
    assert native / downgrade < 2.5
    assert native > upgrade and native > downgrade
    assert upgrade_conversions == OPS
    # Delta sync: far less bandwidth and faster than whole-object writes.
    delta_ops, delta_bytes = results["update_delta"]
    full_ops, full_bytes = results["update_full_object"]
    assert delta_bytes < full_bytes / 20
    assert delta_ops > full_ops


class TestOnlineUpgradeAvailability:
    def test_no_downtime_during_schema_registration(self):
        """ISSU: traffic at V5 keeps flowing while V6 registers and a V6
        client joins; every operation must succeed."""
        cluster = fresh_cluster(max_version=5)
        keys = load(cluster, version=5, count=40)
        v5 = cluster.connect("steady", 5)
        rng = make_rng(31)
        failures = 0
        for i in range(120):
            key = keys[i % len(keys)]
            try:
                v5.update(key, lambda o: touch_session(o, rng))
            except Exception:
                failures += 1
            if i == 40:
                cluster.register_schema(6, mme_schema(6))   # online DDL
            if i == 60:
                v6 = cluster.connect("upgraded", 6)
                v6.read(keys[0])
            if i > 60 and i % 10 == 0:
                v6.update(keys[1], lambda o: o.__setitem__("nb_iot_mode", True))
        assert failures == 0
        # The upgraded client's new field survived mixed-version traffic.
        v6.invalidate(keys[1])
        assert v6.read(keys[1])["nb_iot_mode"] is True
