"""Example 1 — the unified multi-model query (Sec. II-B).

The paper's query joins a Gremlin graph traversal (suspects: people with
more than 3 recent calls to a target) and a time-series table expression
(cars seen speeding in the last 30 minutes) with relational tables
(car registrations, person records) in one SQL statement.
"""

import pytest

from repro.multimodel.mmdb import MultiModelDB

MINUTES = 60_000_000
CARS = 40
PEOPLE = 40

EXAMPLE1 = """
with cars (t, carid, juncid) as (
    select time, carid, juncid from gtimeseries('high_speed', 1800000000)
),
suspects (cid) as (
    select value from ggraph('g.V().hasLabel(''person'')
        .where(__.outE(''call'').has(''time'', gt(5)).inV().has(''cid'', 10000)
               .count().is(gt(3)))
        .values(''cid'')')
)
select s.cid, p.phone, p.photo, c.carid
from suspects s, cars c, car2cid cc, person p
where s.cid = cc.cid and cc.carid = c.carid and p.cid = s.cid
"""


def build_city():
    db = MultiModelDB()
    db.execute("create table car2cid (carid int primary key, cid int)")
    db.execute(
        "create table person (cid int primary key, phone text, photo text)")
    person_rows = ",".join(
        f"({10000 + i}, 'ph-{i}', 'photo-{i}')" for i in range(PEOPLE))
    car_rows = ",".join(f"({i}, {10000 + i})" for i in range(CARS))
    db.execute(f"insert into person values {person_rows}")
    db.execute(f"insert into car2cid values {car_rows}")

    for i in range(PEOPLE):
        db.graph.add_vertex(10000 + i, "person", cid=10000 + i)
    # cid 10001 calls the target (10000) five times recently: a suspect.
    for t in (10, 20, 30, 40, 50):
        db.graph.add_edge(10001, 10000, "call", time=t)
    # cid 10002 calls twice: not a suspect; 10003's calls are too old.
    for t in (15, 25):
        db.graph.add_edge(10002, 10000, "call", time=t)
    for t in (1, 2, 3, 4, 5):
        db.graph.add_edge(10003, 10000, "call", time=t)

    series = db.timeseries.create_series("high_speed", ["carid", "juncid"])
    db.set_now_us(1000 * MINUTES)
    # suspect's car (carid 1) seen twice recently, once long ago
    for t, car in [(985, 1), (995, 1), (200, 1), (990, 2), (992, 3), (300, 9)]:
        series.append(t * MINUTES, carid=car, juncid=car % 7)
    return db


def run_query(db):
    return db.execute(EXAMPLE1)


@pytest.fixture(scope="module")
def city():
    return build_city()


def test_ex1_unified_query(benchmark, artifact):
    db = build_city()
    result = benchmark.pedantic(lambda: run_query(db), rounds=1, iterations=1)
    lines = ["  ".join(result.columns)]
    lines += ["  ".join(str(v) for v in row) for row in result.rows]
    artifact("ex1_multimodel_query", "\n".join(lines))
    assert result.columns == ["cid", "phone", "photo", "carid"]
    assert result.rowcount == 2           # two recent sightings of car 1
    assert all(row[0] == 10001 for row in result.rows)


class TestExample1Pieces:
    def test_suspect_logic(self, city):
        suspects = city.gremlin(
            "g.V().hasLabel('person')"
            ".where(__.outE('call').has('time', gt(5)).inV()"
            ".has('cid', 10000).count().is(gt(3))).values('cid')")
        assert suspects == [10001]

    def test_time_window(self, city):
        rows = city.query(
            "select carid from gtimeseries('high_speed', 1800000000)")
        assert sorted(int(r["carid"]) for r in rows) == [1, 1, 2, 3]

    def test_plan_integrates_table_functions(self, city):
        plan = city.execute("explain " + EXAMPLE1.strip()).plan_text \
            if False else None
        # EXPLAIN of CTE queries works through the engine directly:
        result = city.sql.execute("explain select * from "
                                  "gtimeseries('high_speed', 1800000000)")
        assert "TableFunction gtimeseries" in result.plan_text
