"""Figure 8 — the MME schema upgrade/downgrade matrix.

Regenerates the exact V3/V5/V6/V7/V8 matrix: one-step upgrades U1..U4,
one-step downgrades D1..D4, X everywhere else.
"""

import pytest

from repro.gmdb.schema import SchemaRegistry
from repro.workloads.mme import MME_VERSIONS, mme_schema


def build_matrix():
    registry = SchemaRegistry("mme_session")
    for version in MME_VERSIONS:
        registry.register(version, mme_schema(version))
    return registry.conversion_matrix()


def render(matrix):
    labeled = {}
    # Number the U/D cells the way the figure does (U1 = 3->5, D1 = 5->3...)
    for i, (a, b) in enumerate(zip(MME_VERSIONS, MME_VERSIONS[1:]), start=1):
        labeled[(a, b)] = f"U{i}"
        labeled[(b, a)] = f"D{i}"
    header = "MME  " + "".join(f"{'V' + str(v):>6}" for v in MME_VERSIONS)
    lines = [header, "-" * len(header)]
    for a in MME_VERSIONS:
        cells = []
        for b in MME_VERSIONS:
            cell = labeled.get((a, b), matrix[(a, b)])
            cells.append(f"{cell:>6}")
        lines.append(f"V{a:<3} " + "".join(cells))
    return "\n".join(lines)


def test_fig8_matrix(benchmark, artifact):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    artifact("fig8_mme_schema_matrix", render(matrix))
    for i, a in enumerate(MME_VERSIONS):
        for j, b in enumerate(MME_VERSIONS):
            if i == j:
                assert matrix[(a, b)] == "-"
            elif j == i + 1:
                assert matrix[(a, b)] == "U", (a, b)
            elif j == i - 1:
                assert matrix[(a, b)] == "D", (a, b)
            else:
                assert matrix[(a, b)] == "X", (a, b)


class TestMatrixContent:
    def test_upgrades_add_fields(self):
        registry = SchemaRegistry("mme_session")
        added = []
        for version in MME_VERSIONS:
            added.append(registry.register(version, mme_schema(version)))
        # V3 is the base; every later version appends fields.
        assert added[0] == []
        assert all(len(changes) >= 2 for changes in added[1:])
