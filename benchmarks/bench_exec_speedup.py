"""Executor speedup: columnar batches + plan cache vs the seed row path.

The same canned reporting stream (the paper's Sec. II-C workload shape:
repeated template instances over a column-oriented fact table) runs on two
engines —

* **fast**: ``batch_enabled=True`` with the prepared-statement plan cache
  (repeats skip lexer/parser/binder/planner and execute numpy column
  batches end-to-end), and
* **base**: ``batch_enabled=False, plan_cache_size=0`` — the seed
  row-at-a-time volcano executor, replanning every statement.

Simulated results are identical either way (rows, columns, simulated
elapsed time) — asserted on every run.  The headline is real wall-clock
(process CPU) throughput; CI gates both the speedup floor and the plan
cache's steady-state hit rate.

Methodology mirrors bench_obs_overhead.py: process_time, GC pinned outside
timed regions, strictly interleaved fast/base runs, ratio of minimums.

Run:  PYTHONPATH=src python benchmarks/bench_exec_speedup.py
Writes ``BENCH_exec_speedup.json`` next to this file (under ``out/``).
"""

import gc
import json
import statistics
import time
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.common.rng import make_rng
from repro.sql.engine import SqlEngine

NUM_DNS = 2
SALES_ROWS = 8000
CUSTOMERS = 400
#: Untimed rounds first: the learning loop converges (captures stop, plans
#: pin in the cache) and both code paths warm up.
WARMUP_ROUNDS = 2
TIMED_ROUNDS = 10
PAIRS = 5
#: CI gates (ISSUE: >= 5x throughput at >= 90% steady-state hit rate).
MIN_SPEEDUP = 5.0
MIN_HIT_RATE = 0.9

OUT_PATH = Path(__file__).parent / "out" / "BENCH_exec_speedup.json"

REGIONS = ("north", "south", "east", "west")

#: The canned catalog.  Deliberately mixed: simple vector-spec predicates
#: (the seed path already vectorizes those scans), complex OR/arithmetic
#: predicates (only the batch path vectorizes them), group-bys, a full
#: no-limit sort, and a fact-dimension join.
QUERIES = [
    "select region, count(*), sum(amount) from sales "
    "where status = 'gold' group by region order by region",
    "select count(*) from sales where region = 'north' and status = 'gold'",
    "select region, sum(amount) from sales "
    "where amount > 50 or status = 'gold' group by region order by region",
    "select status, count(*) from sales "
    "where amount * 2 > 100 and region <> 'east' "
    "group by status order by status",
    "select sale_id, amount from sales where amount - cust_id > 400 "
    "order by amount desc, sale_id",
    "select c.segment, sum(s.amount) from sales s, customers c "
    "where s.cust_id = c.cust_id and s.amount > 450 "
    "group by c.segment order by c.segment",
]


def build_engine(fast: bool) -> SqlEngine:
    cluster = MppCluster(num_dns=NUM_DNS)
    engine = SqlEngine(
        cluster,
        batch_enabled=fast,
        plan_cache_size=64 if fast else 0,
    )
    rng = make_rng(31)
    engine.execute(
        "create table sales (sale_id int primary key, cust_id int, "
        "region text, status text, amount double) "
        "with (orientation = column)")
    engine.execute(
        "create table customers (cust_id int primary key, segment text)")
    values = []
    for i in range(SALES_ROWS):
        region = REGIONS[i % len(REGIONS)]
        gold = rng.random() < (0.9 if region == "north" else 0.02)
        values.append(
            f"({i}, {rng.randrange(CUSTOMERS)}, '{region}', "
            f"'{'gold' if gold else 'silver'}', {rng.uniform(1, 500):.2f})")
    engine.execute("insert into sales values " + ",".join(values))
    engine.execute("insert into customers values " + ",".join(
        f"({i}, '{'vip' if i % 20 == 0 else 'mass'}')"
        for i in range(CUSTOMERS)))
    engine.analyze()
    if cluster.htap is not None:
        # Merge the load into frozen column chunks: the read-only timed
        # stream then scans the frozen store as-is instead of recomposing
        # the full delta on every query (which would dominate both modes).
        cluster.htap.tick()
    return engine


def _round(engine: SqlEngine):
    """One pass over the catalog; returns the simulation fingerprint."""
    fingerprint = []
    for sql in QUERIES:
        result = engine.execute(sql)
        fingerprint.append((
            tuple(result.columns),
            tuple(result.rows),
            result.profile.elapsed_time_us
            if result.profile is not None else None,
        ))
    return fingerprint


def one_run(fast: bool):
    engine = build_engine(fast)
    for _ in range(WARMUP_ROUNDS):
        fingerprint = _round(engine)
    hits0, probes0 = engine.plan_cache.hits, engine.plan_cache.probes
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        for _ in range(TIMED_ROUNDS):
            timed_fingerprint = _round(engine)
        elapsed_s = time.process_time() - t0
    finally:
        gc.enable()
    assert timed_fingerprint == fingerprint, \
        "read-only rounds diverged within one engine"
    probes = engine.plan_cache.probes - probes0
    hit_rate = ((engine.plan_cache.hits - hits0) / probes) if probes else 0.0
    return elapsed_s, fingerprint, hit_rate


def main() -> None:
    _, warm_fast, _ = one_run(True)
    _, warm_base, _ = one_run(False)
    assert warm_fast == warm_base, \
        "batch execution changed simulated results"
    baseline = warm_base

    timings = {"fast": [], "base": []}
    hit_rates = []
    for _ in range(PAIRS):
        for key, fast in (("fast", True), ("base", False)):
            elapsed_s, fingerprint, hit_rate = one_run(fast)
            timings[key].append(elapsed_s)
            assert fingerprint == baseline, \
                "batch execution changed simulated results"
            if fast:
                hit_rates.append(hit_rate)

    fast_min = min(timings["fast"])
    base_min = min(timings["base"])
    fast_med = statistics.median(timings["fast"])
    base_med = statistics.median(timings["base"])
    speedup = base_min / fast_min
    hit_rate = min(hit_rates)
    queries = TIMED_ROUNDS * len(QUERIES)
    report = {
        "benchmark": "exec_speedup",
        "config": {
            "num_dns": NUM_DNS,
            "sales_rows": SALES_ROWS,
            "queries_per_round": len(QUERIES),
            "timed_rounds": TIMED_ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "pairs": PAIRS,
            "timer": "process_time",
        },
        "queries_timed": queries,
        "min_s_fast": fast_min,
        "min_s_base": base_min,
        "median_s_fast": fast_med,
        "median_s_base": base_med,
        "speedup_ratio": speedup,
        "speedup_ratio_medians": base_med / fast_med,
        "fast_qps": queries / fast_min,
        "base_qps": queries / base_min,
        "plan_cache_hit_rate": hit_rate,
        "min_speedup": MIN_SPEEDUP,
        "min_hit_rate": MIN_HIT_RATE,
        "sim_results_identical": True,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"fast: {fast_min * 1e3:8.1f} ms min, {fast_med * 1e3:8.1f} ms "
          f"median ({report['fast_qps']:.0f} q/s)")
    print(f"base: {base_min * 1e3:8.1f} ms min, {base_med * 1e3:8.1f} ms "
          f"median ({report['base_qps']:.0f} q/s)")
    print(f"speedup: {speedup:.2f}x (mins), "
          f"{report['speedup_ratio_medians']:.2f}x (medians); "
          f"plan cache hit rate {hit_rate:.3f}")
    print(f"wrote {OUT_PATH}")
    assert speedup >= MIN_SPEEDUP, (
        f"executor speedup {speedup:.2f}x is below the {MIN_SPEEDUP}x gate")
    assert hit_rate >= MIN_HIT_RATE, (
        f"plan cache hit rate {hit_rate:.3f} is below {MIN_HIT_RATE}")


if __name__ == "__main__":
    main()
