"""Geo commit latency: epoch-based multi-master vs naive global 2PC.

The same contended TPC-C-lite schedule (three regions, each submitting
from its own home warehouses, 20% of transactions touching a remote
warehouse) runs twice over identical 3-region topologies:

* **geogauss** — ``GeoMode.GEOGAUSS``: transactions batch into 10ms
  epochs, sealed batches cross the WAN once per epoch, and a
  deterministic certifier resolves write-write conflicts identically in
  every region.  A commit waits for its epoch boundary plus ONE one-way
  WAN hop plus certification.
* **global_2pc** — ``GeoMode.GLOBAL_2PC``: every transaction runs a
  synchronous prepare+commit across its hosting regions — two full WAN
  round trips on the commit path.

Both run partial replication (``replication_factor=2``), so writes and
2PC votes involve two of the three regions.  Latency is simulated time
(deterministic), not wall clock.  CI gates the headline claims:

* p95 cross-region commit latency under epoch commit is at most
  ``P95_RATIO_BOUND`` (0.5x) of the 2PC baseline — i.e. a >= 2x win;
* the certification abort rate on this contended schedule stays at or
  below ``ABORT_RATE_BOUND`` (10%).

Run:  PYTHONPATH=src python benchmarks/bench_geo_commit.py
Writes ``BENCH_geo_commit.json`` next to this file (under ``out/``).
"""

import json
from pathlib import Path

from repro.geo import (
    GeoCluster,
    GeoConfig,
    GeoMode,
    load_tpcc_geo,
    warehouses_homed_at,
)
from repro.wlm.driver import percentile
from repro.workloads.tpcc_lite import TpccLiteWorkload

NUM_REGIONS = 3
DNS_PER_REGION = 2
REPLICATION_FACTOR = 2
WAREHOUSES = 6
TXNS_PER_REGION = 40
MULTI_SHARD_FRACTION = 0.2
#: CI gates (ISSUE: >= 2x p95 win at <= 10% certification aborts).
P95_RATIO_BOUND = 0.5
ABORT_RATE_BOUND = 0.10

OUT_PATH = Path(__file__).parent / "out" / "BENCH_geo_commit.json"


def run_mode(mode: GeoMode) -> dict:
    geo = GeoCluster(GeoConfig(
        num_regions=NUM_REGIONS, dns_per_region=DNS_PER_REGION,
        mode=mode, replication_factor=REPLICATION_FACTOR))
    load_tpcc_geo(geo, num_warehouses=WAREHOUSES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=MULTI_SHARD_FRACTION,
                                seed=11)
    sessions = [geo.session(r) for r in range(NUM_REGIONS)]
    streams = [
        workload.stream(
            home_warehouse=warehouses_homed_at(geo, r, WAREHOUSES)[0],
            seed_offset=r)
        for r in range(NUM_REGIONS)
    ]
    handles = []
    # Round-robin submission in batches so all three regions load the same
    # epochs (that concurrency is what contends at certification), with
    # the epoch machine shipping mid-schedule and every client clock
    # following the global clock — commit latency is measured from a
    # submit time that tracks real schedule progress.
    batch = 8
    for _ in range(TXNS_PER_REGION // batch):
        for region in range(NUM_REGIONS):
            for _ in range(batch):
                spec = next(streams[region])
                handles.append(sessions[region].run_transaction(
                    spec.body, multi_shard=spec.multi_shard))
        if mode is GeoMode.GEOGAUSS:
            geo.step_to(geo._now_us + 20_000.0)
            for session in sessions:
                session.wait_until(geo._now_us)
    geo.drain()
    if mode is GeoMode.GEOGAUSS:
        geo.assert_converged()

    statuses = [h.status for h in handles]
    assert "pending" not in statuses, "transactions left unresolved"
    committed = [h for h in handles if h.status == "committed"]
    assert committed, f"{mode.value}: nothing committed"
    latencies = [h.latency_us for h in committed]
    aborted = statuses.count("aborted")
    return {
        "mode": mode.value,
        "txns": len(handles),
        "committed": len(committed),
        "aborted": aborted,
        "abort_rate": aborted / len(handles),
        "p50_commit_us": percentile(latencies, 50),
        "p95_commit_us": percentile(latencies, 95),
        "max_commit_us": max(latencies),
        "wan_messages": (geo.fabric.messages_sent
                         if mode is GeoMode.GEOGAUSS else None),
        "certified_epochs": (len({row[0] for row in geo.epoch_rows()})
                             if mode is GeoMode.GEOGAUSS else None),
    }


def main() -> None:
    epoch = run_mode(GeoMode.GEOGAUSS)
    naive = run_mode(GeoMode.GLOBAL_2PC)
    ratio = epoch["p95_commit_us"] / naive["p95_commit_us"]

    assert ratio <= P95_RATIO_BOUND, (
        f"epoch-commit p95 {epoch['p95_commit_us']:.0f}us is "
        f"{ratio:.2f}x the 2PC baseline {naive['p95_commit_us']:.0f}us "
        f"(bound {P95_RATIO_BOUND}x)")
    assert epoch["abort_rate"] <= ABORT_RATE_BOUND, (
        f"certification abort rate {epoch['abort_rate']:.1%} exceeds "
        f"{ABORT_RATE_BOUND:.0%}")

    report = {
        "benchmark": "geo_commit",
        "config": {
            "num_regions": NUM_REGIONS,
            "dns_per_region": DNS_PER_REGION,
            "replication_factor": REPLICATION_FACTOR,
            "warehouses": WAREHOUSES,
            "txns_per_region": TXNS_PER_REGION,
            "multi_shard_fraction": MULTI_SHARD_FRACTION,
            "p95_ratio_bound": P95_RATIO_BOUND,
            "abort_rate_bound": ABORT_RATE_BOUND,
        },
        "geogauss": epoch,
        "global_2pc": naive,
        "p95_ratio": ratio,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'mode':12s} {'txns':>5s} {'abort%':>7s} "
          f"{'p50':>10s} {'p95':>10s}")
    for row in (epoch, naive):
        print(f"{row['mode']:12s} {row['txns']:5d} "
              f"{row['abort_rate']:7.1%} "
              f"{row['p50_commit_us']:8.0f}us {row['p95_commit_us']:8.0f}us")
    print(f"p95 ratio geogauss/2pc: {ratio:.2f}x "
          f"(bound {P95_RATIO_BOUND}x); "
          f"{epoch['certified_epochs']} certified epochs, "
          f"{epoch['wan_messages']} WAN batch messages")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
