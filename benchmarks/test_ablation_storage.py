"""Ablation — hybrid row-column storage and compression.

FI-MPPDB "supports both row and columnar storage formats" with "data
compression" and a "vectorized execution engine".  This ablation measures,
on a scan-heavy reporting aggregate:

* wall-clock speedup of vectorized column scans over row-at-a-time
  execution (the vectorization claim),
* compression ratio of the lightweight codecs on realistic columns
  (the compression claim), and that compression does not change results.
"""

import time

import pytest

from repro.common.rng import ZipfGenerator, make_rng
from repro.exec.vectorized import aggregate, row_aggregate
from repro.storage.colstore import ColumnStore
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType

ROWS = 60_000


def build_stores():
    schema = TableSchema(
        "events",
        [Column("id", DataType.INT), Column("ts", DataType.TIMESTAMP),
         Column("region", DataType.TEXT), Column("status", DataType.TEXT),
         Column("amount", DataType.DOUBLE)],
        "id",
    )
    rng = make_rng(41)
    zipf = ZipfGenerator(make_rng(42), n=6, theta=1.1)
    regions = ["north", "south", "east", "west", "apac", "emea"]
    rows = []
    for i in range(ROWS):
        rows.append({
            "id": i,
            "ts": 1_600_000_000_000 + i * 1000 + rng.randint(0, 99),
            "region": regions[zipf.next()],
            "status": "ok" if rng.random() < 0.97 else "error",
            "amount": round(rng.uniform(0, 500), 2),
        })
    compressed = ColumnStore(schema, compress=True)
    compressed.append_rows(rows)
    compressed.flush()
    plain = ColumnStore(schema, compress=False)
    plain.append_rows(rows)
    plain.flush()
    return compressed, plain, rows


PREDICATES = [("region", "=", "north"), ("amount", ">=", 100.0)]


def run_ablation():
    compressed, plain, rows = build_stores()

    t0 = time.perf_counter()
    vector_result = aggregate(plain, "amount", "sum", PREDICATES)
    vector_s = time.perf_counter() - t0

    # The row engine reads through the same storage (scan_rows decodes and
    # materializes row dicts, like a row-store executor pipeline would).
    t0 = time.perf_counter()
    row_result = row_aggregate(plain.scan_rows(), "amount", "sum", PREDICATES)
    row_s = time.perf_counter() - t0

    compressed_result = aggregate(compressed, "amount", "sum", PREDICATES)

    return {
        "vector_s": vector_s,
        "row_s": row_s,
        "speedup": row_s / vector_s,
        "vector_result": vector_result,
        "row_result": row_result,
        "compressed_result": compressed_result,
        "compressed_units": compressed.compressed_footprint(),
        "plain_units": plain.compressed_footprint(),
    }


def render(r):
    lines = [
        f"rows scanned:            {ROWS}",
        f"row-at-a-time agg:       {r['row_s'] * 1000:8.1f} ms",
        f"vectorized agg:          {r['vector_s'] * 1000:8.1f} ms",
        f"vectorization speedup:   {r['speedup']:8.1f}x",
        f"plain footprint:         {r['plain_units']:8d} units",
        f"compressed footprint:    {r['compressed_units']:8d} units",
        f"compression ratio:       {r['plain_units'] / r['compressed_units']:8.1f}x",
    ]
    return "\n".join(lines)


def test_ablation_storage(benchmark, artifact):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    artifact("ablation_storage", render(result))
    assert result["vector_result"] == pytest.approx(result["row_result"])
    assert result["compressed_result"] == pytest.approx(result["row_result"])
    assert result["speedup"] > 3.0, "vectorized scans must clearly win"
    ratio = result["plain_units"] / result["compressed_units"]
    assert ratio > 1.5, f"compression ratio only {ratio:.2f}"
