"""HTAP mixed workload: TPC-C-lite OLTP against reporting scans, one store.

The dual-format promise (paper §III: "a data organization enabling both
OLTP and OLAP without application-visible ETL") is only worth having if
(a) analytic scans stop rebuilding column stores from the row heap, (b)
column freshness stays bounded while writes keep arriving, and (c) the
reporting side does not wreck OLTP latency.  This benchmark measures all
three on the same cluster:

* **oltp-only baseline**: TPC-C-lite NewOrder/Payment transactions (the
  ``oltp`` resource group) with the merge daemon ticking, no scans.
* **mixed**: the same OLTP schedule with periodic reporting aggregates
  over the column-oriented ``orders``/``order_line`` tables, fenced into
  the low-priority ``olap`` resource group.

Asserted gates (CI fails on regression):

* mixed OLTP p95 latency within ``OLTP_P95_BOUND``x of the baseline,
* every reporting scan served from HTAP storage — zero cold rebuilds,
* worst observed commit-to-column freshness lag under twice the merge
  interval.

Run:  PYTHONPATH=src python benchmarks/bench_htap_mixed.py
Writes ``BENCH_htap_mixed.json`` next to this file (under ``out/``).
"""

import json
from pathlib import Path

from repro.cluster.mpp import MppCluster
from repro.htap.manager import HtapConfig
from repro.sql.engine import SqlEngine
from repro.wlm import Priority, ResourceGroup, WlmConfig
from repro.wlm.driver import percentile
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

OUT_PATH = Path(__file__).parent / "out" / "BENCH_htap_mixed.json"

NUM_DNS = 2
WAREHOUSES = 2
OLTP_TXNS = 240           # per run; retries included in latency
SCAN_EVERY = 8            # mixed mode: one reporting scan per 8 OLTP txns
MERGE_INTERVAL_US = 30_000.0
OLTP_P95_BOUND = 1.5      # mixed p95 must stay within 1.5x of baseline
COLUMN_TABLES = ("orders", "order_line")

REPORTS = (
    "select w_id, count(*), sum(ol_amount) from order_line group by w_id",
    "select w_id, sum(o_ol_cnt) from orders group by w_id",
    "select count(*) from order_line where ol_quantity > 5",
    "select d_id, count(*), sum(ol_amount) from orders, order_line "
    "where orders.o_key = order_line.o_key group by d_id",
)


def run(mixed: bool):
    config = WlmConfig(groups=[
        ResourceGroup("oltp", slots=16, priority=Priority.HIGH,
                      queue_limit=4096),
        ResourceGroup("olap", slots=2, priority=Priority.LOW,
                      queue_limit=4096),
    ])
    cluster = MppCluster(
        num_dns=NUM_DNS, wlm_config=config,
        htap_config=HtapConfig(merge_interval_us=MERGE_INTERVAL_US))
    engine = SqlEngine(cluster)
    load_tpcc(cluster, num_warehouses=WAREHOUSES,
              column_oriented=COLUMN_TABLES)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.1, seed=3)
    session = cluster.session(track_costs=True)
    streams = [workload.stream(home_warehouse=w, seed_offset=w)
               for w in range(WAREHOUSES)]

    latencies, scan_latencies = [], []
    worst_lag_us = 0.0
    for t in range(OLTP_TXNS):
        spec = next(streams[t % WAREHOUSES])
        start_us = session.now_us
        ticket = cluster.wlm.submit(group="oltp", now_us=start_us,
                                    tag=spec.kind)
        txn = session.begin(multi_shard=spec.multi_shard)
        spec.body(txn)
        txn.commit()
        cluster.wlm.release(ticket, session.now_us)
        latencies.append(session.now_us - start_us)

        cluster.obs.advance_to(session.now_us)
        now_us = cluster.obs.clock.now_us
        cluster.htap.maybe_tick(now_us)
        worst_lag_us = max(worst_lag_us,
                           cluster.htap.max_freshness_lag_us(now_us))
        if mixed and (t + 1) % SCAN_EVERY == 0:
            result = engine.execute(REPORTS[(t // SCAN_EVERY) % len(REPORTS)],
                                    group="olap", arrival_us=now_us)
            scan_latencies.append(result.profile.elapsed_time_us
                                  + result.profile.queue_time_us)
    return cluster, engine, latencies, scan_latencies, worst_lag_us


def freshness_rows(engine):
    return engine.execute(
        "select dn, table_name, frozen_rows, delta_rows, merges, "
        "freshness_lag_us, max_lag_us from sys.htap_tables order by dn",
        group="olap").rows


def main() -> None:
    _, _, base_latencies, _, base_lag = run(mixed=False)
    cluster, engine, mixed_latencies, scan_latencies, mixed_lag = run(
        mixed=True)

    flat = dict(cluster.obs.metrics.snapshot()[1])
    scans_frozen = flat.get("htap.scans_frozen", 0.0)
    scans_composed = flat.get("htap.scans_composed", 0.0)
    cold_rebuilds = flat.get("htap.cold_rebuilds", 0.0)
    merge_stats = cluster.obs.waits.stats("htap_merge")

    base_p95 = percentile(base_latencies, 95)
    mixed_p95 = percentile(mixed_latencies, 95)
    ratio = mixed_p95 / base_p95 if base_p95 > 0 else 1.0

    assert scan_latencies, "mixed mode ran no reporting scans"
    assert scans_frozen + scans_composed > 0, \
        "reporting scans never hit HTAP storage"
    assert cold_rebuilds == 0, \
        f"HTAP tables fell back to cold rebuilds {cold_rebuilds:.0f} times"
    assert ratio <= OLTP_P95_BOUND, (
        f"mixed OLTP p95 {mixed_p95:.0f}us exceeds {OLTP_P95_BOUND}x "
        f"baseline {base_p95:.0f}us")
    lag_bound_us = 2 * MERGE_INTERVAL_US
    assert mixed_lag <= lag_bound_us, (
        f"freshness lag {mixed_lag:.0f}us exceeded {lag_bound_us:.0f}us "
        f"with a {MERGE_INTERVAL_US:.0f}us merge interval")

    report = {
        "benchmark": "htap_mixed",
        "config": {
            "num_dns": NUM_DNS, "warehouses": WAREHOUSES,
            "oltp_txns": OLTP_TXNS, "scan_every": SCAN_EVERY,
            "merge_interval_us": MERGE_INTERVAL_US,
            "oltp_p95_bound": OLTP_P95_BOUND,
            "column_tables": list(COLUMN_TABLES),
        },
        "oltp_only": {
            "p50_us": percentile(base_latencies, 50),
            "p95_us": base_p95,
            "worst_freshness_lag_us": base_lag,
        },
        "mixed": {
            "p50_us": percentile(mixed_latencies, 50),
            "p95_us": mixed_p95,
            "scan_count": len(scan_latencies),
            "scan_p95_us": percentile(scan_latencies, 95),
            "worst_freshness_lag_us": mixed_lag,
            "freshness_lag_bound_us": lag_bound_us,
        },
        "oltp_p95_ratio": ratio,
        "htap": {
            "scans_frozen": scans_frozen,
            "scans_composed": scans_composed,
            "cold_rebuilds": cold_rebuilds,
            "merges": merge_stats.count,
            "merge_io_us": merge_stats.total_us,
            "tables": [list(row) for row in freshness_rows(engine)],
        },
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{'':10s} {'oltp p50':>12s} {'oltp p95':>12s} "
          f"{'worst lag':>12s} {'scans':>7s}")
    for mode in ("oltp_only", "mixed"):
        m = report[mode]
        print(f"{mode:10s} {m['p50_us']:10.0f}us {m['p95_us']:10.0f}us "
              f"{m['worst_freshness_lag_us']:10.0f}us "
              f"{m.get('scan_count', 0):7d}")
    print(f"mixed/baseline OLTP p95 ratio: {ratio:.2f}x "
          f"(bound {OLTP_P95_BOUND}x)")
    print(f"served scans: {scans_frozen:.0f} frozen, "
          f"{scans_composed:.0f} composed, {cold_rebuilds:.0f} cold rebuilds")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
