"""GMDB: telecom session management with a live schema upgrade.

Reproduces the paper's Section III scenario: MME session objects (5-10 KB
JSON trees) served from an in-memory KV store, while the network function
upgrades from schema V3 to V5 *in service* — old and new application
versions read and write the same data concurrently, with on-the-fly
upgrade/downgrade conversion and delta-based sync (Figs. 8-11).

Run:  python examples/gmdb_session_store.py
"""

from repro.common.rng import make_rng
from repro.gmdb.cluster import GmdbCluster
from repro.gmdb.delta import object_wire_size
from repro.workloads.mme import MmeSessionGenerator, mme_schema, touch_session


def main() -> None:
    cluster = GmdbCluster(num_dns=2, object_type="mme_session")
    cluster.register_schema(3, mme_schema(3))

    # -- the V3 network function loads subscriber sessions -------------------
    v3 = cluster.connect("mme-v3", version=3)
    generator = MmeSessionGenerator(3, seed=5)
    keys = []
    for i in range(50):
        session = generator.session(i)
        v3.create(session["imsi"], session)
        keys.append(session["imsi"])
    sizes = [object_wire_size(v3.read(k)) for k in keys[:5]]
    print(f"loaded {len(keys)} sessions, sample sizes: {sizes} bytes")

    # -- in-service software upgrade: register V5 while traffic flows ---------------
    rng = make_rng(9)
    v3.update(keys[0], lambda s: touch_session(s, rng))
    changes = cluster.register_schema(5, mme_schema(5))
    print(f"\nregistered schema V5 online; appended fields: {changes}")
    v3.update(keys[1], lambda s: touch_session(s, rng))   # V3 still works

    # -- the upgraded network function joins ------------------------------------------
    v5 = cluster.connect("mme-v5", version=5)
    session = v5.read(keys[0])            # stored at V3, upgraded on read
    print(f"\nV5 reads a V3 session: volte_enabled={session['volte_enabled']} "
          f"(defaulted), bearers={len(session['bearers'])}")
    v5.update(keys[0], lambda s: s.__setitem__("volte_enabled", True))

    # -- both versions co-exist on the same object (Fig. 10) --------------------------
    v3.subscribe(keys[0])
    v5.subscribe(keys[0])
    delta = v5.update(keys[0], lambda s: (
        s.__setitem__("state", "CONNECTED"),
        s.__setitem__("volte_profile", "premium"),
    ))
    v3_view = v3.cached(keys[0])
    print("\nafter a V5 write:")
    print(f"  delta pushed: {len(delta)} ops, {delta.wire_size()} bytes "
          f"(vs {object_wire_size(session)} for the whole object)")
    print(f"  V3 subscriber sees state={v3_view['state']}, "
          f"volte fields hidden: {'volte_profile' not in v3_view}")

    # -- downgrade path (rollback scenario, D1 in Fig. 8) ------------------------------
    v3.invalidate(keys[0])
    downgraded = v3.read(keys[0])
    mme_schema(3).validate(downgraded)
    print(f"  V3 re-read validates against V3 schema "
          f"(state={downgraded['state']})")

    # -- ops summary ---------------------------------------------------------------------
    m = cluster.metrics
    print(f"\nmetrics: reads={m.reads} writes={m.writes} "
          f"conversions={m.conversions} bytes={m.bytes_sent} "
          f"simulated-busy={m.busy_us / 1000:.1f}ms")
    flushed = cluster.flush_all()
    print(f"background flush persisted {flushed} dirty objects "
          "(GMDB trades durability for latency; see Sec. III-A)")


if __name__ == "__main__":
    main()
