"""HTAP on GTM-lite: a sharded bank under mixed OLTP + OLAP load.

Demonstrates the paper's Section II-A end to end:

1. money transfers run as transactions — single-shard ones skip the GTM,
   cross-shard ones use GXIDs, 2PC and merged snapshots;
2. an analytical "total balance" query runs concurrently and always sees a
   consistent total, even while a cross-shard transfer is parked halfway
   through its commit (the Anomaly-1 window);
3. a mini scalability sweep shows GTM-lite vs the classical baseline.

Run:  python examples/htap_bank.py
"""

from repro.cluster import MppCluster, TxnMode
from repro.common.rng import make_rng
from repro.core.experiment import run_cell
from repro.storage import Column, DataType, TableSchema

ACCOUNTS = 64
OPENING_BALANCE = 1_000


def build_bank(mode=TxnMode.GTM_LITE) -> MppCluster:
    cluster = MppCluster(num_dns=4, mode=mode)
    cluster.create_table(TableSchema(
        "account",
        [Column("id", DataType.INT), Column("balance", DataType.INT)],
        primary_key="id",
    ))
    session = cluster.session()
    txn = session.begin(multi_shard=True)
    for account in range(ACCOUNTS):
        txn.insert("account", {"id": account, "balance": OPENING_BALANCE})
    txn.commit()
    return cluster


def total_balance(cluster) -> int:
    """The OLAP side: a cluster-wide consistent snapshot read."""
    txn = cluster.session().begin(multi_shard=True)
    total = sum(row["balance"] for _, row in txn.scan("account"))
    txn.commit()
    return total


def main() -> None:
    cluster = build_bank()
    session = cluster.session()
    rng = make_rng(2024)

    # -- mixed transfer traffic ------------------------------------------------
    for i in range(300):
        src, dst = rng.sample(range(ACCOUNTS), 2)
        amount = rng.randint(1, 50)

        def transfer(txn):
            a = txn.read("account", src)
            b = txn.read("account", dst)
            txn.update("account", src, {"balance": a["balance"] - amount})
            txn.update("account", dst, {"balance": b["balance"] + amount})

        # src/dst may live on the same shard or not; run_transaction
        # promotes to a global transaction only when needed.
        session.run_transaction(transfer, multi_shard=False)

    stats = cluster.stats
    print("== transfer traffic ==")
    print(f"  single-shard commits: {stats.commits_single_shard}")
    print(f"  multi-shard commits:  {stats.commits_multi_shard}")
    print(f"  GTM requests:         {cluster.gtm.stats.total_requests}")
    print(f"  snapshot merges:      {stats.snapshot_merges}")

    # -- invariant: money is conserved -------------------------------------------
    total = total_balance(cluster)
    assert total == ACCOUNTS * OPENING_BALANCE, total
    print(f"\ntotal balance: {total} (conserved)")

    # -- reading through an in-flight 2PC window ----------------------------------
    src, dst = 0, 1
    writer = session.begin(multi_shard=True)
    a = writer.read("account", src)
    b = writer.read("account", dst)
    writer.update("account", src, {"balance": a["balance"] - 500})
    writer.update("account", dst, {"balance": b["balance"] + 500})
    steps = writer.commit_stepwise()
    steps.prepare_all()
    steps.commit_at_gtm()                       # committed at the GTM...
    pending = steps.pending_nodes
    steps.confirm_at(pending[0])                # ...but one DN not confirmed
    mid_commit_total = total_balance(cluster)   # UPGRADE makes this atomic
    steps.finish()
    assert mid_commit_total == ACCOUNTS * OPENING_BALANCE
    print(f"total during a half-confirmed 2PC commit: {mid_commit_total} "
          "(still consistent — Algorithm 1's UPGRADE)")

    # -- mini Figure 3 -------------------------------------------------------------
    print("\n== mini scalability check (TPC-C-lite, 100% single-shard) ==")
    for nodes in (2, 8):
        lite = run_cell(nodes, 0.0, TxnMode.GTM_LITE,
                        warehouses_per_node=2, txns_per_client=15)
        base = run_cell(nodes, 0.0, TxnMode.CLASSICAL,
                        warehouses_per_node=2, txns_per_client=15)
        print(f"  {nodes} nodes: gtm-lite {lite.throughput_tps:7.0f} tps | "
              f"baseline {base.throughput_tps:7.0f} tps | "
              f"{lite.throughput_tps / base.throughput_tps:.2f}x")


if __name__ == "__main__":
    main()
