"""Mini-dashboard: watch a TPC-C-lite burst through the ``sys.*`` views.

Runs bursts of TPC-C-lite transactions against a GTM-lite cluster and,
between bursts, polls the SQL-queryable system views the way a DBA
console would: who is waiting on what (``sys.wait_events``), what is in
flight (``sys.activity``), which queries were slow (``sys.slow_queries``)
and which alerts fired (``sys.alerts``).  Everything is plain SQL over
virtual tables — the dashboard has no privileged access.

Run:  python examples/monitoring.py
"""

from repro.autonomous.adbms import AutonomousManager
from repro.cluster import MppCluster, TxnMode
from repro.sql.engine import SqlEngine
from repro.workloads.driver import run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

BURSTS = 3
WAREHOUSES = 4


def show(engine: SqlEngine, title: str, sql: str, limit: int = 6) -> None:
    result = engine.execute(sql)
    print(f"  -- {title}")
    print(f"     {' | '.join(result.columns)}")
    for row in result.rows[:limit]:
        print(f"     {' | '.join(str(v) for v in row)}")
    if len(result.rows) > limit:
        print(f"     ... {len(result.rows) - limit} more")
    print()


def main() -> None:
    cluster = MppCluster(num_dns=4, mode=TxnMode.GTM_LITE)
    load_tpcc(cluster, num_warehouses=WAREHOUSES)
    # low threshold so the dashboard's own queries populate sys.slow_queries
    cluster.obs.slowlog.threshold_us = 20.0
    engine = SqlEngine(cluster, learning_enabled=False)
    workload = TpccLiteWorkload(num_warehouses=WAREHOUSES,
                                multi_shard_fraction=0.2, seed=7)
    # the Fig. 12 loop: collect() exports telemetry, tick() turns slow-query
    # bursts and anomalies into sys.alerts entries
    manager = AutonomousManager(cluster)

    for burst in range(1, BURSTS + 1):
        result = run_oltp(cluster, workload, clients_per_dn=2,
                          txns_per_client=10)
        now_us = cluster.obs.clock.now_us
        manager.collect(now_us)
        manager.tick(now_us)
        print(f"== burst {burst}: committed={result.committed} "
              f"aborted={result.aborted} "
              f"tps={result.throughput_tps:.0f} ==\n")

        show(engine, "where the cluster waits (top events)",
             "select event, count, total_us, avg_us from sys.wait_events "
             "order by total_us desc")
        show(engine, "GTM pressure: global vs local snapshots",
             "select event, total_us from sys.wait_events "
             "where event like 'gtm.%' order by total_us desc")
        show(engine, "in-flight transactions",
             "select kind, state, snapshot, wait_us from sys.activity")
        show(engine, "slowest recorded queries",
             "select sql, elapsed_us, top_operator from sys.slow_queries "
             "order by elapsed_us desc", limit=3)
        show(engine, "alerts",
             "select severity, source, message, count from sys.alerts")

    # one aggregate across the whole run — sys views compose with SQL
    print("== summary ==")
    for row in engine.query(
            "select count(*) as events, sum(total_us) as total_wait_us "
            "from sys.wait_events"):
        print(f"  {row['events']} distinct wait events, "
              f"{row['total_wait_us']:.0f}us of attributed waiting")
    spans = engine.query("select count(*) as n from sys.spans "
                         "where name = '2pc.prepare'")
    print(f"  {spans[0]['n']} 2PC prepare spans traced")


if __name__ == "__main__":
    main()
