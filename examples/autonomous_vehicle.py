"""Autonomous-vehicle data management (Sec. II-B + Sec. IV-B.3).

The paper's running example: a vehicle generates sensor time series, camera
detections and GPS positions; AI-extracted features need high-dimensional
indexing; the raw firehose is pre-aggregated at the edge before going to
the cloud.  This example wires those pieces end to end:

1. ingest one simulated drive (IMU time series, camera detections with
   embeddings, GPS track into the spatial layer),
2. answer cross-model questions in one SQL statement,
3. find near-duplicate detections via the high-dimensional feature index,
4. pre-aggregate at the "edge" and ship only the reduced series to the
   cloud node, comparing bandwidth.

Run:  python examples/autonomous_vehicle.py
"""

from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform
from repro.common.rng import make_rng
from repro.multimodel.mmdb import MultiModelDB
from repro.multimodel.vision import BoundingBox

SECOND = 1_000_000
DRIVE_SECONDS = 600


def simulate_drive(db: MultiModelDB, rng) -> None:
    imu = db.timeseries.create_series("imu", ["speed_kmh", "accel"])
    gps = db.spatial.create_layer("track", cell_size=50.0)
    cams = db.vision.create_store("front_cam", feature_dim=12, lsh_bits=0)
    db.execute("create table alert (alert_id int primary key, t timestamp,"
               " kind text)")

    x, y, speed = 0.0, 0.0, 50.0
    alert_id = 0
    base_pedestrian = [rng.gauss(0, 1) for _ in range(12)]
    for t in range(DRIVE_SECONDS):
        accel = rng.uniform(-2, 2)
        speed = max(0.0, min(130.0, speed + accel))
        imu.append(t * SECOND, speed_kmh=speed, accel=accel)
        x += speed / 3.6
        y += rng.uniform(-3, 3)
        gps.insert(f"fix-{t}", x, y, t=t)
        if rng.random() < 0.08:                      # a detection this second
            label = rng.choice(["car", "car", "truck", "pedestrian"])
            feature = ([v + rng.gauss(0, 0.1) for v in base_pedestrian]
                       if label == "pedestrian"
                       else [rng.gauss(0, 1) for _ in range(12)])
            cams.ingest(f"frame-{t}", t * SECOND, label,
                        confidence=rng.uniform(0.6, 0.99),
                        bbox=BoundingBox(rng.uniform(0, 1800),
                                         rng.uniform(0, 900), 120, 90),
                        feature=feature)
            if label == "pedestrian" and speed > 60:
                alert_id += 1
                db.execute(f"insert into alert values ({alert_id}, "
                           f"{t * SECOND}, 'pedestrian_at_speed')")


def main() -> None:
    db = MultiModelDB()
    rng = make_rng(77)
    simulate_drive(db, rng)
    db.set_now_us(DRIVE_SECONDS * SECOND)

    imu = db.timeseries.series("imu")
    cams = db.vision.store("front_cam")
    print(f"drive ingested: {imu.point_count} IMU points, "
          f"{len(cams)} detections, "
          f"{len(db.spatial.layer('track'))} GPS fixes")

    # -- cross-model SQL: recent pedestrian detections next to alerts -------
    rows = db.query("""
        select v.frame_id, v.confidence, a.kind
        from gvision('front_cam', 'pedestrian', 0.8) v
        join alert a on 1 = 1
        where v.t between a.t - 2000000 and a.t + 2000000
        order by v.confidence desc limit 5
    """)
    print("\npedestrian detections within 2s of an alert:")
    for row in rows:
        print(f"  {row['frame_id']:<10} confidence={row['confidence']:.2f} "
              f"({row['kind']})")

    # -- high-dimensional similarity: near-duplicate pedestrians ------------------
    pedestrians = cams.by_label("pedestrian")
    if len(pedestrians) >= 2:
        probe = pedestrians[0]
        similar = cams.similar_to(probe.detection_id, k=3)
        print(f"\ndetections most similar to {probe.frame_id} (embedding k-NN):")
        for det, sim in similar:
            print(f"  {det.frame_id:<10} {det.label:<12} similarity={sim:.3f}")
        assert all(d.label == "pedestrian" for d, s in similar if s > 0.9)

    # -- spatial: where was the car when it went fastest? --------------------------
    bounds = imu.time_bounds()
    fastest_t = max(imu.range(*bounds), key=lambda p: p[1]["speed_kmh"])[0]
    fix = db.spatial.layer("track").get(f"fix-{fastest_t // SECOND}")
    nearby = db.spatial.layer("track").radius(fix.x, fix.y, 100.0)
    print(f"\ntop speed at t={fastest_t // SECOND}s, position "
          f"({fix.x:.0f}, {fix.y:.0f}); {len(nearby)} track fixes within 100m")

    # -- edge pre-aggregation before the cloud (the paper's own suggestion) ---------
    per_minute = imu.downsample(60 * SECOND, "speed_kmh", "avg")
    platform = CollabPlatform()
    cloud = platform.add_node("cloud", NodeKind.CLOUD)
    car = platform.add_node("car-edge", NodeKind.EDGE)
    raw_points = imu.point_count
    reduced_points = per_minute.point_count
    for t, values in per_minute.range(0, DRIVE_SECONDS * SECOND):
        car.put(f"speed_avg/{t}", values["speed_kmh"])
    platform.converge()
    print(f"\nedge pre-aggregation: {raw_points} raw points -> "
          f"{reduced_points} shipped to the cloud "
          f"({raw_points // max(reduced_points, 1)}x reduction); "
          f"cloud holds {len(cloud.keys())} series keys")
    assert len(cloud.keys()) == reduced_points


if __name__ == "__main__":
    main()
