"""Multi-model analytics: the paper's Example 1, end to end.

A city monitoring scenario (Sec. II-B): speed cameras feed a time-series
engine, call records live in a property graph, registrations in relational
tables — and one SQL query joins all three models to find which speeding
cars belong to people with suspicious calling patterns.

Run:  python examples/multimodel_city.py
"""

from repro.common.rng import make_rng
from repro.multimodel.mmdb import MultiModelDB

MINUTES = 60_000_000
TARGET_CID = 90_001


def build_city() -> MultiModelDB:
    db = MultiModelDB()
    rng = make_rng(7)

    # -- relational: registrations ------------------------------------------
    db.execute("create table car2cid (carid int primary key, cid int)")
    db.execute(
        "create table person (cid int primary key, phone text, photo text)")
    people = range(90_000, 90_030)
    db.execute("insert into person values " + ",".join(
        f"({cid}, '+86-555-{cid % 10000:04d}', 'photo:{cid}.jpg')"
        for cid in people))
    db.execute("insert into car2cid values " + ",".join(
        f"({i}, {90_000 + i})" for i in range(30)))

    # -- graph: call records -------------------------------------------------------
    for cid in people:
        db.graph.add_vertex(cid, "person", cid=cid)
    # cid 90_003 calls the target five times recently (a suspect);
    # others call rarely or long ago.
    for t in (910, 930, 950, 960, 980):
        db.graph.add_edge(90_003, TARGET_CID, "call", time=t)
    db.graph.add_edge(90_007, TARGET_CID, "call", time=955)
    for t in (5, 10, 15, 20):
        db.graph.add_edge(90_011, TARGET_CID, "call", time=t)

    # -- time series: speed-camera sightings -----------------------------------------
    series = db.timeseries.create_series("high_speed", ["carid", "juncid"])
    db.set_now_us(1000 * MINUTES)
    for _ in range(40):                       # background traffic, old
        series.append(rng.randint(1, 900) * MINUTES,
                      carid=rng.randrange(30), juncid=rng.randrange(12))
    for t in (978, 986, 995):                 # the suspect's car, recent
        series.append(t * MINUTES, carid=3, juncid=7)
    return db


EXAMPLE1 = f"""
with cars (t, carid, juncid) as (
    select time, carid, juncid from gtimeseries('high_speed', 1800000000)
),
suspects (cid) as (
    select value from ggraph('g.V().hasLabel(''person'')
        .where(__.outE(''call'').has(''time'', gt(900)).inV()
               .has(''cid'', {TARGET_CID}).count().is(gt(3)))
        .values(''cid'')')
)
select s.cid, p.phone, p.photo, c.carid, c.juncid
from suspects s, cars c, car2cid cc, person p
where s.cid = cc.cid and cc.carid = c.carid and p.cid = s.cid
"""


def main() -> None:
    db = build_city()

    print("== Example 1: unified query across graph, time-series and SQL ==")
    result = db.execute(EXAMPLE1)
    print("  " + " | ".join(result.columns))
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))
    assert all(row[0] == 90_003 for row in result.rows)

    # -- each engine is also usable on its own ------------------------------
    print("\n== graph engine (Gremlin) ==")
    callers = db.gremlin(
        f"g.V({TARGET_CID}).inE('call').outV().dedup().values('cid')")
    print(f"  everyone who ever called {TARGET_CID}: {sorted(callers)}")

    print("\n== time-series engine ==")
    series = db.timeseries.series("high_speed")
    per_hour = series.window_aggregate(
        900 * MINUTES, 1000 * MINUTES, 60 * MINUTES, "carid", "count")
    for t, count in per_hour[-3:]:
        print(f"  sightings in hour starting {t // MINUTES:4d}min: "
              f"{int(count or 0)}")

    print("\n== spatial engine ==")
    layer = db.spatial.create_layer("junctions", cell_size=2.0)
    rng = make_rng(3)
    for j in range(12):
        layer.insert(f"junction-{j}", rng.uniform(0, 20), rng.uniform(0, 20))
    rows = db.query(
        "select oid, distance from gspatial_knn('junctions', 10, 10, 3)")
    for row in rows:
        print(f"  {row['oid']:<12} at distance {row['distance']:.2f}")


if __name__ == "__main__":
    main()
