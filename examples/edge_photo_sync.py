"""Device-edge-cloud collaboration: family photo sharing (Sec. IV-B).

A phone, a tablet, a storage-limited smart watch and the cloud share a
photo collection through the MBaaS-style API.  Shows:

* direct device-to-device sync over an ad-hoc link (10x faster than the
  cloud round trip, and it works offline),
* query-based event subscriptions,
* hybrid-logical-clock conflict resolution despite badly skewed clocks,
* resource sharing: the watch offloads to the phone transparently.

Run:  python examples/edge_photo_sync.py
"""

from repro.collab.device import NodeKind
from repro.collab.platform import CollabPlatform, SyncPolicy, collection


def main() -> None:
    platform = CollabPlatform(policy=SyncPolicy.P2P)
    cloud = platform.add_node("cloud", NodeKind.CLOUD)
    phone = platform.add_node("phone", NodeKind.DEVICE, skew_us=250_000)
    tablet = platform.add_node("tablet", NodeKind.DEVICE, skew_us=-400_000)
    watch = platform.add_node("watch", NodeKind.DEVICE, storage_budget=3)
    platform.connect_nearby("phone", "tablet")
    platform.connect_nearby("phone", "watch")
    watch.backing_peer = phone

    # -- the tablet watches for new photos ---------------------------------
    arrivals = []
    collection(tablet, "photos").watch(
        lambda photo_id, value: arrivals.append(photo_id))

    # -- offline: no Internet, devices sync directly -----------------------------
    for device in ("phone", "tablet", "watch"):
        platform.disconnect(device, "cloud")
    photos = collection(phone, "photos")
    for i in range(4):
        photos.put(f"img_{i:03d}", {"title": f"hike #{i}", "size_kb": 2048})
    t0 = platform.clock.now_us
    platform.converge()
    offline_ms = (platform.clock.now_us - t0) / 1000.0
    print(f"offline direct sync: {offline_ms:.1f} ms simulated; "
          f"tablet saw {arrivals}")
    assert collection(tablet, "photos").get("img_000") is not None
    assert cloud.get("photos/img_000") is None      # the cloud knows nothing

    # -- back online: the cloud catches up ------------------------------------------
    for device in ("phone", "tablet", "watch"):
        platform.reconnect(device, "cloud")
    t0 = platform.clock.now_us
    platform.converge()
    online_ms = (platform.clock.now_us - t0) / 1000.0
    print(f"cloud catch-up: {online_ms:.1f} ms simulated "
          f"({online_ms / max(offline_ms, 0.001):.0f}x the D2D time)")
    assert cloud.get("photos/img_000") is not None

    # -- conflicting edits from skewed clocks resolve identically everywhere ----------
    collection(phone, "photos").put("img_000", {"title": "renamed on phone"})
    platform.converge()
    collection(tablet, "photos").put("img_000", {"title": "renamed on tablet"})
    platform.converge()
    titles = {name: platform.node(name).get("photos/img_000")["title"]
              for name in ("phone", "tablet", "watch", "cloud")}
    assert len(set(titles.values())) == 1
    print(f"after conflicting renames, everyone agrees: "
          f"{titles['cloud']!r} (HLC order, not wall clocks)")

    # -- the watch shares resources with the phone ---------------------------------------
    wearables = collection(watch, "workouts")
    for i in range(6):
        wearables.put(f"run_{i}", {"km": 5 + i})
    platform.converge()
    print(f"\nwatch holds {watch.local_key_count()} values locally "
          f"(budget 3), offloaded {len(watch.offloaded_keys)} to the phone")
    assert watch.get(watch.offloaded_keys[0]) is not None  # read-through

    # -- a cloud-trained function pushed down to the device -------------------------------
    cloud.install_function(
        "storage_report",
        lambda node, args: {
            "node": node.node_id,
            "keys": len(node.keys()),
            "functions": node.function_names(),
        })
    phone.download_function("storage_report", source=cloud)
    print(f"edge compute: {phone.invoke('storage_report')}")

    stats = platform.stats
    print(f"\nsync stats: sessions={stats.sessions} "
          f"updates={stats.updates_transferred} "
          f"bytes={stats.bytes_transferred} "
          f"duplicates_avoided={stats.duplicates_avoided}")


if __name__ == "__main__":
    main()
