"""Quickstart: a five-minute tour of the repro library.

Spins up a simulated FI-MPPDB cluster, runs SQL through the full stack
(parser -> optimizer -> distributed executor), shows the GTM-lite
transaction API, and closes the learning-optimizer loop.

Run:  python examples/quickstart.py
"""

from repro.cluster import MppCluster, TxnMode
from repro.sql.engine import SqlEngine


def main() -> None:
    # A 4-data-node shared-nothing cluster running the GTM-lite protocol.
    cluster = MppCluster(num_dns=4, mode=TxnMode.GTM_LITE)
    engine = SqlEngine(cluster)

    # -- DDL + bulk load ---------------------------------------------------
    engine.execute("""
        create table orders (
            o_id int primary key, region text, status text, amount double
        ) distribute by hash(o_id)
    """)
    values = ",".join(
        f"({i}, '{['north', 'south', 'east'][i % 3]}', "
        f"'{'open' if i % 5 else 'shipped'}', {i % 97}.5)"
        for i in range(1200)
    )
    engine.execute(f"insert into orders values {values}")
    engine.execute("analyze")

    # -- OLAP over all shards ---------------------------------------------------
    print("== revenue by region ==")
    for row in engine.query(
            "select region, count(*) n, sum(amount) revenue from orders "
            "where status = 'open' group by region order by revenue desc"):
        print(f"  {row['region']:<8} n={row['n']:<5} revenue={row['revenue']:.1f}")

    # -- OLTP: single-shard transactions never touch the GTM --------------------
    session = cluster.session()

    def mark_shipped(txn):
        order = txn.read("orders", 42)
        txn.update("orders", 42, {"status": "shipped",
                                  "amount": order["amount"] + 1.0})

    session.run_transaction(mark_shipped)          # local txn: no GTM traffic
    print(f"\nGTM requests so far: {cluster.gtm.stats.total_requests} "
          "(only the OLAP snapshots and the bulk load)")

    # -- EXPLAIN shows the MPP plan with exchanges -------------------------------
    print("\n== plan for a distributed join ==")
    plan = engine.execute(
        "explain select o1.region, count(*) from orders o1 "
        "join orders o2 on o1.o_id = o2.o_id group by o1.region").plan_text
    print(plan)

    # -- the learning optimizer at work -------------------------------------------
    query = ("select count(*) from orders "
             "where region = 'north' and status = 'shipped'")
    first = engine.execute(query)
    second = engine.execute(query)
    print("== learning optimizer ==")
    print(f"  plan-store entries after run 1: {len(engine.plan_store)}")
    print(f"  store hits during run 2:        {engine.plan_store.hits}")
    print(f"  captured steps:\n{engine.plan_store.render_table()}")


if __name__ == "__main__":
    main()
